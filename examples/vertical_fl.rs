//! Vertical FL with FLOAT-style per-party acceleration (the paper's §7
//! "FLOAT for non-horizontal FL" claim).
//!
//! Three parties hold disjoint feature blocks of the same samples. Every
//! batch is a synchronous barrier over all parties, so the slowest party
//! gates the round. We simulate one network-constrained party, price each
//! acceleration for it, and show (a) embedding quantization — not pruning
//! — relieves a VFL communication bottleneck, and (b) training still
//! converges with the acceleration applied.
//!
//! ```text
//! cargo run --release --example vertical_fl
//! ```

use float::accel::AccelAction;
use float::tensor::model::TrainOptions;
use float::vfl::split::synthetic_vfl;
use float::vfl::{accelerated_party_cost, PartyCost, SplitModel, VflConfig, VflRound};

fn main() {
    let config = VflConfig {
        party_dims: vec![12, 8, 12],
        embed_dim: 16,
        num_classes: 6,
    };
    let data = synthetic_vfl(&config, 512, 42);

    // --- Resource side: price one epoch for the constrained party. ---
    let round = VflRound::new(data.len(), config.party_dims[1], config.embed_dim);
    let slow_party_mbps = 2.0; // a 4G party in a fade
    println!(
        "per-epoch cost of party 1 ({} features):",
        config.party_dims[1]
    );
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "action", "MFLOPs", "wire-KB(up)", "stall-s"
    );
    for action in [
        AccelAction::NoOp,
        AccelAction::Quantize16,
        AccelAction::Quantize8,
        AccelAction::Prune75,
        AccelAction::Partial75,
    ] {
        let c: PartyCost = accelerated_party_cost(&round, action);
        let stall = c.upload_bytes * 8.0 / (slow_party_mbps * 1e6);
        println!(
            "{:<12} {:>12.2} {:>14.1} {:>12.3}",
            action.name(),
            c.flops / 1e6,
            c.upload_bytes / 1024.0,
            stall
        );
    }

    // --- Accuracy side: train the split model with party 1 accelerated. ---
    let mut vanilla = SplitModel::new(&config, 7);
    let mut accelerated = SplitModel::new(&config, 7);
    let default_opts = vec![TrainOptions::default(); config.num_parties()];
    // Party 1 trains only half its bottom parameters (Partial50).
    let mut accel_opts = default_opts.clone();
    let n1 = accelerated.party_params(1);
    accel_opts[1].frozen = Some((0..n1).map(|i| i % 2 == 0).collect());

    for e in 0..40 {
        vanilla.train_epoch(&data, 32, 0.1, e, &default_opts);
        accelerated.train_epoch(&data, 32, 0.1, e, &accel_opts);
    }
    println!(
        "\naccuracy after 40 epochs: vanilla {:.3}, party-1 Partial50 {:.3}",
        vanilla.evaluate(&data),
        accelerated.evaluate(&data)
    );
    println!(
        "\nTakeaway: in VFL the embedding stream dominates the wire, so\n\
         quantization (which shrinks it 2-4x) relieves a slow party's stall\n\
         while pruning only saves compute; and partial training keeps the\n\
         split model converging — FLOAT's actions port over unchanged."
    );
}
