//! Interference study: the paper's motivation experiment (§4.3, Fig. 5).
//!
//! Compares static acceleration configurations against FLOAT under the
//! three interference scenarios (none / static / dynamic) and shows why a
//! fixed configuration cannot win everywhere.
//!
//! ```text
//! cargo run --release --example interference_study
//! ```

use float::accel::{AccelAction, ActionCatalogue};
use float::core::{AccelMode, Experiment, SelectorChoice};
use float::data::Task;
use float::traces::InterferenceModel;

fn main() {
    let catalogue = ActionCatalogue::paper();
    let scenarios = [
        InterferenceModel::None,
        InterferenceModel::paper_static(),
        InterferenceModel::paper_dynamic(),
    ];
    let statics = [
        AccelAction::Prune25,
        AccelAction::Prune50,
        AccelAction::Prune75,
    ];

    println!(
        "{:<22} {:<10} {:>9} {:>11} {:>8}",
        "scenario", "policy", "accuracy", "successful", "dropped"
    );
    for scenario in scenarios {
        // Static pruning sweep (the Fig. 5 bottom row).
        for action in statics {
            let idx = catalogue.index_of(action).expect("paper action");
            let report = run(scenario, AccelMode::Static(idx));
            println!(
                "{:<22} {:<10} {:>9.3} {:>11} {:>8}",
                scenario.name(),
                action.name(),
                report.accuracy.mean,
                report.total_completions,
                report.total_dropouts
            );
        }
        // FLOAT adapts per client per round.
        let report = run(scenario, AccelMode::Rlhf);
        println!(
            "{:<22} {:<10} {:>9.3} {:>11} {:>8}",
            scenario.name(),
            "FLOAT",
            report.accuracy.mean,
            report.total_completions,
            report.total_dropouts
        );
        println!();
    }
    println!(
        "Takeaway: the best static pruning level changes with the scenario,\n\
         while FLOAT tracks resource conditions without retuning."
    );
}

fn run(scenario: InterferenceModel, accel: AccelMode) -> float::core::ExperimentReport {
    let mut cfg = float::core::ExperimentConfig::small(SelectorChoice::FedAvg, accel, 25);
    cfg.task = Task::Femnist;
    cfg.interference = scenario;
    Experiment::new(cfg).expect("config validates").run()
}
