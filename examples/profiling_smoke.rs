//! Profiling smoke run: the online client profiler under fire. Runs the
//! synchronous Oort engine and the asynchronous FedBuff engine with
//! profiling enabled — fault-free and under the hostile chaos preset —
//! each at 1 and 4 worker threads, asserting bit-identical reports *and
//! event streams* across thread counts. The profiler folds observations
//! only in the sequential commit phase, so worker count must never leak
//! into its estimates or into the selections they drive.
//!
//! Also checks the label contract (`+prof` / `+prof0` suffixes), the
//! pipelined==sequential identity with profiling on, and that the
//! cold-start-only mode stays finite. Writes the sync chaos run's event
//! stream + report to `target/obs/profiling_sync.*` so ci.sh can replay
//! the stream through `obsdump --profiles` and reconcile the profiler's
//! accounting against the report.
//!
//! ```text
//! cargo run --release --example profiling_smoke
//! ```

use float::core::{AccelMode, Experiment, ExperimentConfig, ExperimentReport, SelectorChoice};
use float::obs::{digest, sink, ObsConfig, Telemetry};
use float::profile::ProfilingConfig;
use float::sim::FaultPlan;

const ROUNDS: usize = 60;
const SEED: u64 = 20240905;
const DIGEST_ROUNDS: u64 = 3;

fn config(
    selector: SelectorChoice,
    threads: usize,
    plan: FaultPlan,
    profiling: ProfilingConfig,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small(selector, AccelMode::Rlhf, ROUNDS);
    cfg.seed = SEED;
    cfg.fault_plan = plan;
    cfg.num_threads = threads;
    cfg.obs = ObsConfig::on();
    cfg.profiling = profiling;
    cfg
}

fn run(
    selector: SelectorChoice,
    threads: usize,
    plan: FaultPlan,
    profiling: ProfilingConfig,
) -> (ExperimentReport, Telemetry) {
    Experiment::new(config(selector, threads, plan, profiling))
        .expect("config validates")
        .run_traced()
}

/// 1-vs-4-thread bit-identity for one (selector, fault plan) cell with
/// profiling on. Returns the single-thread run's artefacts.
fn check(selector: SelectorChoice, plan: FaultPlan, what: &str) -> (ExperimentReport, Telemetry) {
    let (one, tel_one) = run(selector, 1, plan, ProfilingConfig::on());
    let (four, tel_four) = run(selector, 4, plan, ProfilingConfig::on());
    assert_eq!(
        one, four,
        "{} ({what}): profiled reports must be bit-identical across thread counts",
        one.label
    );
    assert_eq!(
        tel_one.events, tel_four.events,
        "{} ({what}): profiled event streams must be bit-identical across thread counts",
        one.label
    );
    assert!(one.is_finite(), "{}: report carries NaN/Inf", one.label);
    assert!(
        one.label.ends_with("+prof"),
        "{}: profiled run must carry the +prof label suffix",
        one.label
    );
    assert!(
        tel_one.summary.counter("profile_observations") > 0,
        "{}: profiler observed nothing in {ROUNDS} rounds",
        one.label
    );
    (one, tel_one)
}

fn summarize(r: &ExperimentReport, tel: &Telemetry, what: &str) {
    println!("\n=== {} ({what}) ===", r.label);
    println!(
        "  {} completions, {} dropouts over {} rounds ({:.1} virtual hours)",
        r.total_completions,
        r.total_dropouts,
        r.rounds.len(),
        r.wall_clock_h
    );
    println!(
        "  profiler: {} observations folded, {} selections / {} already covered",
        tel.summary.counter("profile_observations"),
        tel.summary.counter("profile_selected_clients"),
        tel.summary.counter("profile_covered_clients"),
    );
    if let Some(h) = tel.summary.histogram("profile_estimate_error") {
        println!(
            "  estimate error: {} predictions scored, mean relative error {:.3}",
            h.count,
            h.mean()
        );
    }
    for round in 0..DIGEST_ROUNDS {
        println!("  {}", digest::round_digest(round, &tel.events));
    }
}

fn main() {
    println!(
        "profiling smoke: {ROUNDS} rounds, seed {SEED}, sync Oort + async FedBuff, \
         fault-free and chaos, 1 vs 4 threads each"
    );

    // Fault-free first: estimates converge on a stable population.
    let (sync_calm, sync_calm_tel) = check(SelectorChoice::Oort, FaultPlan::none(), "fault-free");
    summarize(&sync_calm, &sync_calm_tel, "fault-free");
    let (async_calm, async_calm_tel) =
        check(SelectorChoice::FedBuff, FaultPlan::none(), "fault-free");
    summarize(&async_calm, &async_calm_tel, "fault-free");

    // Chaos: quarantines, stalls, and duplicates must update reliability
    // without poisoning the latency/bandwidth estimators, and the
    // commit-phase fold must stay thread-count invariant under retries.
    let (sync_chaos, sync_chaos_tel) = check(SelectorChoice::Oort, FaultPlan::chaos(), "chaos");
    summarize(&sync_chaos, &sync_chaos_tel, "chaos");
    assert!(
        sync_chaos.total_quarantined > 0,
        "chaos preset quarantined nothing in {ROUNDS} rounds"
    );
    let (async_chaos, async_chaos_tel) =
        check(SelectorChoice::FedBuff, FaultPlan::chaos(), "chaos");
    summarize(&async_chaos, &async_chaos_tel, "chaos");

    // Pipelined rounds with profiling on: plan/execute/commit overlap
    // must not move a single profiler observation — same report bytes.
    let (pipe, _) = {
        let mut cfg = config(
            SelectorChoice::Oort,
            4,
            FaultPlan::chaos(),
            ProfilingConfig::on(),
        );
        cfg.pipeline_rounds = true;
        Experiment::new(cfg).expect("config validates").run_traced()
    };
    assert_eq!(
        pipe, sync_chaos,
        "pipelined profiled run diverged from the sequential run"
    );
    println!("\npipelined profiled report matches sequential byte-for-byte");

    // Cold-start-only mode: estimates are folded but never consulted —
    // the selector sees only the cold-start policy. Must stay finite,
    // deterministic, and distinctly labelled.
    let (cold, _) = run(
        SelectorChoice::Oort,
        1,
        FaultPlan::chaos(),
        ProfilingConfig::cold_only(),
    );
    assert!(cold.is_finite(), "cold-only report carries NaN/Inf");
    assert!(
        cold.label.ends_with("+prof0"),
        "{}: cold-only run must carry the +prof0 label suffix",
        cold.label
    );

    // Persist the sync chaos run's artefacts so obsdump --profiles can
    // replay the stream and reconcile the profiler's accounting (ci.sh
    // asserts the replay identities).
    let dir = std::path::Path::new("target/obs");
    sink::write_jsonl(dir.join("profiling_sync.jsonl"), &sync_chaos_tel.events)
        .expect("write event stream");
    let report_json = serde_json::to_string_pretty(&sync_chaos).expect("report serializes");
    std::fs::write(
        dir.join("profiling_sync.report.json"),
        format!("{report_json}\n"),
    )
    .expect("write report json");
    println!(
        "wrote target/obs/profiling_sync.jsonl ({} events) and profiling_sync.report.json",
        sync_chaos_tel.events.len()
    );

    println!("\nprofiling smoke passed: estimates deterministic, faults folded, labels correct.");
}
