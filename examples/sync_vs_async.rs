//! Synchronous vs asynchronous FL: the Fig. 2b trade-off.
//!
//! Runs FedAvg (synchronous) and FedBuff (asynchronous, buffered) with
//! and without FLOAT, and contrasts wall-clock time against total resource
//! consumption — reproducing the paper's observation that async FL is
//! several times faster in wall-clock but burns far more client
//! resources, and that FLOAT narrows the waste on both.
//!
//! ```text
//! cargo run --release --example sync_vs_async
//! ```

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};

fn main() {
    let runs = [
        ("fedavg (sync)", SelectorChoice::FedAvg, AccelMode::Off),
        ("fedavg + FLOAT", SelectorChoice::FedAvg, AccelMode::Rlhf),
        ("fedbuff (async)", SelectorChoice::FedBuff, AccelMode::Off),
        ("fedbuff + FLOAT", SelectorChoice::FedBuff, AccelMode::Rlhf),
    ];

    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "run", "wall-h", "compute-h", "comm-h", "accuracy", "dropouts"
    );
    for (label, sel, accel) in runs {
        let cfg = ExperimentConfig::small(sel, accel, 25);
        let report = Experiment::new(cfg).expect("config validates").run();
        println!(
            "{:<16} {:>8.2} {:>10.1} {:>10.2} {:>10.3} {:>10}",
            label,
            report.wall_clock_h,
            report.resources.total_compute_h(),
            report.resources.total_comm_h(),
            report.accuracy.mean,
            report.total_dropouts,
        );
    }
    println!(
        "\nTakeaway: FedBuff finishes its aggregations in a fraction of the\n\
         synchronous wall-clock but consumes more client resources via\n\
         over-selection; FLOAT trims dropouts and waste in both regimes."
    );
}
