//! Agent transfer: pre-train the RLHF agent on one workload and fine-tune
//! it on another (the paper's RQ3 / Fig. 9 workflow), including saving and
//! restoring the agent as JSON.
//!
//! ```text
//! cargo run --release --example agent_transfer
//! ```

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::data::Task;
use float::models::Architecture;
use float::rl::RlhfAgent;

fn main() {
    // Phase 1: pre-train the agent on a FEMNIST-shaped workload.
    let mut src = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 30);
    src.task = Task::Femnist;
    src.arch = Architecture::ResNet18;
    println!("pre-training RLHF agent on femnist/resnet18…");
    let (src_report, agent) = Experiment::new(src)
        .expect("config validates")
        .run_capturing_agent();
    println!(
        "  source run: mean accuracy {:.3}, {} dropouts, Q-table {} bytes",
        src_report.accuracy.mean,
        src_report.total_dropouts,
        agent.memory_bytes()
    );

    // Persist and restore the agent — in a deployment this is the
    // pre-trained artifact shipped to a new FL operator.
    let saved = agent.to_json();
    println!("  serialized agent: {} bytes of JSON", saved.len());
    let restored = RlhfAgent::from_json(&saved).expect("agent JSON round-trips");

    // Phase 2: fine-tune on a CIFAR-10-shaped workload with a bigger
    // model, versus training a fresh agent from scratch.
    let mk = |seed_shift: u64| {
        let mut c = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 15);
        c.task = Task::Cifar10;
        c.arch = Architecture::ResNet50;
        c.seed ^= seed_shift;
        c
    };

    println!("\nfine-tuning transferred agent on cifar10/resnet50…");
    let mut fine = Experiment::new(mk(1)).expect("config validates");
    fine.install_pretrained_agent(restored);
    let fine_report = fine.run();

    println!("training a fresh agent on the same workload…");
    let fresh_report = Experiment::new(mk(1)).expect("config validates").run();

    let early = |r: &float::core::ExperimentReport| {
        let pts: Vec<f64> = r
            .reward_trajectory()
            .iter()
            .take(5)
            .map(|&(_, w)| w)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    println!("\nearly mean reward (first 5 rounds):");
    println!("  fine-tuned: {:.3}", early(&fine_report));
    println!("  scratch:    {:.3}", early(&fresh_report));
    println!(
        "\nfinal dropouts: fine-tuned {} vs scratch {}",
        fine_report.total_dropouts, fresh_report.total_dropouts
    );
    println!(
        "\nTakeaway: the pre-trained agent starts productive immediately on a\n\
         new dataset and architecture, matching the paper's reusability claim."
    );
}
