//! Replaying externally measured traces through the simulator's
//! interfaces.
//!
//! The built-in generators are statistical stand-ins for the paper's
//! measured 4G/5G traces. When real measurements exist (one sample per
//! line, optionally `timestamp,value` CSV), [`ReplayTrace`] replays them
//! with per-client phase shifts. This example writes a small synthetic
//! "measured" trace to a temp file, loads it back, and compares the
//! replayed series against the built-in Markov generator.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use float::traces::network::bandwidth_stats;
use float::traces::{Mobility, NetworkGen, NetworkProfile, ReplayTrace};

fn main() {
    // A "measured" 4G trace: drives through a tunnel around sample 12.
    let measured = "\
# bandwidth, Mbit/s, 1 sample per round
24.1\n22.8\n25.3\n21.9\n26.7\n23.4\n20.1\n24.8\n22.2\n25.9\n\
18.4\n6.2\n0.8\n0.4\n1.1\n7.9\n16.3\n21.7\n23.9\n24.6\n";
    let path = std::env::temp_dir().join("float_demo_trace.csv");
    std::fs::write(&path, measured).expect("temp file writable");

    let text = std::fs::read_to_string(&path).expect("temp file readable");
    let trace = ReplayTrace::parse(&text).expect("trace parses");
    println!(
        "loaded {} samples from {} (mean {:.1} Mbit/s)",
        trace.len(),
        path.display(),
        trace.mean()
    );

    // Per-client phase shifts stop a replayed fleet from moving in
    // lockstep: client k starts k*3 samples into the recording.
    println!("\nfirst 8 rounds of three phase-shifted replays:");
    for client in 0..3 {
        let replay = trace.with_phase(client * 3);
        let series: Vec<String> = (0..8).map(|r| format!("{:5.1}", replay.at(r))).collect();
        println!("  client {client}: {}", series.join(" "));
    }

    // Side-by-side with the built-in generator's statistics.
    let mut synthetic = NetworkGen::new(NetworkProfile::FourG, Mobility::Driving, 7);
    let stats = bandwidth_stats(&mut synthetic, 2000);
    println!(
        "\nbuilt-in 4G driving generator over 2000 rounds: mean {:.1} Mbit/s, cv {:.2}",
        stats.mean, stats.cv
    );
    println!(
        "replayed measured trace:                        mean {:.1} Mbit/s",
        trace.mean()
    );
    println!(
        "\nTakeaway: anything that yields one bandwidth sample per round can\n\
         drive the simulator — swap the synthetic generators for your own\n\
         measurements without touching the FL logic."
    );
    let _ = std::fs::remove_file(&path);
}
