//! Population smoke run: a 10 000-client synchronous experiment, 5
//! rounds, fault-free and under the hostile chaos preset, each at 1 and
//! 4 worker threads. Asserts the population-scale contract end to end:
//!
//! - no panic, no NaN/Inf in any report;
//! - bit-identical reports across thread counts (fault-free and chaos);
//! - training-data memory bounded by the shard cache — peak residency
//!   never exceeds the cache capacity, and the capacity is a small
//!   fraction of the population (no up-front per-client datasets);
//! - sampled evaluation returns exactly `eval_sample` accuracies.
//!
//! ```text
//! cargo run --release --example population_smoke
//! ```

use float::core::{
    AccelMode, Experiment, ExperimentConfig, ExperimentReport, SelectorChoice, ShardCacheStats,
};
use float::data::Task;
use float::sim::FaultPlan;
use float_bench::Scale;

const ROUNDS: usize = 5;
const SEED: u64 = 20240422;

fn config(chaos: bool, threads: usize) -> ExperimentConfig {
    let mut cfg = Scale::Pop10k.config(Task::Femnist, SelectorChoice::FedAvg, AccelMode::Rlhf);
    cfg.rounds = ROUNDS;
    cfg.eval_every = ROUNDS;
    cfg.seed = SEED;
    cfg.num_threads = threads;
    if chaos {
        cfg.fault_plan = FaultPlan::chaos();
    }
    cfg
}

fn run(chaos: bool, threads: usize) -> (ExperimentReport, ShardCacheStats) {
    Experiment::new(config(chaos, threads))
        .expect("config validates")
        .run_with_cache_stats()
}

fn check(chaos: bool) -> (ExperimentReport, ShardCacheStats) {
    let label = if chaos { "chaos" } else { "fault-free" };
    let (one, stats_one) = run(chaos, 1);
    let (four, stats_four) = run(chaos, 4);
    assert_eq!(
        one, four,
        "{label}: population reports must be bit-identical across thread counts"
    );
    assert!(one.is_finite(), "{label}: report carries NaN/Inf");
    let num_clients = config(chaos, 1).num_clients;
    for (name, stats) in [("1-thread", &stats_one), ("4-thread", &stats_four)] {
        assert!(
            stats.peak_resident <= stats.capacity,
            "{label} {name}: cache exceeded capacity ({} > {})",
            stats.peak_resident,
            stats.capacity
        );
        assert!(
            stats.capacity < num_clients,
            "{label} {name}: cache capacity {} not a strict subset of the {} clients",
            stats.capacity,
            num_clients
        );
    }
    let eval_sample = config(chaos, 1).eval_sample;
    assert_eq!(
        one.client_accuracies.len(),
        eval_sample,
        "{label}: sampled evaluation must report exactly eval_sample accuracies"
    );
    (one, stats_one)
}

fn main() {
    let num_clients = config(false, 1).num_clients;
    println!("population_smoke: {num_clients} clients, {ROUNDS} rounds, sync FedAvg + RLHF");

    for chaos in [false, true] {
        let label = if chaos { "chaos" } else { "fault-free" };
        let (report, stats) = check(chaos);
        println!(
            "  [{label}] mean acc {:.3}  dropouts {}  cache {}/{} resident \
             (hits {} misses {} evictions {})",
            report.accuracy.mean,
            report.total_dropouts,
            stats.peak_resident,
            stats.capacity,
            stats.hits,
            stats.misses,
            stats.evictions
        );
    }
    println!("population smoke passed: bit-identical across threads, memory bounded by cache");
}
