//! Quickstart: run one small FLOAT experiment and print the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};

fn main() {
    // A small, fast configuration: 40 clients, 10 per round, dynamic
    // on-device interference, FedAvg selection with full FLOAT (RLHF)
    // acceleration on top.
    let rounds = 30;
    let config = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, rounds);
    println!(
        "running {} rounds of {} on task '{}' ({} clients, {} per round)…",
        rounds,
        config.accel.name(),
        config.task.name(),
        config.num_clients,
        config.cohort_size,
    );

    let report = Experiment::new(config).expect("config validates").run();

    println!("\n=== {} ===", report.label);
    println!(
        "accuracy: top10% {:.3}  mean {:.3}  bottom10% {:.3}",
        report.accuracy.top10, report.accuracy.mean, report.accuracy.bottom10
    );
    println!(
        "participation: {} completions, {} dropouts ({} clients never completed)",
        report.total_completions,
        report.total_dropouts,
        report.never_completed()
    );
    let r = &report.resources;
    println!(
        "resources: {:.1} compute-h ({:.1} wasted), {:.1} comm-h ({:.1} wasted), {:.2} TB ({:.2} wasted)",
        r.total_compute_h(),
        r.wasted_compute_h,
        r.total_comm_h(),
        r.wasted_comm_h,
        r.total_memory_tb(),
        r.wasted_memory_tb,
    );
    println!("virtual wall-clock: {:.1} h", report.wall_clock_h);

    println!("\nacceleration technique outcomes:");
    let mut names: Vec<&String> = report.technique_stats.keys().collect();
    names.sort();
    for name in names {
        let t = report.technique_stats[name];
        println!(
            "  {name:<10} {:>4} ok / {:>4} failed ({:.0}% success)",
            t.successes,
            t.failures,
            t.success_rate() * 100.0
        );
    }

    println!("\nper-round trace (evaluation rounds only):");
    for rec in report.rounds.iter().filter(|r| r.mean_accuracy.is_some()) {
        println!(
            "  round {:>3}: {}/{} completed, mean accuracy {:.3}",
            rec.round,
            rec.completed,
            rec.selected,
            rec.mean_accuracy.unwrap_or(0.0),
        );
    }
}
