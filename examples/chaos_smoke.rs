//! Chaos smoke run: 100 rounds of the synchronous and asynchronous
//! engines under the hostile fault preset, each at 1 and 4 worker
//! threads, with telemetry enabled throughout. Asserts the hardening
//! contract end to end — no panic, no NaN/Inf anywhere in the reports,
//! quarantined updates accounted identically by ledger and report, and
//! bit-identical results *and event streams* across thread counts — then
//! prints a fault-accounting summary and the first rounds' telemetry
//! digests, and writes the sync run's event stream + report to
//! `target/obs/` for downstream tooling (`obsdump`, see ci.sh).
//!
//! With `--pipelined`, every run overlaps plan/execute/commit
//! (`pipeline_rounds = true`); the same invariants must hold, the sync
//! run is additionally checked byte-identical against a sequential run,
//! and the artefacts land in `chaos_sync_pipelined.*` instead.
//!
//! ```text
//! cargo run --release --example chaos_smoke [-- --pipelined]
//! ```

use float::core::{AccelMode, Experiment, ExperimentConfig, ExperimentReport, SelectorChoice};
use float::obs::{digest, sink, ObsConfig, Telemetry};
use float::sim::FaultPlan;

const ROUNDS: usize = 100;
const SEED: u64 = 20240422;
const DIGEST_ROUNDS: u64 = 3;

fn run(selector: SelectorChoice, threads: usize, pipelined: bool) -> (ExperimentReport, Telemetry) {
    let mut cfg = ExperimentConfig::small(selector, AccelMode::Rlhf, ROUNDS);
    cfg.seed = SEED;
    cfg.fault_plan = FaultPlan::chaos();
    cfg.num_threads = threads;
    cfg.obs = ObsConfig::on();
    cfg.pipeline_rounds = pipelined;
    Experiment::new(cfg).expect("config validates").run_traced()
}

fn check(selector: SelectorChoice, pipelined: bool) -> (ExperimentReport, Telemetry) {
    let (one, tel_one) = run(selector, 1, pipelined);
    let (four, tel_four) = run(selector, 4, pipelined);
    assert_eq!(
        one, four,
        "{}: faulted reports must be bit-identical across thread counts",
        one.label
    );
    assert_eq!(
        tel_one.events, tel_four.events,
        "{}: telemetry event streams must be bit-identical across thread counts",
        one.label
    );
    assert!(one.is_finite(), "{}: report carries NaN/Inf", one.label);
    assert_eq!(
        one.total_quarantined, one.resources.quarantined,
        "{}: ledger and report disagree on quarantines",
        one.label
    );
    assert!(
        one.total_quarantined > 0,
        "{}: chaos preset quarantined nothing in {ROUNDS} rounds",
        one.label
    );
    (one, tel_one)
}

fn summarize(r: &ExperimentReport, tel: &Telemetry) {
    println!("\n=== {} ===", r.label);
    println!(
        "  {} completions, {} dropouts over {} rounds ({:.1} virtual hours)",
        r.total_completions,
        r.total_dropouts,
        r.rounds.len(),
        r.wall_clock_h
    );
    println!(
        "  faults absorbed: {} quarantined, {} duplicates suppressed, {} stall retries",
        r.total_quarantined, r.duplicates_suppressed, r.stall_retries
    );
    println!(
        "  accuracy: top10% {:.3}  mean {:.3}  bottom10% {:.3}",
        r.accuracy.top10, r.accuracy.mean, r.accuracy.bottom10
    );
    println!(
        "  telemetry: {} events recorded, {} dropped",
        tel.summary.events_recorded, tel.summary.events_dropped
    );
    for round in 0..DIGEST_ROUNDS {
        println!("  {}", digest::round_digest(round, &tel.events));
    }
}

fn main() {
    let plan = FaultPlan::chaos();
    println!(
        "chaos smoke: {ROUNDS} rounds, seed {SEED}, rates crash {:.0}% / stall {:.0}% / \
         duplicate {:.0}% / corrupt {:.0}%, {} stall retries @ {:.0}s backoff",
        plan.crash_rate * 100.0,
        plan.stall_rate * 100.0,
        plan.duplicate_rate * 100.0,
        plan.corrupt_rate * 100.0,
        plan.stall_max_retries,
        plan.stall_backoff_s,
    );

    let pipelined = std::env::args().any(|a| a == "--pipelined");
    if pipelined {
        println!("pipelined rounds: plan/execute/commit overlapped, same bits required");
    }

    let (sync, sync_tel) = check(SelectorChoice::FedAvg, pipelined);
    summarize(&sync, &sync_tel);
    assert!(sync.stall_retries > 0, "sync engine retried no stalls");

    let (async_r, async_tel) = check(SelectorChoice::FedBuff, pipelined);
    summarize(&async_r, &async_tel);

    if pipelined {
        // The pipelining contract: a sequential run of the same config
        // produces the same report bit-for-bit (spans may move in the
        // stream; everything else is identical — see DESIGN.md §16).
        let (seq, _) = run(SelectorChoice::FedAvg, 4, false);
        assert_eq!(
            sync, seq,
            "pipelined sync report diverged from the sequential run"
        );
        println!(
            "
pipelined report matches sequential byte-for-byte"
        );
    }

    // Persist the sync run's artefacts so obsdump can replay and
    // reconcile them (ci.sh asserts the event↔ledger identities).
    let dir = std::path::Path::new("target/obs");
    let stem = if pipelined {
        "chaos_sync_pipelined"
    } else {
        "chaos_sync"
    };
    sink::write_jsonl(dir.join(format!("{stem}.jsonl")), &sync_tel.events)
        .expect("write event stream");
    let report_json = serde_json::to_string_pretty(&sync).expect("report serializes");
    std::fs::write(
        dir.join(format!("{stem}.report.json")),
        format!("{report_json}\n"),
    )
    .expect("write report json");
    println!(
        "\nwrote target/obs/{stem}.jsonl ({} events) and {stem}.report.json",
        sync_tel.events.len()
    );

    println!("\nchaos smoke passed: finite, deterministic, faults accounted.");
}
