//! Chaos smoke run: 100 rounds of the synchronous and asynchronous
//! engines under the hostile fault preset, each at 1 and 4 worker
//! threads. Asserts the hardening contract end to end — no panic, no
//! NaN/Inf anywhere in the reports, quarantined updates accounted
//! identically by ledger and report, and bit-identical results across
//! thread counts — then prints a fault-accounting summary.
//!
//! ```text
//! cargo run --release --example chaos_smoke
//! ```

use float::core::{AccelMode, Experiment, ExperimentConfig, ExperimentReport, SelectorChoice};
use float::sim::FaultPlan;

const ROUNDS: usize = 100;
const SEED: u64 = 20240422;

fn run(selector: SelectorChoice, threads: usize) -> ExperimentReport {
    let mut cfg = ExperimentConfig::small(selector, AccelMode::Rlhf, ROUNDS);
    cfg.seed = SEED;
    cfg.fault_plan = FaultPlan::chaos();
    cfg.num_threads = threads;
    Experiment::new(cfg).expect("config validates").run()
}

fn check(selector: SelectorChoice) -> ExperimentReport {
    let one = run(selector, 1);
    let four = run(selector, 4);
    assert_eq!(
        one, four,
        "{}: faulted reports must be bit-identical across thread counts",
        one.label
    );
    assert!(one.is_finite(), "{}: report carries NaN/Inf", one.label);
    assert_eq!(
        one.total_quarantined, one.resources.quarantined,
        "{}: ledger and report disagree on quarantines",
        one.label
    );
    assert!(
        one.total_quarantined > 0,
        "{}: chaos preset quarantined nothing in {ROUNDS} rounds",
        one.label
    );
    one
}

fn summarize(r: &ExperimentReport) {
    println!("\n=== {} ===", r.label);
    println!(
        "  {} completions, {} dropouts over {} rounds ({:.1} virtual hours)",
        r.total_completions,
        r.total_dropouts,
        r.rounds.len(),
        r.wall_clock_h
    );
    println!(
        "  faults absorbed: {} quarantined, {} duplicates suppressed, {} stall retries",
        r.total_quarantined, r.duplicates_suppressed, r.stall_retries
    );
    println!(
        "  accuracy: top10% {:.3}  mean {:.3}  bottom10% {:.3}",
        r.accuracy.top10, r.accuracy.mean, r.accuracy.bottom10
    );
}

fn main() {
    let plan = FaultPlan::chaos();
    println!(
        "chaos smoke: {ROUNDS} rounds, seed {SEED}, rates crash {:.0}% / stall {:.0}% / \
         duplicate {:.0}% / corrupt {:.0}%, {} stall retries @ {:.0}s backoff",
        plan.crash_rate * 100.0,
        plan.stall_rate * 100.0,
        plan.duplicate_rate * 100.0,
        plan.corrupt_rate * 100.0,
        plan.stall_max_retries,
        plan.stall_backoff_s,
    );

    let sync = check(SelectorChoice::FedAvg);
    summarize(&sync);
    assert!(sync.stall_retries > 0, "sync engine retried no stalls");

    let async_r = check(SelectorChoice::FedBuff);
    summarize(&async_r);

    println!("\nchaos smoke passed: finite, deterministic, faults accounted.");
}
