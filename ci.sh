#!/usr/bin/env bash
# Local CI for the FLOAT reproduction (the build environment has no
# network, so this script stands in for hosted Actions). Run before
# every merge:
#
#   ./ci.sh            # full gate: fmt, clippy, release build, tests
#   ./ci.sh quick      # skip the release build (fastest signal)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release --offline
fi

step "cargo test -q"
cargo test -q --offline

step "fault-injection property tests"
cargo test -q --offline --test fault_injection --test sim_properties

if [[ "${1:-}" != "quick" ]]; then
  # Short chaos run with a fixed seed and every fault kind active:
  # asserts reports stay finite and bit-identical across thread counts.
  step "chaos smoke (faults on)"
  cargo run --release --offline --example chaos_smoke

  # Kernel micro-bench in quick mode: asserts the blocked GEMM stays
  # bit-identical to the ascending-order reference and that the emitted
  # report parses with positive throughput on every shape. Writes to a
  # scratch path so the checked-in BENCH_kernels.json (full run) is not
  # clobbered by CI's reduced iteration counts.
  step "kernel throughput (quick self-check)"
  cargo run --release --offline -p float-bench --bin kernel_throughput -- \
    --quick --out target/BENCH_kernels_ci.json
fi

step "CI green"
