#!/usr/bin/env bash
# Local CI for the FLOAT reproduction (the build environment has no
# network, so this script stands in for hosted Actions). Run before
# every merge:
#
#   ./ci.sh            # full gate: fmt, clippy, release build, tests
#   ./ci.sh quick      # skip the release build (fastest signal)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release --offline
fi

step "cargo test -q"
cargo test -q --offline

step "fault-injection property tests"
cargo test -q --offline --test fault_injection --test sim_properties

# Event-driven availability: the calendar index vs brute force over
# arbitrary round orders and battery states, plus the pooled-planner
# contract (candidate_pool = 0 reproduces pinned pre-pool reports
# byte-for-byte; pooled runs are thread-count invariant).
step "availability index + candidate pool tests"
cargo test -q --offline --test availability_index --test candidate_pool

# Pipelined rounds: plan/execute/commit overlap must change wall-clock
# only — reports (including the pinned pre-pipeline goldens) byte-for-
# byte, telemetry identical modulo phase-span stream position.
step "pipelined-rounds determinism tests"
cargo test -q --offline --test pipelined_determinism

# Online profiling: profiling off reproduces the pinned goldens
# byte-for-byte; profiling on is bit-identical across thread counts
# and across the pipelined/sequential engines; the bounded store's
# accounting identities hold under eviction and arbitrary sequences.
step "online-profiling determinism tests"
cargo test -q --offline --test profiling

# Sweep orchestrator: per-trial reports invariant to worker count, trial
# interleaving, and pruning (for survivors), plus the pinned small-grid
# golden guarding the whole stack against drift.
step "sweep-orchestrator determinism tests"
cargo test -q --offline --test sweep_determinism

if [[ "${1:-}" != "quick" ]]; then
  # Short chaos run with a fixed seed, every fault kind active, and
  # telemetry on: asserts reports *and event streams* stay finite and
  # bit-identical across thread counts, and writes the sync run's JSONL
  # event stream + report JSON to target/obs/ for the next step.
  step "chaos smoke (faults + telemetry on)"
  cargo run --release --offline --example chaos_smoke

  # Replay the event stream and reconcile it against the report: every
  # committed attempt must appear exactly once as a ClientOutcome event,
  # so the ledger totals, retry/dedup counters, and per-round records
  # must all be derivable from the JSONL alone. obsdump exits 1 on any
  # mismatch.
  step "telemetry reconcile (obsdump)"
  cargo run --release --offline -p float-bench --bin obsdump -- \
    target/obs/chaos_sync.jsonl --report target/obs/chaos_sync.report.json \
    --clients 1 > target/obs/obsdump_ci.txt
  grep -q "event stream and report reconcile exactly" target/obs/obsdump_ci.txt

  # The same chaos run with pipelined rounds: identical invariants, plus
  # an in-process byte-identity check against the sequential report, and
  # a reconcile of the pipelined event stream (exercising the
  # overlapped_us span accounting end to end).
  step "chaos smoke (pipelined rounds)"
  cargo run --release --offline --example chaos_smoke -- --pipelined
  cargo run --release --offline -p float-bench --bin obsdump -- \
    target/obs/chaos_sync_pipelined.jsonl \
    --report target/obs/chaos_sync_pipelined.report.json \
    --clients 1 > target/obs/obsdump_pipelined_ci.txt
  grep -q "event stream and report reconcile exactly" \
    target/obs/obsdump_pipelined_ci.txt

  # Profiling smoke: sync Oort + async FedBuff with the online client
  # profiler enabled, fault-free and chaos, each asserted bit-identical
  # across 1 vs 4 worker threads (the profiler folds observations only
  # in the sequential commit phase), plus the pipelined==sequential and
  # label-suffix contracts. Writes the sync chaos run's event stream +
  # report to target/obs/ for the profile replay gate below.
  step "profiling smoke (online profiler, 1 vs 4 threads)"
  cargo run --release --offline --example profiling_smoke

  # Replay the profiled run's event stream through a fresh profiler and
  # reconcile its accounting against the report: observation counts,
  # store accounting, completions, and quarantines must all be
  # derivable from the JSONL alone. obsdump exits 1 on any mismatch.
  step "profile replay reconcile (obsdump --profiles)"
  cargo run --release --offline -p float-bench --bin obsdump -- \
    target/obs/profiling_sync.jsonl \
    --report target/obs/profiling_sync.report.json \
    --profiles --clients 1 > target/obs/obsdump_profiles_ci.txt
  grep -q "profile replay reconciles exactly" target/obs/obsdump_profiles_ci.txt
  grep -q "event stream and report reconcile exactly" \
    target/obs/obsdump_profiles_ci.txt

  # Oracle-gap benchmark in quick mode: the Oort chaos cell in all
  # three estimation modes (oracle / profiled / coldstart), the
  # 1-vs-4-thread determinism probe, and a parse-back asserting
  # mode-correct labels and non-empty convergence curves. Writes to
  # target/ so the checked-in BENCH_profile_gap.json (full grid) is not
  # clobbered by CI.
  step "profile gap (quick self-check)"
  cargo run --release --offline -p float-bench --bin profile_gap -- --quick

  # Kernel micro-bench in quick mode: asserts the blocked GEMM stays
  # bit-identical to the ascending-order reference and that the emitted
  # report parses with positive throughput on every shape. --gate holds
  # every shape to its per-shape speedup floor over the pinned PR 3
  # (4x8-kernel) baseline, so a kernel regression fails CI. Writes to a
  # scratch path so the checked-in BENCH_kernels.json (full run) is not
  # clobbered by CI's reduced iteration counts.
  step "kernel throughput (quick self-check, gated vs PR 3 baseline)"
  cargo run --release --offline -p float-bench --bin kernel_throughput -- \
    --quick --gate --out target/BENCH_kernels_ci.json

  # Population smoke: 10k clients, sync, fault-free + chaos, 1 vs 4
  # threads. Asserts bit-identical reports, finite numbers, and that
  # training-data memory stayed bounded by the shard cache (peak
  # residency <= capacity << population).
  step "population smoke (10k clients, lazy shards)"
  cargo run --release --offline --example population_smoke

  # Population benchmark in quick mode: the 10k sweep rows, a pooled
  # stand-in row (the 10M preset's candidate_pool=2048 config downsized
  # to 10k clients, so CI exercises the sampled-planner path), the
  # 1-vs-2-thread determinism probe, and a parse-back of the emitted
  # JSON asserting positive throughput, the cache bound, and the
  # availability-index stats. Writes to target/ so the checked-in
  # BENCH_population_scale.json (full 10k/100k/1M/10M run) is not
  # clobbered by CI.
  step "population scale (quick self-check, incl. pooled stand-in)"
  cargo run --release --offline -p float-bench --bin population_scale -- --quick

  # Algorithm comparison in quick mode: one chaos cell per server
  # optimizer / drift-correction variant, a 1-vs-4-thread determinism
  # probe of the heaviest composition (FedYogi + FedProx + SCAFFOLD),
  # and a parse-back asserting finite accuracies, correctly suffixed
  # labels, and replayable per-trial event streams. Writes to target/
  # so the checked-in BENCH_algo_compare.json (full 48-trial grid) is
  # not clobbered by CI.
  step "algorithm comparison (quick self-check)"
  cargo run --release --offline -p float-bench --bin algo_compare -- --quick

  # Sweep orchestrator in quick mode: a 2x2 grid (cohort x epochs) with
  # eta=2 successive halving, a 1-vs-4-worker bit-identity probe over
  # the shared population, per-trial JSONL under target/obs/sweep_ci,
  # and a parse-back asserting in-range accuracies, positive trials/hour,
  # a non-empty Pareto frontier, and replayable event streams. Writes to
  # target/ so the checked-in BENCH_sweep.json (full 3x3 grid) is not
  # clobbered by CI.
  step "sweep orchestrator (quick self-check)"
  cargo run --release --offline -p float-bench --bin sweepexp -- --quick
fi

step "CI green"
