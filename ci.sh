#!/usr/bin/env bash
# Local CI for the FLOAT reproduction (the build environment has no
# network, so this script stands in for hosted Actions). Run before
# every merge:
#
#   ./ci.sh            # full gate: fmt, clippy, release build, tests
#   ./ci.sh quick      # skip the release build (fastest signal)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release --offline
fi

step "cargo test -q"
cargo test -q --offline

step "CI green"
