#!/usr/bin/env bash
# Local CI for the FLOAT reproduction (the build environment has no
# network, so this script stands in for hosted Actions). Run before
# every merge:
#
#   ./ci.sh            # full gate: fmt, clippy, release build, tests
#   ./ci.sh quick      # skip the release build (fastest signal)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release --offline
fi

step "cargo test -q"
cargo test -q --offline

step "fault-injection property tests"
cargo test -q --offline --test fault_injection --test sim_properties

if [[ "${1:-}" != "quick" ]]; then
  # Short chaos run with a fixed seed and every fault kind active:
  # asserts reports stay finite and bit-identical across thread counts.
  step "chaos smoke (faults on)"
  cargo run --release --offline --example chaos_smoke
fi

step "CI green"
