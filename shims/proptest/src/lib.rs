//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range and [`any`] strategies, `prop_map`,
//! `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs (via `Debug` in
//!   the panic message) but is not minimized.
//! - **Deterministic inputs.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Runner configuration (case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The random source handed to strategies: xoshiro256++ seeded from the
/// test name, so runs are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a to fold the name into a u64, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut word = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [word(), word(), word(), word()],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                (lo + (hi - lo) * rng.unit_f64() as $t).clamp(lo, hi)
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy behind [`any`]: uniform over the type's full range.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy { _marker: core::marker::PhantomData }
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> AnyStrategy<bool> {
        AnyStrategy {
            _marker: core::marker::PhantomData,
        }
    }
}

/// The canonical strategy for a type (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: built from `usize` ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategy combinators namespace (mirrors `proptest::prop`-style paths;
/// the prelude re-exports the crate root as `prop`).
pub mod strategy {
    pub use super::{MapStrategy, Strategy};
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Run a block of property tests.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each function
/// becomes a normal `#[test]` that evaluates its body over `cases`
/// random inputs; `prop_assert!`-style failures report the failing
/// inputs without shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); ) => {};
    (@cfg ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs up front: the body closure takes them by
                // value, so they are gone by the time a failure reports.
                let inputs = format!("{:?}", ($(&$arg,)+));
                #[allow(clippy::redundant_closure_call)]
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = result {
                    panic!("proptest case {case} failed: {message}\ninputs: {inputs}");
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
}

/// Assert inside a [`proptest!`] body; failure fails the case with the
/// formatted message instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(x in (1u32..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_u64_works(s in any::<u64>()) {
            let _ = s;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
