//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal serialization framework with the same
//! import surface it uses from real serde: the [`Serialize`] /
//! [`Deserialize`] traits (re-exported alongside same-named derive macros
//! from `serde_derive` under the `derive` feature) and a `serde::de`
//! module with an [`Error`] type.
//!
//! Instead of serde's visitor-based data model, everything funnels
//! through a JSON-shaped [`Value`] tree: `Serialize` renders a value tree
//! and `Deserialize` reads one back. `serde_json` (also vendored) is then
//! just a text codec for [`Value`]. This keeps derived code trivial while
//! supporting the workspace's actual needs: reports, configs, Q-table
//! persistence, and JSONL round logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Entry order is preserved.
    Object(Map),
}

impl Value {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` iff this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` iff this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` iff this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` iff this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric payload as `u64` if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric payload as `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A JSON number: unsigned / signed integer or float, like `serde_json`.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Build from a float (stored as-is, including non-finite values;
    /// the JSON writer renders non-finite floats as `null`).
    pub fn from_f64(v: f64) -> Number {
        Number { n: N::Float(v) }
    }

    /// Widen to `f64`.
    pub fn as_f64(&self) -> f64 {
        match self.n {
            N::PosInt(u) => u as f64,
            N::NegInt(i) => i as f64,
            N::Float(f) => f,
        }
    }

    /// As `u64` if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(u) => Some(u),
            N::NegInt(i) => u64::try_from(i).ok(),
            N::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            N::Float(_) => None,
        }
    }

    /// As `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(u) => i64::try_from(u).ok(),
            N::NegInt(i) => Some(i),
            N::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            N::Float(_) => None,
        }
    }

    /// `true` iff stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }
}

// Numeric equality across representations: `1`, `1u64`, and `1.0`
// compare equal. Lenient by design — round-trips through JSON text may
// change the representation of whole floats.
impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Number {
        Number { n: N::PosInt(v) }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Number {
        if v >= 0 {
            Number {
                n: N::PosInt(v as u64),
            }
        } else {
            Number { n: N::NegInt(v) }
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            N::Float(v) => {
                if !v.is_finite() {
                    // JSON has no non-finite literals; mirror a lossy but
                    // parseable choice.
                    write!(f, "null")
                } else {
                    let s = format!("{v}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        write!(f, "{s}")
                    } else {
                        // Keep float-ness visible, like serde_json ("1.0").
                        write!(f, "{s}.0")
                    }
                }
            }
        }
    }
}

/// A JSON object: string keys to values, insertion-ordered.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing (and returning) any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

// Order-insensitive equality: two objects with the same key→value pairs
// are equal regardless of insertion order.
impl PartialEq for Map {
    fn eq(&self, other: &Map) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Compatibility alias module: `serde::de::Error::custom` works.
pub mod de {
    pub use crate::Error;
}

/// Compatibility alias module mirroring `serde::ser`.
pub mod ser {
    pub use crate::Error;
}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Render as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

// String-keyed maps serialize with keys sorted, matching serde_json's
// default (BTreeMap-backed) behavior and keeping output deterministic.
impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(&String, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom(concat!(
                    "expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom(concat!(
                    "expected integer for ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        // `null` maps back to NaN: the writer renders non-finite floats
        // as null, and this keeps such round-trips lossless enough.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if arr.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<(A, B, C), Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if arr.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<HashMap<String, V, S>, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, val) in obj.iter() {
            out.insert(k.clone(), V::from_value(val)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!((f64::from_value(&1.5f64.to_value()).unwrap() - 1.5).abs() < 1e-12);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_value(&Value::Null).unwrap(),
            None::<u32>
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        let pair: (usize, String) = Deserialize::from_value(&(4usize, "x").to_value()).unwrap();
        assert_eq!(pair, (4, "x".to_string()));
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        let keys: Vec<&String> = obj.keys().collect();
        assert_eq!(keys, ["a", "b"]);
        let back: HashMap<String, u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn number_equality_is_semantic() {
        assert_eq!(Number::from(1u64), Number::from_f64(1.0));
        assert_ne!(Number::from(1u64), Number::from(2u64));
    }

    #[test]
    fn map_equality_ignores_order() {
        let mut a = Map::new();
        a.insert("x".into(), Value::Bool(true));
        a.insert("y".into(), Value::Null);
        let mut b = Map::new();
        b.insert("y".into(), Value::Null);
        b.insert("x".into(), Value::Bool(true));
        assert_eq!(Value::Object(a), Value::Object(b));
    }

    #[test]
    fn index_returns_null_for_missing() {
        let v = Value::Null;
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }
}
