//! Offline stand-in for `serde_json`.
//!
//! A JSON text codec over the vendored `serde` shim's [`Value`] tree:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`to_value`],
//! plus re-exports of [`Value`], [`Map`], and [`Number`]. Output matches
//! serde_json conventions closely enough for this workspace: compact
//! separators (`,`/`:`), two-space pretty indentation, sorted map output
//! for `HashMap` fields (the shim sorts at serialization time), and
//! floats printed with a trailing `.0` when integral.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::{Map, Number, Value};

/// JSON encode/decode error: a message plus optional position.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render a serializable value as its [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        let n = if is_float {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("bad number `{text}`")))?,
            )
        } else if let Ok(u) = text.parse::<u64>() {
            Number::from(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::from(i)
        } else {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let src = r#"{"a":[1,2.5,-3],"b":"hi\nthere","c":null,"d":true}"#;
        let v: Value = from_str(src).unwrap();
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v["b"].as_str().unwrap(), "hi\nthere");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Value = from_str(r#"{"x":{"y":[1]}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"x\""), "{pretty}");
        assert!(pretty.ends_with('}'));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let s = to_string(&vec![1.0f64, 0.5]).unwrap();
        assert_eq!(s, "[1.0,0.5]");
    }

    #[test]
    fn integer_widths_parse() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = from_str("-42").unwrap();
        assert_eq!(v.as_i64(), Some(-42));
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1F600}");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{nope}").is_err());
        assert!(from_str::<Value>("[1,2,").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
