//! Offline stand-in for `serde_derive`.
//!
//! Emits `Serialize` / `Deserialize` impls against the vendored
//! value-tree `serde` shim (`to_value` / `from_value`). The parser walks
//! the raw `proc_macro::TokenStream` directly (no `syn`/`quote`, which
//! are unavailable offline) and supports exactly what this workspace
//! derives on:
//!
//! - structs with named fields,
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default representation),
//! - the field attributes `#[serde(skip)]`, `#[serde(default)]`, and
//!   `#[serde(skip_serializing_if = "Option::is_none")]` (only that
//!   predicate, on `Option` fields),
//! - `Option<T>` fields tolerating a missing key (as in real serde).
//!
//! Generic types, tuple structs, and renaming attributes are
//! intentionally unsupported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    skip: bool,
    default: bool,
    /// `skip_serializing_if = "Option::is_none"`: omit the key when the
    /// `Option` field is `None` (the only supported predicate).
    skip_if_none: bool,
    is_option: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Parsed {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Scan one attribute token group (the `[...]` after `#`) for
/// `serde(skip)` / `serde(default)` / `serde(skip_serializing_if = ...)`
/// markers.
fn scan_attr(
    group: &proc_macro::Group,
    skip: &mut bool,
    default: &mut bool,
    skip_if_none: &mut bool,
) {
    let mut iter = group.stream().into_iter();
    let Some(TokenTree::Ident(name)) = iter.next() else {
        return;
    };
    if name.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return;
    };
    let mut toks = args.stream().into_iter().peekable();
    while let Some(tok) = toks.next() {
        if let TokenTree::Ident(i) = tok {
            match i.to_string().as_str() {
                "skip" => *skip = true,
                "default" => *default = true,
                "skip_serializing_if" => {
                    match toks.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                        other => panic!(
                            "serde shim derive: expected `=` after \
                             `skip_serializing_if`, found {other:?}"
                        ),
                    }
                    match toks.next() {
                        Some(TokenTree::Literal(l)) if l.to_string() == "\"Option::is_none\"" => {
                            *skip_if_none = true;
                        }
                        other => panic!(
                            "serde shim derive: the only supported \
                             skip_serializing_if predicate is \
                             \"Option::is_none\", found {other:?}"
                        ),
                    }
                }
                other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
            }
        }
    }
}

/// Parse the fields of a named-field body (`{ ... }`).
fn parse_named_fields(body: proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        let mut skip = false;
        let mut default = false;
        let mut skip_if_none = false;
        // Leading attributes (doc comments included).
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    match toks.next() {
                        Some(TokenTree::Group(g)) => {
                            scan_attr(&g, &mut skip, &mut default, &mut skip_if_none)
                        }
                        other => panic!("serde shim derive: malformed attribute near {other:?}"),
                    }
                }
                _ => break,
            }
        }
        // Optional visibility.
        if let Some(TokenTree::Ident(i)) = toks.peek() {
            if i.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, found {other:?}"),
        }
        // Consume the type up to a top-level comma, tracking angle depth
        // so `HashMap<K, V>` commas don't split the field.
        let mut angle_depth = 0usize;
        let mut first_type_tok: Option<String> = None;
        for tok in toks.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            if first_type_tok.is_none() {
                first_type_tok = Some(tok.to_string());
            }
        }
        let is_option = first_type_tok.as_deref() == Some("Option");
        if skip_if_none && !is_option {
            panic!(
                "serde shim derive: skip_serializing_if = \"Option::is_none\" \
                 requires an Option field (`{name}` is not)"
            );
        }
        fields.push(Field {
            name,
            skip,
            default,
            skip_if_none,
            is_option,
        });
    }
    fields
}

/// Count the arity of a tuple-variant body (`( ... )`).
fn tuple_arity(body: proc_macro::Group) -> usize {
    let mut angle_depth = 0usize;
    let mut arity = 0usize;
    let mut saw_tok = false;
    for tok in body.stream() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tok = false;
                continue;
            }
            _ => {}
        }
        saw_tok = true;
    }
    if saw_tok {
        arity += 1;
    }
    arity
}

fn parse_variants(body: proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip attributes.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            } else if p.as_char() == '=' {
                panic!("serde shim derive: explicit discriminants are unsupported");
            }
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are unsupported (derive on `{name}`)");
        }
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde shim derive: expected a braced body for `{name}` \
             (tuple/unit structs are unsupported), found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Parsed::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Parsed::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    }
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[Field], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut map = ::serde::Map::new();\n"
    ));
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        if f.skip_if_none {
            out.push_str(&format!(
                "if !::std::option::Option::is_none(&self.{fname}) {{\n\
                 map.insert(::std::string::String::from(\"{fname}\"), \
                 ::serde::Serialize::to_value(&self.{fname}));\n}}\n"
            ));
        } else {
            out.push_str(&format!(
                "map.insert(::std::string::String::from(\"{fname}\"), \
                 ::serde::Serialize::to_value(&self.{fname}));\n"
            ));
        }
    }
    out.push_str("::serde::Value::Object(map)\n}\n}\n");
}

/// The expression for one missing field during struct deserialization.
fn missing_expr(ty_name: &str, f: &Field) -> String {
    if f.skip || f.default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\
             \"{ty_name}: missing field `{}`\"))",
            f.name
        )
    }
}

fn gen_field_reads(ty_name: &str, source: &str, fields: &[Field], out: &mut String) {
    for f in fields {
        let fname = &f.name;
        if f.skip {
            out.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
            continue;
        }
        out.push_str(&format!(
            "{fname}: match {source}.get(\"{fname}\") {{\n\
             ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
             ::std::option::Option::None => {{ {} }}\n\
             }},\n",
            missing_expr(ty_name, f)
        ));
    }
}

fn gen_struct_deserialize(name: &str, fields: &[Field], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let obj = match value.as_object() {{\n\
         ::std::option::Option::Some(m) => m,\n\
         ::std::option::Option::None => return ::std::result::Result::Err(\
         ::serde::Error::custom(\"{name}: expected object\")),\n\
         }};\n\
         ::std::result::Result::Ok({name} {{\n"
    ));
    gen_field_reads(name, "obj", fields, out);
    out.push_str("})\n}\n}\n");
}

fn gen_enum_serialize(name: &str, variants: &[Variant], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n"
    ));
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                out.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::String(\
                     ::std::string::String::from(\"{vname}\")),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                out.push_str(&format!(
                    "{name}::{vname}(__f0) => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert(::std::string::String::from(\"{vname}\"), \
                     ::serde::Serialize::to_value(__f0));\n\
                     ::serde::Value::Object(map)\n}}\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                out.push_str(&format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut map = ::serde::Map::new();\n\
                     map.insert(::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Array(vec![{}]));\n\
                     ::serde::Value::Object(map)\n}}\n",
                    binds.join(", "),
                    elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                out.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut inner = ::serde::Map::new();\n",
                    binds.join(", ")
                ));
                for f in fields {
                    let fname = &f.name;
                    out.push_str(&format!(
                        "inner.insert(::std::string::String::from(\"{fname}\"), \
                         ::serde::Serialize::to_value({fname}));\n"
                    ));
                }
                out.push_str(&format!(
                    "let mut map = ::serde::Map::new();\n\
                     map.insert(::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(inner));\n\
                     ::serde::Value::Object(map)\n}}\n"
                ));
            }
        }
    }
    out.push_str("}\n}\n}\n");
}

fn gen_enum_deserialize(name: &str, variants: &[Variant], out: &mut String) {
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         if let ::std::option::Option::Some(s) = value.as_str() {{\n\
         return match s {{\n"
    ));
    for v in variants {
        if matches!(v.kind, VariantKind::Unit) {
            let vname = &v.name;
            out.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            ));
        }
    }
    out.push_str(&format!(
        "_ => ::std::result::Result::Err(::serde::Error::custom(\
         \"{name}: unknown variant\")),\n\
         }};\n\
         }}\n\
         let obj = match value.as_object() {{\n\
         ::std::option::Option::Some(m) if m.len() == 1 => m,\n\
         _ => return ::std::result::Result::Err(::serde::Error::custom(\
         \"{name}: expected variant string or single-key object\")),\n\
         }};\n\
         let (key, inner) = match obj.iter().next() {{\n\
         ::std::option::Option::Some((k, v)) => (k.as_str(), v),\n\
         ::std::option::Option::None => unreachable!(),\n\
         }};\n\
         match key {{\n"
    ));
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {}
            VariantKind::Tuple(1) => {
                out.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok(\
                     {name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                    .collect();
                out.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let arr = match inner.as_array() {{\n\
                     ::std::option::Option::Some(a) if a.len() == {n} => a,\n\
                     _ => return ::std::result::Result::Err(::serde::Error::custom(\
                     \"{name}::{vname}: expected {n}-element array\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                    elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                out.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let vobj = match inner.as_object() {{\n\
                     ::std::option::Option::Some(m) => m,\n\
                     _ => return ::std::result::Result::Err(::serde::Error::custom(\
                     \"{name}::{vname}: expected object\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}::{vname} {{\n"
                ));
                gen_field_reads(name, "vobj", fields, out);
                out.push_str("})\n}\n");
            }
        }
    }
    out.push_str(&format!(
        "_ => ::std::result::Result::Err(::serde::Error::custom(\
         \"{name}: unknown variant\")),\n\
         }}\n}}\n}}\n"
    ));
}

/// Derive `Serialize` (value-tree shim flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_input(input) {
        Parsed::Struct { name, fields } => gen_struct_serialize(&name, &fields, &mut out),
        Parsed::Enum { name, variants } => gen_enum_serialize(&name, &variants, &mut out),
    }
    out.parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derive `Deserialize` (value-tree shim flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_input(input) {
        Parsed::Struct { name, fields } => gen_struct_deserialize(&name, &fields, &mut out),
        Parsed::Enum { name, variants } => gen_enum_deserialize(&name, &variants, &mut out),
    }
    out.parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
