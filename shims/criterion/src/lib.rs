//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `black_box`) with a simple
//! wall-clock timer: each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a fixed measurement window, and the
//! mean per-iteration time is printed. No statistics, plotting, or
//! baseline storage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    mean_s: f64,
    measurement: Duration,
}

impl Bencher {
    /// Time the closure: brief warmup, then as many iterations as fit
    /// the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: run until ~10% of the window has passed.
        let calib_budget = self.measurement.mul_f64(0.1).max(Duration::from_millis(5));
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < calib_budget {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let target = (self.measurement.as_secs_f64() / per_iter.max(1e-9)).clamp(1.0, 1e7) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.mean_s = start.elapsed().as_secs_f64() / target as f64;
    }
}

fn run_one(name: &str, measurement: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean_s: 0.0,
        measurement,
    };
    f(&mut b);
    let t = b.mean_s;
    let pretty = if t >= 1.0 {
        format!("{t:.3} s")
    } else if t >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else if t >= 1e-6 {
        format!("{:.3} µs", t * 1e6)
    } else {
        format!("{:.1} ns", t * 1e9)
    };
    println!("{name:<50} time: {pretty}");
}

/// The benchmark driver.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(name, self.measurement, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement: self.measurement,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is iteration-count
    /// driven here, so this only scales the measurement window down for
    /// small sample requests.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.measurement = self.measurement.mul_f64(0.5);
        }
        self
    }

    /// Set this group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.measurement, |b| f(b));
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.measurement, |b| f(b, input));
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default().measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_all_benches() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.bench_with_input(BenchmarkId::from_parameter("p"), &1u8, |b, _| {
            b.iter(|| black_box(0))
        });
        group.finish();
    }
}
