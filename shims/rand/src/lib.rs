//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of the rand 0.8 API it actually uses: `StdRng` (seeded via
//! [`SeedableRng::seed_from_u64`]), the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`, `sample`), [`seq::SliceRandom`]
//! (`shuffle`, `choose`), and the [`distributions::Distribution`] trait.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation purposes and fully deterministic per seed. The
//! stream differs from upstream `StdRng` (ChaCha12); all experiment seeds
//! in this repository are self-contained, so only internal determinism
//! matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of random `u64`/`u32` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (always available upstream,
    /// and the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution
    /// (uniform over the type's natural range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions and range sampling.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value using `rng` as the entropy source.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for
    /// integers and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<i32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Marker for types uniformly sampleable from ranges. Exists (as in
    /// real rand) to pin type inference: without it, `x * gen_range(..)`
    /// is ambiguous between `T` and `&T` operand impls.
    pub trait SampleUniform {}

    macro_rules! sample_uniform {
        ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
    }
    sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A range that can be sampled uniformly (`gen_range` argument).
    pub trait SampleRange<T> {
        /// Draw one value uniformly from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    // Widening-multiply bounded integer draw (Lemire). The tiny modulo
    // bias (span / 2^64) is far below anything a simulation can observe.
    fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u: $t = rng.gen();
                    let v = self.start + (self.end - self.start) * u;
                    // Guard the open upper bound against rounding.
                    if v >= self.end { <$t>::max(self.start, prev_down(self.end)) } else { v }
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u: $t = rng.gen();
                    let v = lo + (hi - lo) * u;
                    v.clamp(lo, hi)
                }
            }
        )*};
    }

    fn prev_down<T: FloatStep>(v: T) -> T {
        v.prev_down()
    }

    /// Helper for nudging a float just below a bound.
    trait FloatStep: Copy {
        fn prev_down(self) -> Self;
    }

    impl FloatStep for f64 {
        fn prev_down(self) -> f64 {
            let bits = self.to_bits();
            if self > 0.0 {
                f64::from_bits(bits - 1)
            } else {
                self
            }
        }
    }

    impl FloatStep for f32 {
        fn prev_down(self) -> f32 {
            let bits = self.to_bits();
            if self > 0.0 {
                f32::from_bits(bits - 1)
            } else {
                self
            }
        }
    }

    float_range!(f32, f64);
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Rough equivalent of `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let k = r.gen_range(2u32..=16);
            assert!((2..=16).contains(&k));
            let s = r.gen_range(-4i64..5);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn distribution_trait_is_usable_generically() {
        struct Doubler;
        impl Distribution<f64> for Doubler {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
                2.0 * rng.gen::<f64>()
            }
        }
        let mut r = StdRng::seed_from_u64(1);
        let x = r.sample(Doubler);
        assert!((0.0..2.0).contains(&x));
        let _: f64 = Standard.sample(&mut r);
    }
}
