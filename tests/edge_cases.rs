//! Cross-module edge cases: degenerate-but-legal configurations that the
//! runtime must survive gracefully.

use float::core::aggregate::{aggregate, PendingUpdate};
use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::data::federated::{FederatedConfig, FederatedDataset};
use float::data::Task;
use float::traces::InterferenceModel;

fn base(rounds: usize) -> ExperimentConfig {
    ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, rounds)
}

#[test]
fn cohort_equals_population() {
    let mut cfg = base(4);
    cfg.cohort_size = cfg.num_clients;
    let r = Experiment::new(cfg).expect("valid").run();
    // Every round tasks at most the whole population (fewer when some
    // clients are unavailable).
    for rec in &r.rounds {
        assert!(rec.selected <= cfg.num_clients);
    }
    assert!(r.total_completions > 0);
}

#[test]
fn single_client_population() {
    let mut cfg = base(5);
    cfg.num_clients = 1;
    cfg.cohort_size = 1;
    cfg.async_concurrency = 1;
    cfg.async_buffer = 1;
    let r = Experiment::new(cfg).expect("valid").run();
    assert_eq!(r.client_accuracies.len(), 1);
}

#[test]
fn generous_deadline_eliminates_deadline_dropouts() {
    let mut cfg = base(6);
    cfg.deadline_s = 1e9;
    cfg.failure_hazard_per_s = 0.0;
    let r = Experiment::new(cfg).expect("valid").run();
    assert_eq!(
        r.total_dropouts, 0,
        "no deadline, no hazard — but {} dropouts",
        r.total_dropouts
    );
}

#[test]
fn brutal_deadline_drops_everyone_but_run_survives() {
    let mut cfg = base(4);
    cfg.deadline_s = 0.001;
    let r = Experiment::new(cfg).expect("valid").run();
    assert_eq!(r.total_completions, 0);
    // The global model never aggregates, so accuracy is the init model's —
    // but the report is still well-formed.
    assert_eq!(r.rounds.len(), 4);
    assert!(r.accuracy.mean >= 0.0);
}

#[test]
fn no_interference_is_strictly_easier() {
    let mut busy = base(10);
    busy.interference = InterferenceModel::paper_dynamic();
    let busy_r = Experiment::new(busy).expect("valid").run();
    let mut free = base(10);
    free.interference = InterferenceModel::None;
    let free_r = Experiment::new(free).expect("valid").run();
    assert!(
        free_r.total_dropouts <= busy_r.total_dropouts,
        "no-interference dropped more ({} vs {})",
        free_r.total_dropouts,
        busy_r.total_dropouts
    );
}

#[test]
fn one_round_experiment_reports_once() {
    let r = Experiment::new(base(1)).expect("valid").run();
    assert_eq!(r.rounds.len(), 1);
    // The single round is also the final round, so it must carry an
    // accuracy evaluation.
    assert!(r.rounds[0].mean_accuracy.is_some());
}

#[test]
fn aggregate_of_identical_deltas_is_that_delta() {
    let mut global = vec![1.0f32, -2.0, 3.0];
    let updates: Vec<PendingUpdate> = (0..5)
        .map(|i| PendingUpdate {
            client: i,
            delta: vec![0.5, 0.5, -1.0],
            samples: 10 * (i + 1),
            staleness: i as u64,
        })
        .collect();
    aggregate(&mut global, &updates);
    assert!((global[0] - 1.5).abs() < 1e-6);
    assert!((global[1] + 1.5).abs() < 1e-6);
    assert!((global[2] - 2.0).abs() < 1e-6);
}

#[test]
fn tiny_dirichlet_alpha_still_generates() {
    let cfg = FederatedConfig {
        task: Task::Cifar10,
        num_clients: 12,
        mean_samples: 30,
        alpha: Some(0.001), // near one-hot label distributions
        test_fraction: 0.25,
    };
    let d = FederatedDataset::generate(cfg, 3);
    for i in 0..d.num_clients() {
        assert!(!d.train_shard(i).is_empty());
        // With alpha ~ 0, most clients should be (near) single-class.
        let hist = d.train_shard(i).label_histogram();
        let nonzero = hist.iter().filter(|&&c| c > 0).count();
        assert!(nonzero >= 1);
    }
}

#[test]
fn zero_test_fraction_keeps_all_samples_for_training() {
    let cfg = FederatedConfig {
        task: Task::Cifar10,
        num_clients: 6,
        mean_samples: 40,
        alpha: Some(0.5),
        test_fraction: 0.0,
    };
    let d = FederatedDataset::generate(cfg, 3);
    for i in 0..d.num_clients() {
        // Test shards degrade to the guaranteed singleton.
        assert_eq!(d.test_shard(i).len(), 1);
        assert!(d.train_shard(i).len() > 1);
    }
}

#[test]
fn experiments_with_all_static_interference_levels_run() {
    for interference in [
        InterferenceModel::None,
        InterferenceModel::paper_static(),
        InterferenceModel::paper_dynamic(),
        InterferenceModel::unstable_network(),
    ] {
        let mut cfg = base(3);
        cfg.interference = interference;
        let r = Experiment::new(cfg).expect("valid").run();
        assert_eq!(r.rounds.len(), 3, "{}", interference.name());
    }
}

#[test]
fn fedbuff_with_buffer_of_one_aggregates_every_completion() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Off, 5);
    cfg.async_buffer = 1;
    let r = Experiment::new(cfg).expect("valid").run();
    assert!(
        r.total_completions >= 5,
        "only {} completions",
        r.total_completions
    );
}

#[test]
fn round_log_jsonl_matches_round_count() {
    let r = Experiment::new(base(7)).expect("valid").run();
    let jsonl = r.round_log_jsonl();
    assert_eq!(jsonl.lines().count(), 7);
    for line in jsonl.lines() {
        let _: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
    }
}
