//! Online-profiling contract: profiling off reproduces the pinned
//! oracle-path goldens byte-for-byte; profiling on is bit-identical
//! across worker-thread counts and across the pipelined/sequential
//! engines; the bounded store's accounting identities always hold; and
//! the estimators are pure functions of the observation sequence.

use float::core::{AccelMode, Experiment, ExperimentConfig, ExperimentReport, SelectorChoice};
use float::profile::{ClientProfiler, Observation, ObservedOutcome, ProfilingConfig};
use float::sim::FaultPlan;
use proptest::prelude::*;

fn run(cfg: ExperimentConfig) -> ExperimentReport {
    Experiment::new(cfg).expect("valid config").run()
}

fn profiled(selector: SelectorChoice, rounds: usize, plan: FaultPlan) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small(selector, AccelMode::Rlhf, rounds);
    cfg.fault_plan = plan;
    cfg.profiling = ProfilingConfig::on();
    cfg
}

/// Profiling off is the oracle path: the pinned pre-profiling reports
/// must reproduce byte-for-byte (same serialization, same bits).
#[test]
fn profiling_off_reproduces_pinned_reports_byte_for_byte() {
    let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 12);
    assert_eq!(
        cfg.profiling,
        ProfilingConfig::off(),
        "presets must default to the oracle path"
    );
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_fedavg_rlhf.json");
    assert_eq!(got, want.trim_end(), "fedavg+rlhf report drifted");

    let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Off, 10);
    cfg.fault_plan = FaultPlan::chaos();
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_oort_chaos.json");
    assert_eq!(got, want.trim_end(), "oort+chaos report drifted");
}

/// Profiled runs must be bit-identical across worker-thread counts: the
/// profiler folds observations only in the sequential commit phase and
/// is read only in the sequential plan phase.
#[test]
fn profiled_runs_are_thread_count_invariant() {
    for plan in [FaultPlan::none(), FaultPlan::chaos()] {
        // Sync engine, profiling-aware selector.
        let cfg = profiled(SelectorChoice::Oort, 8, plan);
        let mut one = cfg;
        one.num_threads = 1;
        let mut four = cfg;
        four.num_threads = 4;
        assert_eq!(
            run(one),
            run(four),
            "oort profiled ({plan:?}): 1 vs 4 threads diverged"
        );

        // Async engine: commits happen at completion-event order, which
        // must itself be thread-count invariant with profiling on.
        let cfg = profiled(SelectorChoice::FedBuff, 8, plan);
        let mut one = cfg;
        one.num_threads = 1;
        let mut four = cfg;
        four.num_threads = 4;
        assert_eq!(
            run(one),
            run(four),
            "fedbuff profiled ({plan:?}): 1 vs 4 threads diverged"
        );
    }
}

/// Pipelining overlaps plan/execute/commit across rounds but commits in
/// the same order — a profiled pipelined run must match the sequential
/// run byte-for-byte, including every estimate-driven selection.
#[test]
fn profiled_pipelined_matches_sequential() {
    let mut cfg = profiled(SelectorChoice::Oort, 8, FaultPlan::chaos());
    cfg.num_threads = 4;
    let sequential = run(cfg);
    cfg.pipeline_rounds = true;
    assert_eq!(
        run(cfg),
        sequential,
        "pipelined profiled run diverged from sequential"
    );
}

/// Cold-only mode folds nothing and consults nothing, but must still be
/// deterministic, finite, and distinctly labelled.
#[test]
fn cold_only_is_deterministic_and_labelled() {
    let mut cfg = profiled(SelectorChoice::Oort, 6, FaultPlan::chaos());
    cfg.profiling = ProfilingConfig::cold_only();
    let a = run(cfg);
    let b = run(cfg);
    assert_eq!(a, b);
    assert!(a.is_finite());
    assert!(a.label.ends_with("+prof0"), "label was {}", a.label);
}

/// The bounded store's accounting identities, end to end through a real
/// run with a capacity small enough to force evictions.
#[test]
fn bounded_store_accounting_identities_hold_under_eviction() {
    let mut cfg = profiled(SelectorChoice::Oort, 10, FaultPlan::chaos());
    cfg.profiling.capacity = 4; // far below the ~40-client population
    let (report, stats) = Experiment::new(cfg)
        .expect("valid config")
        .run_with_profiler_stats();
    let stats = stats.expect("profiling on must surface stats");
    assert!(report.is_finite());
    assert_eq!(stats.capacity, 4);
    assert!(stats.observations > 0, "chaos run observed nothing");
    assert!(stats.evictions > 0, "capacity 4 must evict");
    assert_eq!(
        stats.inserted,
        stats.evictions + stats.resident as u64,
        "inserted == evictions + resident"
    );
    assert!(stats.resident <= stats.capacity);
    assert!(stats.peak_resident <= stats.capacity);
    assert_eq!(
        stats.observations,
        stats.suppressed
            + stats.completed
            + stats.stalled
            + stats.quarantined
            + stats.oom
            + stats.dropped,
        "every observation lands in exactly one kind counter"
    );
    assert_eq!(stats.suppressed, 0, "normal mode suppresses nothing");

    // Cold-only: every observation is suppressed, nothing is stored.
    let mut cfg = profiled(SelectorChoice::Oort, 6, FaultPlan::chaos());
    cfg.profiling = ProfilingConfig::cold_only();
    let (_, stats) = Experiment::new(cfg)
        .expect("valid config")
        .run_with_profiler_stats();
    let stats = stats.expect("cold-only still surfaces stats");
    assert!(stats.observations > 0);
    assert_eq!(stats.suppressed, stats.observations);
    assert_eq!(stats.inserted, 0);
    assert_eq!(stats.resident, 0);
}

/// Profiling off surfaces no stats at all — the profiler is never built.
#[test]
fn profiling_off_surfaces_no_stats() {
    let cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Off, 3);
    let (_, stats) = Experiment::new(cfg)
        .expect("valid config")
        .run_with_profiler_stats();
    assert_eq!(stats, None);
}

/// Index → outcome kind; index 0 is Completed, 1..5 the non-completions.
fn kind_of(idx: u8) -> ObservedOutcome {
    match idx {
        0 => ObservedOutcome::Completed,
        1 => ObservedOutcome::Stalled,
        2 => ObservedOutcome::Quarantined,
        3 => ObservedOutcome::DroppedOom,
        _ => ObservedOutcome::Dropped,
    }
}

fn arb_observation() -> impl Strategy<Value = (usize, Observation)> {
    (
        (0usize..12, 0u64..50, 0u8..5, 1.0f64..5000.0),
        (0u8..2, 0.1f64..500.0),
        (0u8..2, 0.01f64..50.0),
    )
        .prop_map(
            |((client, round, kind, duration_s), (has_mbps, mbps), (has_gflops, gflops))| {
                (
                    client,
                    Observation {
                        round,
                        kind: kind_of(kind),
                        duration_s,
                        upload_mbps: (has_mbps == 1).then_some(mbps),
                        compute_gflops: (has_gflops == 1).then_some(gflops),
                    },
                )
            },
        )
}

proptest! {
    /// The profiler is a pure function of the observation sequence: two
    /// instances fed the same sequence are equal — estimates, LRU
    /// residency, stats, everything `PartialEq` can see.
    #[test]
    fn profiler_state_is_a_pure_function_of_the_sequence(
        seq in prop::collection::vec(arb_observation(), 1..120),
        capacity in 1usize..8,
    ) {
        let mut a = ClientProfiler::new(ProfilingConfig::on(), capacity);
        let mut b = ClientProfiler::new(ProfilingConfig::on(), capacity);
        for (client, obs) in &seq {
            a.observe(*client, obs);
        }
        for (client, obs) in &seq {
            b.observe(*client, obs);
        }
        prop_assert_eq!(&a, &b);
        for client in 0..12 {
            prop_assert_eq!(a.estimate(client), b.estimate(client));
        }
    }

    /// Accounting identities hold for arbitrary sequences and tiny
    /// capacities: the store never exceeds its bound and every insert is
    /// either still resident or accounted as an eviction.
    #[test]
    fn accounting_identities_hold_for_arbitrary_sequences(
        seq in prop::collection::vec(arb_observation(), 0..200),
        capacity in 1usize..6,
    ) {
        let mut p = ClientProfiler::new(ProfilingConfig::on(), capacity);
        for (client, obs) in &seq {
            p.observe(*client, obs);
            let s = p.stats();
            prop_assert!(s.resident <= capacity);
            prop_assert!(s.peak_resident <= capacity);
            prop_assert_eq!(s.inserted, s.evictions + s.resident as u64);
        }
        let s = p.stats();
        prop_assert_eq!(s.observations, seq.len() as u64);
        prop_assert_eq!(
            s.observations,
            s.suppressed + s.completed + s.stalled + s.quarantined + s.oom + s.dropped
        );
    }

    /// Quarantined and dropped outcomes update reliability only: the
    /// latency/bandwidth estimates visible before and after are bitwise
    /// identical, while the reliability estimate never increases.
    #[test]
    fn non_completions_never_move_latency_or_bandwidth(
        warmup in prop::collection::vec(
            (0u64..10, 1.0f64..2000.0, 0.1f64..100.0, 0.01f64..10.0), 1..20),
        kind_idx in 1u8..5,
        duration_s in 1.0f64..5000.0,
    ) {
        let kind = kind_of(kind_idx);
        let mut p = ClientProfiler::new(ProfilingConfig::on(), 4);
        for (round, duration_s, mbps, gflops) in &warmup {
            p.observe(0, &Observation {
                round: *round,
                kind: ObservedOutcome::Completed,
                duration_s: *duration_s,
                upload_mbps: Some(*mbps),
                compute_gflops: Some(*gflops),
            });
        }
        let before = p.estimate(0).expect("warmed-up client has an estimate");
        p.observe(0, &Observation::replay(99, kind, duration_s));
        let after = p.estimate(0).expect("client still resident");
        prop_assert_eq!(before.latency_s, after.latency_s);
        prop_assert_eq!(before.latency_p50_s, after.latency_p50_s);
        prop_assert_eq!(before.latency_p90_s, after.latency_p90_s);
        prop_assert_eq!(before.bandwidth_mbps, after.bandwidth_mbps);
        prop_assert_eq!(before.bandwidth_peak_mbps, after.bandwidth_peak_mbps);
        prop_assert_eq!(before.compute_gflops, after.compute_gflops);
        prop_assert!(after.reliability <= before.reliability);
        prop_assert_eq!(after.observations, before.observations + 1);
    }
}
