//! The pipelined-rounds determinism contract: `pipeline_rounds = true`
//! overlaps plan/execute/commit inside a round (and evaluation across
//! rounds) but must never change a single output bit. Reports are
//! compared byte-for-byte against sequential runs and against the pinned
//! pre-pipeline goldens; telemetry streams must match after setting
//! aside the `PhaseSpan` events, whose *stream position* legitimately
//! moves when commits stream concurrently with execution (their counts
//! per phase still must match). See `DESIGN.md` §16 for the contract.

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::obs::{Event, ObsConfig, Telemetry};
use float::sim::FaultPlan;

fn run(cfg: ExperimentConfig) -> float::core::ExperimentReport {
    Experiment::new(cfg).expect("valid config").run()
}

/// Run `cfg` sequentially and pipelined at the given worker count and
/// require bit-identical reports.
fn assert_pipelined_matches_sequential(mut cfg: ExperimentConfig, threads: usize) {
    cfg.num_threads = threads;
    let mut seq = cfg;
    seq.pipeline_rounds = false;
    let mut pip = cfg;
    pip.pipeline_rounds = true;
    let a = run(seq);
    let b = run(pip);
    assert_eq!(
        a.client_accuracies, b.client_accuracies,
        "client accuracies diverged at {threads} threads"
    );
    assert_eq!(
        a.rounds, b.rounds,
        "round records diverged at {threads} threads"
    );
    assert_eq!(a, b, "reports diverged at {threads} threads");
}

#[test]
fn sync_rlhf_pipelined_is_bit_identical() {
    // RLHF exercises the agent RNG, per-client EMA, technique stats, and
    // (extended below) error feedback — every order-sensitive path.
    for threads in [1, 4] {
        assert_pipelined_matches_sequential(
            ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 6),
            threads,
        );
    }
}

#[test]
fn sync_chaos_pipelined_is_bit_identical() {
    // Fault injection: stall retries run after the streamed commits, so
    // retries must observe exactly the state a sequential run would.
    for threads in [1, 4] {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 6);
        cfg.fault_plan = FaultPlan::chaos();
        assert_pipelined_matches_sequential(cfg, threads);
    }
}

#[test]
fn async_fedbuff_pipelined_is_bit_identical() {
    // The event-driven engine launches per-batch; pipelining only changes
    // when work is dispatched, never what arrives in the buffer.
    for threads in [1, 4] {
        assert_pipelined_matches_sequential(
            ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Rlhf, 6),
            threads,
        );
    }
}

#[test]
fn async_chaos_pipelined_is_bit_identical() {
    for threads in [1, 4] {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Rlhf, 6);
        cfg.fault_plan = FaultPlan::chaos();
        assert_pipelined_matches_sequential(cfg, threads);
    }
}

#[test]
fn error_feedback_snapshots_survive_streamed_commits() {
    // Top-k sparsification snapshots each client's residual into the task
    // at plan time; streamed commits must write them back in slot order.
    for threads in [1, 4] {
        assert_pipelined_matches_sequential(
            ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::RlhfExtended, 8),
            threads,
        );
    }
}

#[test]
fn utility_selectors_pipelined_are_bit_identical() {
    // Oort consumes per-attempt utilities fed back at commit time — the
    // selector must see them in the same order under streaming.
    for selector in [SelectorChoice::Oort, SelectorChoice::Refl] {
        assert_pipelined_matches_sequential(
            ExperimentConfig::small(selector, AccelMode::Rlhf, 6),
            4,
        );
    }
}

/// The pinned goldens were serialized by the sequential implementation.
/// A pipelined run must reproduce them byte-for-byte — this is the
/// strongest regression net: any drift in snapshot rules, commit order,
/// retry semantics, or the overlapped evaluation shows up here.
#[test]
fn pipelined_reproduces_pinned_reports_byte_for_byte() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 12);
    cfg.pipeline_rounds = true;
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_fedavg_rlhf.json");
    assert_eq!(got, want.trim_end(), "pipelined fedavg+rlhf report drifted");

    let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Off, 10);
    cfg.fault_plan = FaultPlan::chaos();
    cfg.pipeline_rounds = true;
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_oort_chaos.json");
    assert_eq!(got, want.trim_end(), "pipelined oort+chaos report drifted");
}

fn run_traced(
    mut cfg: ExperimentConfig,
    pipelined: bool,
) -> (float::core::ExperimentReport, Telemetry) {
    cfg.obs = ObsConfig::on();
    cfg.pipeline_rounds = pipelined;
    Experiment::new(cfg).expect("valid config").run_traced()
}

fn is_phase_span(e: &Event) -> bool {
    matches!(e, Event::PhaseSpan { .. })
}

/// Telemetry contract under pipelining: the summary and every
/// non-`PhaseSpan` event are identical, in order. `PhaseSpan` events may
/// sit at different stream positions (the execute span closes after the
/// streamed commits it overlapped), but each round still emits exactly
/// one span per phase, and with wall timers off their payloads are
/// identical too.
fn assert_traced_pipelined_matches_sequential(cfg: ExperimentConfig) {
    let (report_seq, tel_seq) = run_traced(cfg, false);
    let (report_pip, tel_pip) = run_traced(cfg, true);
    assert_eq!(report_seq, report_pip, "reports diverged with telemetry on");
    assert_eq!(
        tel_seq.summary, tel_pip.summary,
        "telemetry summary diverged"
    );

    let body_seq: Vec<&Event> = tel_seq
        .events
        .iter()
        .filter(|e| !is_phase_span(e))
        .collect();
    let body_pip: Vec<&Event> = tel_pip
        .events
        .iter()
        .filter(|e| !is_phase_span(e))
        .collect();
    assert_eq!(body_seq.len(), body_pip.len(), "non-span event count");
    for (i, (a, b)) in body_seq.iter().zip(&body_pip).enumerate() {
        assert_eq!(a, b, "non-span event {i} diverged");
    }

    // Span payloads: ObsConfig::on() keeps wall timers off, so the spans
    // are fully deterministic (wall 0, no overlap) and must match as a
    // multiset — compare them sorted by (round, phase).
    let spans = |tel: &Telemetry| -> Vec<String> {
        let mut v: Vec<String> = tel
            .events
            .iter()
            .filter(|e| is_phase_span(e))
            .map(|e| serde_json::to_string(e).expect("span serializes"))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        spans(&tel_seq),
        spans(&tel_pip),
        "phase-span payloads diverged"
    );
}

#[test]
fn sync_telemetry_pipelined_matches_sequential() {
    assert_traced_pipelined_matches_sequential(ExperimentConfig::small(
        SelectorChoice::FedAvg,
        AccelMode::Rlhf,
        6,
    ));
}

#[test]
fn sync_chaos_telemetry_pipelined_matches_sequential() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 6);
    cfg.fault_plan = FaultPlan::chaos();
    assert_traced_pipelined_matches_sequential(cfg);
}

#[test]
fn async_chaos_telemetry_pipelined_matches_sequential() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Rlhf, 6);
    cfg.fault_plan = FaultPlan::chaos();
    assert_traced_pipelined_matches_sequential(cfg);
}

#[test]
fn pipelined_runs_are_deterministic_across_invocations() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 8);
    cfg.pipeline_rounds = true;
    cfg.num_threads = 4;
    assert_eq!(run(cfg), run(cfg), "repeated pipelined runs diverged");
}
