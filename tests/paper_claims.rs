//! Shape-level reproduction tests of the paper's headline claims, run at
//! reduced scale through the figure harness. Absolute numbers differ from
//! the paper (simulated substrate); these tests pin down the *direction*
//! and rough *factor* of each claim so regressions in any subsystem
//! surface as figure-shape breakage.

use float_bench::figs;
use float_bench::Scale;

/// All claims tests run at quick scale in release-ish time. They are
/// deterministic (every subsystem is seeded), so no flakiness margin is
/// needed beyond the shape assertions themselves.
const SCALE: Scale = Scale::Quick;

#[test]
fn fig2_shape_async_is_faster_but_hungrier() {
    let fig = figs::fig2::run(SCALE);
    let get = |name: &str| {
        fig.rows
            .iter()
            .find(|r| r.algorithm == name)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let fedavg = get("fedavg");
    let fedbuff = get("fedbuff");
    // Async wall-clock well below sync (paper: one third to half).
    assert!(
        fedbuff.wall_clock_h < 0.6 * fedavg.wall_clock_h,
        "fedbuff {}h !<< fedavg {}h",
        fedbuff.wall_clock_h,
        fedavg.wall_clock_h
    );
    // Async over-selects.
    assert!(fedbuff.selected > fedavg.selected);
    // REFL biases selection away from some clients (never-completed count
    // strictly worse than FedAvg's).
    let refl = get("refl");
    assert!(
        refl.never_completed >= fedavg.never_completed,
        "refl never-completed {} < fedavg {}",
        refl.never_completed,
        fedavg.never_completed
    );
}

#[test]
fn fig3_shape_dropouts_cost_accuracy_refl_suffers_most() {
    let fig = figs::fig3::run(SCALE);
    for algo in ["fedavg", "oort", "refl", "fedbuff"] {
        let penalty = fig
            .dropout_penalty(algo)
            .unwrap_or_else(|| panic!("missing rows for {algo}"));
        assert!(
            penalty > 0.0,
            "{algo}: dropouts did not reduce accuracy (penalty {penalty})"
        );
    }
    // REFL is the most dropout-sensitive of the synchronous baselines
    // (its availability-window predictions go stale under dynamic
    // resources). FedBuff's penalty is excluded from this comparison: its
    // asynchronous aggregation changes what ND means (see EXPERIMENTS.md).
    let refl = fig.dropout_penalty("refl").expect("refl rows");
    for algo in ["fedavg", "oort"] {
        let p = fig.dropout_penalty(algo).expect("rows");
        assert!(refl > p, "refl penalty {refl} !> {algo} penalty {p}");
    }
}

#[test]
fn fig4_shape_dynamic_interference_is_most_variable() {
    let fig = figs::fig4::run(SCALE);
    let cv = |scenario: &str, resource: &str| {
        fig.rows
            .iter()
            .find(|r| r.scenario == scenario && r.resource == resource)
            .map(|r| r.temporal_cv)
            .unwrap_or_else(|| panic!("missing {scenario}/{resource}"))
    };
    // Dynamic interference adds compute variability over the no- and
    // static-interference scenarios.
    assert!(cv("dynamic-interference", "compute-gflops") > cv("no-interference", "compute-gflops"));
    assert!(
        cv("dynamic-interference", "compute-gflops") > cv("static-interference", "compute-gflops")
    );
    // Mean effective compute shrinks as interference grows.
    let mean = |scenario: &str| {
        fig.rows
            .iter()
            .find(|r| r.scenario == scenario && r.resource == "compute-gflops")
            .map(|r| r.mean)
            .expect("row exists")
    };
    assert!(mean("no-interference") > mean("static-interference"));
    assert!(mean("no-interference") > mean("dynamic-interference"));
}

#[test]
fn fig5_shape_no_single_static_config_wins_everywhere() {
    let fig = figs::fig5::run(SCALE);
    // Within each scenario, heavier pruning always completes at least as
    // many clients…
    for scenario in [
        "no-interference",
        "static-interference",
        "dynamic-interference",
    ] {
        let s = |tech: &str| {
            fig.pruning_sweep
                .iter()
                .find(|r| r.scenario == scenario && r.technique == tech)
                .unwrap_or_else(|| panic!("missing {scenario}/{tech}"))
        };
        assert!(
            s("prune75").successful >= s("prune25").successful,
            "{scenario}: prune75 {} !>= prune25 {}",
            s("prune75").successful,
            s("prune25").successful
        );
        // …but costs accuracy.
        assert!(
            s("prune75").accuracy < s("prune25").accuracy,
            "{scenario}: prune75 accuracy {} !< prune25 {}",
            s("prune75").accuracy,
            s("prune25").accuracy
        );
    }
}

#[test]
fn fig6_shape_float_beats_heuristic_beats_vanilla() {
    let fig = figs::fig6::run(SCALE);
    let get = |mode: &str| {
        fig.rows
            .iter()
            .find(|r| r.mode == mode)
            .unwrap_or_else(|| panic!("missing {mode}"))
    };
    let off = get("off");
    let heuristic = get("heuristic");
    let float = get("float-rlhf");
    // Dropout ordering: FLOAT < heuristic < vanilla.
    assert!(float.dropped < heuristic.dropped);
    assert!(heuristic.dropped < off.dropped);
    // Resource-waste ordering on compute.
    assert!(float.wasted_compute_h < off.wasted_compute_h);
    // Accuracy: FLOAT at least matches the heuristic, both above vanilla.
    assert!(heuristic.accuracy > off.accuracy);
    assert!(float.accuracy >= heuristic.accuracy - 0.01);
}

#[test]
fn fig8_shape_agent_overhead_bounds_hold() {
    let fig = figs::fig8::run();
    assert!(fig.paper_bounds_hold(), "{}", fig.render());
    // Memory grows linearly-ish in the state count.
    let first = &fig.rows[0];
    let last = fig.rows.last().expect("rows");
    assert!(last.memory_bytes > first.memory_bytes);
}

#[test]
fn fig10_shape_partial_training_loses_under_unstable_network() {
    let fig = figs::fig10::run(SCALE);
    // Under the unstable-network scenario, within *network-constrained
    // states*, the partial-training family's learned participation success
    // must trail pruning's (partial training does not shrink
    // communication — the Fig. 10c lesson). The comparison conditions on
    // the state because the agent routes aggressive actions into the
    // hardest states, which would otherwise deflate them unconditionally.
    let partial = fig
        .family_participation_low_net("unstable-network", "partial")
        .expect("partial family present in low-net states");
    let prune = fig
        .family_participation_low_net("unstable-network", "prune")
        .expect("prune family present in low-net states");
    assert!(
        prune > partial,
        "unstable network, low-net states: prune {prune} !> partial {partial}"
    );
}

#[test]
fn fig11_shape_human_feedback_helps() {
    let fig = figs::fig11::run(SCALE);
    let (rl, rlhf) = fig.pair().expect("both ablation rows");
    // Direction-level reproduction: human feedback must not hurt
    // participation (the paper reports a 2x dropout gap; our gap is
    // smaller — see EXPERIMENTS.md) and must not cost accuracy beyond
    // noise.
    assert!(
        rlhf.dropped as f64 <= rl.dropped as f64 * 1.05,
        "RLHF dropped {} materially above RL {}",
        rlhf.dropped,
        rl.dropped
    );
    assert!(
        rlhf.accuracy >= rl.accuracy - 0.02,
        "RLHF accuracy {} clearly below RL {}",
        rlhf.accuracy,
        rl.accuracy
    );
}

#[test]
fn fig12_shape_float_improves_every_baseline() {
    let fig = figs::fig12::run(SCALE);
    for task in ["femnist", "cifar10", "speech"] {
        for sel in ["fedavg", "oort", "refl", "fedbuff"] {
            let red = fig
                .dropout_reduction(task, sel)
                .unwrap_or_else(|| panic!("missing {task}/{sel}"));
            assert!(
                red >= 0.75,
                "{task}/{sel}: FLOAT materially increased dropouts (reduction {red})"
            );
        }
    }
    // Dropout reductions are material on the vision tasks with FedAvg.
    let femnist = fig.dropout_reduction("femnist", "fedavg").expect("row");
    assert!(femnist > 1.1, "femnist/fedavg reduction only {femnist}x");
    // Speech drops fewer clients than FEMNIST to begin with (lighter
    // model), so FLOAT has less headroom there — the paper's explanation
    // for its small Speech gains.
    let v_fem = fig.row("femnist", "fedavg", "vanilla").expect("row");
    let v_sp = fig.row("speech", "fedavg", "vanilla").expect("row");
    assert!(
        v_sp.dropouts < v_fem.dropouts,
        "speech vanilla dropouts {} !< femnist {}",
        v_sp.dropouts,
        v_fem.dropouts
    );
}

#[test]
fn fig13_shape_openimage_gains() {
    let fig = figs::fig13::run(SCALE);
    for sel in ["fedavg", "oort", "refl", "fedbuff"] {
        let red = fig
            .e2e
            .dropout_reduction("openimage", sel)
            .unwrap_or_else(|| panic!("missing openimage/{sel}"));
        assert!(red >= 0.75, "openimage/{sel}: reduction {red}");
    }
}
