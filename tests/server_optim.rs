//! Server-optimizer layer contract: the default FedAvg path reproduces
//! the pinned pre-optimizer reports byte-for-byte, every optimizer and
//! drift correction runs under every selector and accel mode, and all
//! configurations — including their optimizer/variate state — are
//! bit-identical across worker-thread counts, faults and all.

use proptest::prelude::*;

use float::core::optim::{ServerOptimConfig, ServerOptimizerChoice};
use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::sim::FaultPlan;

fn run(cfg: ExperimentConfig) -> float::core::ExperimentReport {
    Experiment::new(cfg).expect("valid config").run()
}

/// The six algorithm variants the comparison harness sweeps: the four
/// server optimizers plus FedAvg with each drift correction.
fn apply_variant(cfg: &mut ExperimentConfig, variant: usize) {
    match variant {
        0 => {}
        1 => cfg.server_optim = ServerOptimConfig::with(ServerOptimizerChoice::FedAvgM),
        2 => cfg.server_optim = ServerOptimConfig::with(ServerOptimizerChoice::FedAdam),
        3 => cfg.server_optim = ServerOptimConfig::with(ServerOptimizerChoice::FedYogi),
        4 => cfg.prox_mu = 0.1,
        _ => cfg.scaffold = true,
    }
}

const NUM_VARIANTS: usize = 6;

/// Selecting `ServerOptimizerChoice::FedAvg` explicitly (the default)
/// must route through the optimizer layer and still reproduce the PR 6
/// pinned reports byte-for-byte — the layer's FedAvg apply is the
/// historical `g += delta` walk, not a reimplementation.
#[test]
fn explicit_fedavg_reproduces_pinned_reports_byte_for_byte() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 12);
    assert_eq!(
        cfg.server_optim.optimizer,
        ServerOptimizerChoice::FedAvg,
        "preset must default to FedAvg"
    );
    cfg.server_optim = ServerOptimConfig::with(ServerOptimizerChoice::FedAvg);
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_fedavg_rlhf.json");
    assert_eq!(got, want.trim_end(), "fedavg+rlhf report drifted");

    let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Off, 10);
    cfg.fault_plan = FaultPlan::chaos();
    cfg.server_optim = ServerOptimConfig::with(ServerOptimizerChoice::FedAvg);
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_oort_chaos.json");
    assert_eq!(got, want.trim_end(), "oort+chaos report drifted");
}

/// Every optimizer and both drift corrections complete a short run under
/// every selector (accel fixed to RLHF, the paper's full configuration).
#[test]
fn all_variants_run_under_every_selector() {
    for selector in SelectorChoice::ALL_EXTENDED {
        for variant in 0..NUM_VARIANTS {
            let mut cfg = ExperimentConfig::small(selector, AccelMode::Rlhf, 3);
            apply_variant(&mut cfg, variant);
            let r = run(cfg);
            assert_eq!(r.rounds.len(), 3, "{selector:?} variant {variant}");
            assert!(
                r.total_completions + r.total_dropouts > 0,
                "{selector:?} variant {variant} did nothing"
            );
            assert!(
                r.client_accuracies.iter().all(|a| a.is_finite()),
                "{selector:?} variant {variant} produced non-finite accuracy"
            );
        }
    }
}

/// Every optimizer and both drift corrections complete a short run under
/// every accel mode (selector fixed to FedAvg).
#[test]
fn all_variants_run_under_every_accel_mode() {
    let modes = [
        AccelMode::Off,
        AccelMode::Static(2),
        AccelMode::Heuristic,
        AccelMode::Rl,
        AccelMode::Rlhf,
        AccelMode::RlhfExtended,
    ];
    for accel in modes {
        for variant in 0..NUM_VARIANTS {
            let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, accel, 3);
            apply_variant(&mut cfg, variant);
            let r = run(cfg);
            assert_eq!(r.rounds.len(), 3, "{accel:?} variant {variant}");
            assert!(
                r.client_accuracies.iter().all(|a| a.is_finite()),
                "{accel:?} variant {variant} produced non-finite accuracy"
            );
        }
    }
}

/// Non-default algorithm choices are spelled out in the report label;
/// the default keeps the historical format (pinned by the goldens).
#[test]
fn labels_distinguish_algorithm_variants() {
    let labels: Vec<String> = (0..NUM_VARIANTS)
        .map(|variant| {
            let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 1);
            apply_variant(&mut cfg, variant);
            run(cfg).label
        })
        .collect();
    assert_eq!(labels[0], "off(fedavg)/cifar10");
    assert_eq!(labels[1], "off(fedavg)/cifar10@fedavgm");
    assert_eq!(labels[2], "off(fedavg)/cifar10@fedadam");
    assert_eq!(labels[3], "off(fedavg)/cifar10@fedyogi");
    assert_eq!(labels[4], "off(fedavg)/cifar10+prox");
    assert_eq!(labels[5], "off(fedavg)/cifar10+scaffold");
}

/// Optimizer moment buffers and SCAFFOLD variates live in the sequential
/// commit phase, so every configuration must be bit-identical across 1
/// vs 4 worker threads — under chaos faults, which exercise quarantine,
/// duplicates, and stall retries through the optimizer path.
#[test]
fn every_variant_is_thread_count_invariant_under_chaos() {
    for variant in 0..NUM_VARIANTS {
        let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Rlhf, 5);
        cfg.fault_plan = FaultPlan::chaos();
        apply_variant(&mut cfg, variant);
        let mut one = cfg;
        one.num_threads = 1;
        let mut four = cfg;
        four.num_threads = 4;
        assert_eq!(
            run(one),
            run(four),
            "variant {variant}: 1 vs 4 threads diverged under chaos"
        );
    }
    // The async engine aggregates on its own path; cover it too.
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Off, 4);
    cfg.fault_plan = FaultPlan::chaos();
    cfg.server_optim = ServerOptimConfig::with(ServerOptimizerChoice::FedAdam);
    let mut one = cfg;
    one.num_threads = 1;
    let mut four = cfg;
    four.num_threads = 4;
    assert_eq!(run(one), run(four), "fedbuff fedadam diverged");
}

/// Drift corrections compose: FedProx + SCAFFOLD + an adaptive server
/// optimizer together still run, converge on finite numbers, and stay
/// deterministic.
#[test]
fn composed_corrections_run_and_are_deterministic() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 4);
    cfg.server_optim = ServerOptimConfig::with(ServerOptimizerChoice::FedYogi);
    cfg.prox_mu = 0.05;
    cfg.scaffold = true;
    let a = run(cfg);
    let b = run(cfg);
    assert_eq!(a, b, "composed run not deterministic");
    assert_eq!(a.label, "float-rlhf(fedavg)/cifar10@fedyogi+prox+scaffold");
    assert!(a.client_accuracies.iter().all(|x| x.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for any root seed and variant, a chaos-faulted run is
    /// bit-identical across 1 vs 4 worker threads — optimizer state
    /// updates (moment buffers, control variates) never depend on the
    /// parallel execute phase's scheduling.
    #[test]
    fn optimizer_state_is_thread_invariant_for_any_seed(
        seed in 0u64..10_000,
        variant in 0usize..NUM_VARIANTS,
    ) {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 3);
        cfg.seed = seed;
        cfg.fault_plan = FaultPlan::chaos();
        apply_variant(&mut cfg, variant);
        let mut one = cfg;
        one.num_threads = 1;
        let mut four = cfg;
        four.num_threads = 4;
        prop_assert_eq!(run(one), run(four));
    }
}
