//! Sweep-orchestrator determinism contract: per-trial reports derived
//! from `split_seed(root, trial_idx)` are invariant to the worker count,
//! to which other trials run alongside them (interleaving), and to
//! whether successive-halving pruning is on — for the trials that
//! survive it. A small pinned grid guards the whole stack against silent
//! drift.

use proptest::prelude::*;

use float::core::trial::run_trial;
use float::core::{AccelMode, SelectorChoice};
use float::sweep::{run_sweep, Halving, Knob, SweepOptions, SweepPlan};

/// A tiny population so each proptest case stays in the milliseconds.
fn tiny_plan(rounds: usize, root_seed: u64, cohorts: &[usize]) -> SweepPlan {
    let mut base =
        float::core::ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, rounds);
    base.num_clients = 12;
    base.cohort_size = 3;
    base.mean_samples = 24;
    let axes = vec![cohorts.iter().map(|&c| Knob::CohortSize(c)).collect()];
    SweepPlan::grid(base, root_seed, &axes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Worker count is a scheduling knob, never a results knob.
    #[test]
    fn reports_invariant_to_worker_count(
        root_seed in 1u64..1_000_000,
        workers in 2usize..6,
        rounds in 2usize..4,
    ) {
        let plan = tiny_plan(rounds, root_seed, &[2, 3]);
        let seq = run_sweep(&plan, &SweepOptions::default()).expect("sequential");
        let par = run_sweep(
            &plan,
            &SweepOptions { workers, ..Default::default() },
        )
        .expect("parallel");
        prop_assert_eq!(seq.results, par.results, "workers={} diverged", workers);
    }

    /// A trial's report does not depend on which other trials share the
    /// sweep: running any single trial alone (its own population build,
    /// owned caches) reproduces the in-sweep record bit-for-bit.
    #[test]
    fn reports_invariant_to_trial_interleaving(
        root_seed in 1u64..1_000_000,
        idx in 0usize..3,
    ) {
        let plan = tiny_plan(2, root_seed, &[2, 3, 4]);
        let sweep = run_sweep(
            &plan,
            &SweepOptions { workers: 3, ..Default::default() },
        )
        .expect("sweep");
        let alone = run_trial(plan.trial_config(idx, 2), None).expect("standalone trial");
        prop_assert_eq!(&sweep.results[idx].report, &alone, "trial {} diverged", idx);
    }

    /// Pruning decides *which* trials finish, never the bits of those
    /// that do: every halving survivor equals its full-grid record.
    #[test]
    fn pruning_preserves_surviving_trial_bits(
        root_seed in 1u64..1_000_000,
        eta in 2usize..4,
    ) {
        let plan = tiny_plan(4, root_seed, &[2, 3, 4]);
        let grid = run_sweep(&plan, &SweepOptions::default()).expect("grid");
        let halved = run_sweep(
            &plan,
            &SweepOptions {
                workers: 2,
                halving: Some(Halving { eta, r0: 1 }),
                ..Default::default()
            },
        )
        .expect("halving");
        prop_assert!(halved.rounds_executed < grid.rounds_executed);
        prop_assert_eq!(
            halved.results.len() + halved.pruned.len(),
            plan.len(),
            "every trial must be a survivor or pruned"
        );
        for rec in &halved.results {
            let full = grid.results.iter().find(|r| r.idx == rec.idx).expect("in grid");
            prop_assert_eq!(rec, full, "survivor {} diverged under pruning", rec.idx);
        }
    }
}

/// The pinned golden: a 2×2 grid (cohort × epochs) on the tiny
/// population, serialized record-for-record. Regenerate after an
/// intentional simulation change with:
///
/// ```text
/// BLESS_SWEEP=1 cargo test --test sweep_determinism golden
/// ```
#[test]
fn small_grid_reproduces_pinned_golden() {
    let mut base = float::core::ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 3);
    base.num_clients = 12;
    base.mean_samples = 24;
    let axes = vec![
        vec![Knob::CohortSize(2), Knob::CohortSize(3)],
        vec![Knob::LocalEpochs(1), Knob::LocalEpochs(2)],
    ];
    let plan = SweepPlan::grid(base, 11, &axes);
    let outcome = run_sweep(
        &plan,
        &SweepOptions {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("golden sweep");
    let got = serde_json::to_string_pretty(&outcome.results).expect("records serialize");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/pinned_sweep_small.json"
    );
    if std::env::var("BLESS_SWEEP").is_ok() {
        std::fs::write(path, format!("{got}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden present — bless with BLESS_SWEEP=1");
    assert_eq!(got, want.trim_end(), "sweep records drifted from golden");
}
