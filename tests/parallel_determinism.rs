//! The thread-count independence contract of the two-phase engine: a run
//! with one worker and a run with many workers must produce *bit-identical*
//! reports. Everything order-sensitive (sampler RNG, agent exploration,
//! error-feedback residuals, ledger sums, aggregation) lives in the
//! sequential plan/commit phases, so `num_threads` may change wall-clock
//! time but never a single output bit.

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::obs::{Event, ObsConfig, Telemetry};
use float::sim::FaultPlan;

fn run_with_threads(mut cfg: ExperimentConfig, threads: usize) -> float::core::ExperimentReport {
    cfg.num_threads = threads;
    Experiment::new(cfg).expect("valid config").run()
}

fn assert_bit_identical(cfg: ExperimentConfig) {
    let one = run_with_threads(cfg, 1);
    let four = run_with_threads(cfg, 4);
    // Field-by-field first, so a regression names the diverging field
    // instead of dumping two whole reports.
    assert_eq!(one.label, four.label);
    assert_eq!(one.selected_count, four.selected_count, "selected_count");
    assert_eq!(one.completed_count, four.completed_count, "completed_count");
    assert_eq!(one.total_dropouts, four.total_dropouts, "total_dropouts");
    assert_eq!(
        one.total_completions, four.total_completions,
        "total_completions"
    );
    assert_eq!(
        one.client_accuracies, four.client_accuracies,
        "client_accuracies"
    );
    assert_eq!(one.resources, four.resources, "resource ledger");
    assert_eq!(one.wall_clock_h, four.wall_clock_h, "wall clock");
    assert_eq!(
        one.total_quarantined, four.total_quarantined,
        "total_quarantined"
    );
    assert_eq!(
        one.duplicates_suppressed, four.duplicates_suppressed,
        "duplicates_suppressed"
    );
    assert_eq!(one.stall_retries, four.stall_retries, "stall_retries");
    assert_eq!(one.technique_stats, four.technique_stats, "technique stats");
    assert_eq!(one.rounds, four.rounds, "per-round records");
    // And the whole report, in case a field is added later and forgotten
    // above.
    assert_eq!(one, four, "reports must be bit-identical");
}

#[test]
fn sync_rlhf_is_thread_count_independent() {
    // RLHF exercises every order-sensitive path: agent exploration RNG,
    // per-client EMA, technique stats, and (via the extended catalogue
    // below) error feedback.
    assert_bit_identical(ExperimentConfig::small(
        SelectorChoice::FedAvg,
        AccelMode::Rlhf,
        6,
    ));
}

#[test]
fn sync_oort_off_is_thread_count_independent() {
    // Utility-guided selection consumes per-attempt utilities computed in
    // the parallel phase — feedback order must not depend on workers.
    assert_bit_identical(ExperimentConfig::small(
        SelectorChoice::Oort,
        AccelMode::Off,
        6,
    ));
}

#[test]
fn async_fedbuff_is_thread_count_independent() {
    // The event-driven engine: launch batches, staleness bookkeeping, and
    // the completion heap must all be worker-count independent.
    assert_bit_identical(ExperimentConfig::small(
        SelectorChoice::FedBuff,
        AccelMode::Rlhf,
        6,
    ));
}

#[test]
fn extended_catalogue_error_feedback_is_thread_count_independent() {
    // Top-k sparsification engages per-client error-feedback residuals,
    // which are cloned in the execute phase and committed in client order.
    assert_bit_identical(ExperimentConfig::small(
        SelectorChoice::FedAvg,
        AccelMode::RlhfExtended,
        8,
    ));
}

#[test]
fn sync_chaos_is_thread_count_independent() {
    // Fault injection must not break the contract: the fault draw is a
    // pure function of (seed, round, client, attempt), quarantine and
    // dedup run in the sequential commit path, and stall retries run
    // sequentially in cohort order.
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 6);
    cfg.fault_plan = FaultPlan::chaos();
    assert_bit_identical(cfg);
}

#[test]
fn async_chaos_is_thread_count_independent() {
    // The event-driven engine under faults: duplicate buffer entries and
    // quarantined arrivals must be worker-count independent too.
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Rlhf, 6);
    cfg.fault_plan = FaultPlan::chaos();
    assert_bit_identical(cfg);
}

fn run_traced_with_threads(
    mut cfg: ExperimentConfig,
    threads: usize,
) -> (float::core::ExperimentReport, Telemetry) {
    cfg.num_threads = threads;
    cfg.obs = ObsConfig::on();
    Experiment::new(cfg).expect("valid config").run_traced()
}

fn assert_telemetry_bit_identical(cfg: ExperimentConfig) {
    let (report_one, tel_one) = run_traced_with_threads(cfg, 1);
    let (report_four, tel_four) = run_traced_with_threads(cfg, 4);
    // The event stream is the strictest artefact: every event, in order.
    // Compare through JSON lines so a mismatch names the first diverging
    // event instead of dumping two megabyte-scale vectors.
    assert_eq!(tel_one.events.len(), tel_four.events.len(), "event count");
    for (i, (a, b)) in tel_one.events.iter().zip(&tel_four.events).enumerate() {
        let (ja, jb) = (event_json(a), event_json(b));
        assert_eq!(ja, jb, "event {i} diverged between 1 and 4 threads");
    }
    assert_eq!(tel_one.summary, tel_four.summary, "telemetry summary");
    assert_eq!(report_one, report_four, "reports with telemetry embedded");
}

fn event_json(event: &Event) -> String {
    float::obs::sink::to_jsonl(std::slice::from_ref(event))
}

#[test]
fn sync_telemetry_stream_is_thread_count_independent() {
    // Telemetry on, fault-free: recorder merge order and event emission
    // sites must be worker-count independent.
    assert_telemetry_bit_identical(ExperimentConfig::small(
        SelectorChoice::FedAvg,
        AccelMode::Rlhf,
        6,
    ));
}

#[test]
fn sync_chaos_telemetry_stream_is_thread_count_independent() {
    // Telemetry on under the chaos plan: fault events, quarantine
    // outcomes, retry attempts, and dedup counts all recorded — still
    // bit-identical across worker counts.
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 6);
    cfg.fault_plan = FaultPlan::chaos();
    assert_telemetry_bit_identical(cfg);
}

#[test]
fn async_telemetry_stream_is_thread_count_independent() {
    assert_telemetry_bit_identical(ExperimentConfig::small(
        SelectorChoice::FedBuff,
        AccelMode::Rlhf,
        6,
    ));
}

#[test]
fn async_chaos_telemetry_stream_is_thread_count_independent() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Rlhf, 6);
    cfg.fault_plan = FaultPlan::chaos();
    assert_telemetry_bit_identical(cfg);
}

#[test]
fn env_override_beats_config() {
    // FLOAT_THREADS wins over ExperimentConfig::num_threads. Runs in its
    // own process-global env slot; keep it the only env-touching test.
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 2);
    cfg.num_threads = 1;
    std::env::set_var("FLOAT_THREADS", "3");
    assert_eq!(cfg.effective_threads(), 3);
    std::env::remove_var("FLOAT_THREADS");
    assert_eq!(cfg.effective_threads(), 1);
}
