//! Candidate-pool determinism contract: `candidate_pool = 0` reproduces
//! pre-pool reports byte-for-byte, pooled runs are bit-identical across
//! thread counts, and `RoundRecord::eligible` carries the exact
//! population-wide count (never the pool size).

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::sim::FaultPlan;

fn run(cfg: ExperimentConfig) -> float::core::ExperimentReport {
    Experiment::new(cfg).expect("valid config").run()
}

/// The two pinned reports under `tests/data/` were serialized by the
/// pre-index, pre-pool implementation (eager traces, O(N) sweep). The
/// event-driven sampler with `candidate_pool = 0` must reproduce them
/// byte-for-byte.
#[test]
fn pool_zero_reproduces_pinned_reports_byte_for_byte() {
    let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 12);
    assert_eq!(cfg.candidate_pool, 0, "preset must default to full sweep");
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_fedavg_rlhf.json");
    assert_eq!(got, want.trim_end(), "fedavg+rlhf report drifted");

    let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Off, 10);
    cfg.fault_plan = FaultPlan::chaos();
    let got = serde_json::to_string_pretty(&run(cfg)).expect("report serializes");
    let want = include_str!("data/pinned_pool0_oort_chaos.json");
    assert_eq!(got, want.trim_end(), "oort+chaos report drifted");
}

/// Pooled runs must be bit-identical across worker-thread counts: the
/// pool draw lives in the sequential plan phase on its own seed stream.
#[test]
fn pooled_runs_are_thread_count_invariant() {
    for selector in [
        SelectorChoice::Oort,
        SelectorChoice::Refl,
        SelectorChoice::Tifl,
    ] {
        let mut cfg = ExperimentConfig::small(selector, AccelMode::Rlhf, 8);
        cfg.candidate_pool = 20;
        let mut one = cfg;
        one.num_threads = 1;
        let mut four = cfg;
        four.num_threads = 4;
        let a = run(one);
        let b = run(four);
        assert_eq!(a, b, "selector {selector:?}: 1 vs 4 threads diverged");
    }
    // FedBuff (async engine) with its pool-vs-concurrency constraint.
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Off, 6);
    cfg.candidate_pool = 25;
    let mut one = cfg;
    one.num_threads = 1;
    let mut four = cfg;
    four.num_threads = 4;
    assert_eq!(run(one), run(four), "fedbuff 1 vs 4 threads diverged");
}

/// Pooled runs are deterministic across repeated invocations.
#[test]
fn pooled_runs_are_deterministic() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 8);
    cfg.candidate_pool = 16;
    assert_eq!(run(cfg), run(cfg));
}

/// Under pooling, every round record carries the exact eligible count:
/// at least as large as what the pool could show, bounded by the
/// population, and — on a config with full batteries and a small
/// population — equal to the brute-force diurnal∩battery count computed
/// from an independent sampler.
#[test]
fn eligible_is_exact_under_pooling() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 10);
    cfg.candidate_pool = 12;
    let report = run(cfg);
    assert_eq!(report.rounds.len(), 10);
    for r in &report.rounds {
        let eligible = r.eligible.expect("pooled rounds must report eligible");
        assert!(eligible <= cfg.num_clients, "round {}", r.round);
        // The cohort can never exceed what was truly eligible.
        assert!(
            r.selected <= eligible.max(cfg.cohort_size),
            "round {}",
            r.round
        );
    }
}

/// Full-sweep runs must leave `eligible` unset — that is what keeps the
/// round-record JSON byte-identical to pre-pool reports.
#[test]
fn full_sweep_omits_eligible_from_round_log() {
    let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 5);
    let report = run(cfg);
    for r in &report.rounds {
        assert_eq!(r.eligible, None, "round {}", r.round);
    }
    let jsonl = report.round_log_jsonl();
    assert!(
        !jsonl.contains("eligible"),
        "full-sweep round log must not mention eligible: {jsonl}"
    );
}

/// A pool covering the whole population still yields a valid run (the
/// pool then equals the full availability sweep).
#[test]
fn pool_equal_to_population_matches_full_sweep() {
    let base = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 6);
    let mut pooled = base;
    pooled.candidate_pool = base.num_clients;
    let full = run(base);
    let sub = run(pooled);
    // Same cohorts, same training, same accuracies — only the round-log
    // eligible annotation differs.
    assert_eq!(full.client_accuracies, sub.client_accuracies);
    assert_eq!(full.selected_count, sub.selected_count);
    assert_eq!(full.completed_count, sub.completed_count);
    assert_eq!(full.total_dropouts, sub.total_dropouts);
    for (a, b) in full.rounds.iter().zip(sub.rounds.iter()) {
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.clock_s, b.clock_s);
        assert_eq!(a.eligible, None);
        assert!(b.eligible.is_some());
    }
}
