//! Integration tests for the reproduction's extension surface: the
//! extended action catalogue (RQ5), the §7 reward-weight knob, the
//! vertical-FL substrate, agent transfer through the facade, and trace
//! replay.

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::rl::RlhfAgent;
use float::tensor::model::TrainOptions;
use float::traces::ReplayTrace;
use float::vfl::split::synthetic_vfl;
use float::vfl::{SplitModel, VflConfig};

#[test]
fn extended_catalogue_runs_and_uses_extra_actions() {
    let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::RlhfExtended, 12);
    let report = Experiment::new(cfg).expect("valid").run();
    assert!(report.total_completions > 0);
    // The extended catalogue's extra actions must actually be exercised.
    let extra_used = ["noop", "compress", "topk10"]
        .iter()
        .filter(|&&n| report.technique_stats.contains_key(n))
        .count();
    assert!(
        extra_used >= 2,
        "extended actions unused: {:?}",
        report.technique_stats.keys().collect::<Vec<_>>()
    );
}

#[test]
fn reward_weights_are_validated_and_change_behaviour() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 12);
    cfg.reward_w_participation = -1.0;
    assert!(Experiment::new(cfg).is_err());

    // Participation-only vs accuracy-leaning agents behave differently.
    let mut p_cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 12);
    p_cfg.reward_w_participation = 1.0;
    p_cfg.reward_w_accuracy = 0.0;
    let p_report = Experiment::new(p_cfg).expect("valid").run();

    let mut a_cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 12);
    a_cfg.reward_w_participation = 0.1;
    a_cfg.reward_w_accuracy = 0.9;
    let a_report = Experiment::new(a_cfg).expect("valid").run();

    // Different objectives must produce different technique mixes.
    assert_ne!(
        p_report.technique_stats, a_report.technique_stats,
        "reward weights had no behavioural effect"
    );
}

#[test]
fn agent_transfer_through_facade() {
    let src = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 10);
    let (_, agent) = Experiment::new(src).expect("valid").run_capturing_agent();
    // Serialize, restore, install into a new experiment on another task.
    let restored = RlhfAgent::from_json(&agent.to_json()).expect("roundtrip");
    let mut tgt_cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Rlhf, 6);
    tgt_cfg.task = float::data::Task::Femnist;
    let mut tgt = Experiment::new(tgt_cfg).expect("valid");
    tgt.install_pretrained_agent(restored);
    let report = tgt.run();
    assert_eq!(report.rounds.len(), 6);
}

#[test]
fn vfl_substrate_trains_through_facade() {
    let config = VflConfig {
        party_dims: vec![8, 8],
        embed_dim: 8,
        num_classes: 3,
    };
    let data = synthetic_vfl(&config, 128, 11);
    let mut model = SplitModel::new(&config, 5);
    let opts = vec![TrainOptions::default(); 2];
    let before = model.evaluate(&data);
    for e in 0..25 {
        model.train_epoch(&data, 16, 0.1, e, &opts);
    }
    assert!(model.evaluate(&data) > before + 0.2);
}

#[test]
fn replay_trace_integrates_with_simulation_style_queries() {
    let trace = ReplayTrace::parse("10\n20\n30\n").expect("valid");
    // Behave like a bandwidth source across a long horizon.
    let series: Vec<f64> = (0..300).map(|r| trace.at(r)).collect();
    assert_eq!(series[0], 10.0);
    assert_eq!(series[299], 30.0);
    assert!((trace.mean() - 20.0).abs() < 1e-12);
}

#[test]
fn static_modes_cover_whole_catalogue() {
    // Every paper-catalogue index must be runnable as a static mode.
    for idx in 0..8 {
        let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Static(idx), 3);
        let report = Experiment::new(cfg).expect("valid").run();
        assert_eq!(report.technique_stats.len(), 1, "static idx {idx}");
    }
}

#[test]
fn tifl_extension_selector_runs_with_and_without_float() {
    for accel in [AccelMode::Off, AccelMode::Rlhf] {
        let cfg = ExperimentConfig::small(SelectorChoice::Tifl, accel, 8);
        let report = Experiment::new(cfg).expect("valid").run();
        assert_eq!(report.rounds.len(), 8);
        assert!(
            report.total_completions > 0,
            "tifl/{} never completed",
            accel.name()
        );
    }
}

#[test]
fn rlhf_extended_report_label_distinguishes_mode() {
    let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::RlhfExtended, 3);
    let report = Experiment::new(cfg).expect("valid").run();
    assert!(report.label.starts_with("float-rlhf-ext"));
}
