//! Cross-crate integration tests: full experiments through the public
//! facade, covering every selector × accel-mode combination, determinism,
//! and report consistency invariants.

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};

fn run(selector: SelectorChoice, accel: AccelMode, rounds: usize) -> float::core::ExperimentReport {
    let cfg = ExperimentConfig::small(selector, accel, rounds);
    Experiment::new(cfg).expect("small config validates").run()
}

#[test]
fn every_selector_runs_with_every_accel_mode() {
    for sel in SelectorChoice::ALL {
        for accel in [
            AccelMode::Off,
            AccelMode::Static(2),
            AccelMode::Heuristic,
            AccelMode::Rl,
            AccelMode::Rlhf,
        ] {
            let r = run(sel, accel, 4);
            assert_eq!(r.rounds.len(), 4, "{}/{}", sel.name(), accel.name());
            assert!(
                r.total_completions > 0,
                "{}/{} never completed a client",
                sel.name(),
                accel.name()
            );
        }
    }
}

#[test]
fn report_invariants_hold() {
    let r = run(SelectorChoice::FedAvg, AccelMode::Rlhf, 10);
    // Per-client counts are consistent with totals.
    let completed_sum: u64 = r.completed_count.iter().sum();
    assert_eq!(completed_sum, r.total_completions);
    // Every completion and dropout is a selection (sync engine).
    let selected_sum: u64 = r.selected_count.iter().sum();
    assert_eq!(selected_sum, r.total_completions + r.total_dropouts);
    // Ledger counts match report counts.
    assert_eq!(r.resources.completions, r.total_completions);
    assert_eq!(r.resources.dropouts, r.total_dropouts);
    // Accuracies are probabilities.
    for &a in &r.client_accuracies {
        assert!((0.0..=1.0).contains(&a), "accuracy {a} out of range");
    }
    // Accuracy summary ordering.
    assert!(r.accuracy.top10 >= r.accuracy.mean);
    assert!(r.accuracy.mean >= r.accuracy.bottom10);
    // Clock advances monotonically in the round log.
    for w in r.rounds.windows(2) {
        assert!(w[1].clock_s >= w[0].clock_s);
    }
    // Technique stats account for every attempt.
    let tech_total: u64 = r
        .technique_stats
        .values()
        .map(|t| t.successes + t.failures)
        .sum();
    assert_eq!(tech_total, r.total_completions + r.total_dropouts);
}

#[test]
fn runs_are_reproducible_across_processes_shapes() {
    let a = run(SelectorChoice::Oort, AccelMode::Rlhf, 6);
    let b = run(SelectorChoice::Oort, AccelMode::Rlhf, 6);
    assert_eq!(a.client_accuracies, b.client_accuracies);
    assert_eq!(a.selected_count, b.selected_count);
    assert_eq!(a.total_dropouts, b.total_dropouts);
    assert_eq!(a.wall_clock_h, b.wall_clock_h);
}

#[test]
fn different_seeds_change_outcomes() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 6);
    let a = Experiment::new(cfg).expect("valid").run();
    cfg.seed = 8888;
    let b = Experiment::new(cfg).expect("valid").run();
    assert_ne!(a.client_accuracies, b.client_accuracies);
}

#[test]
fn float_reduces_dropouts_and_waste_on_fedavg() {
    let off = run(SelectorChoice::FedAvg, AccelMode::Off, 15);
    let fl = run(SelectorChoice::FedAvg, AccelMode::Rlhf, 15);
    assert!(
        fl.total_dropouts < off.total_dropouts,
        "dropouts {} !< {}",
        fl.total_dropouts,
        off.total_dropouts
    );
    assert!(
        fl.resources.wasted_compute_h < off.resources.wasted_compute_h,
        "wasted compute {} !< {}",
        fl.resources.wasted_compute_h,
        off.resources.wasted_compute_h
    );
}

#[test]
fn async_engine_is_faster_in_wall_clock_than_sync() {
    let sync = run(SelectorChoice::FedAvg, AccelMode::Off, 10);
    let asynch = run(SelectorChoice::FedBuff, AccelMode::Off, 10);
    assert!(
        asynch.wall_clock_h < sync.wall_clock_h,
        "async {}h !< sync {}h",
        asynch.wall_clock_h,
        sync.wall_clock_h
    );
}

#[test]
fn no_dropout_counterfactual_eliminates_resource_dropouts() {
    let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 8);
    cfg.assume_no_dropouts = true;
    let r = Experiment::new(cfg).expect("valid").run();
    assert_eq!(
        r.total_dropouts, 0,
        "ND counterfactual still dropped {} clients",
        r.total_dropouts
    );
}

#[test]
fn model_actually_learns_non_iid_task() {
    let r = run(SelectorChoice::FedAvg, AccelMode::Off, 25);
    let evals: Vec<f64> = r.rounds.iter().filter_map(|x| x.mean_accuracy).collect();
    let first = evals.first().copied().expect("has evals");
    let last = evals.last().copied().expect("has evals");
    assert!(last > first + 0.1, "first {first} last {last}");
    assert!(last > 0.5, "final accuracy {last} too low to call learning");
}

#[test]
fn iid_data_is_easier_than_skewed_data() {
    let mut skewed_cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 20);
    skewed_cfg.alpha = Some(0.02);
    let skewed = Experiment::new(skewed_cfg).expect("valid").run();
    let mut iid_cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 20);
    iid_cfg.alpha = None;
    let iid = Experiment::new(iid_cfg).expect("valid").run();
    // Under IID, the bottom decile should not collapse the way it does
    // under extreme label skew.
    assert!(
        iid.accuracy.bottom10 > skewed.accuracy.bottom10,
        "iid bottom10 {} !> skewed bottom10 {}",
        iid.accuracy.bottom10,
        skewed.accuracy.bottom10
    );
}
