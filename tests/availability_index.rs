//! Property tests for the event-driven availability substrate: the
//! calendar index must agree with the brute-force per-model check over
//! arbitrary seeds, population sizes, and (non-monotone) round orders;
//! the sampler's indexed sweep must agree with per-client `is_available`
//! under arbitrary battery drains; and pooled draws must be exact about
//! the eligible count, subsets of the sweep, and deterministic in the
//! draw seed.

use proptest::prelude::*;

use float::tensor::rng::split_seed;
use float::traces::{AvailabilityIndex, AvailabilityModel, InterferenceModel, ResourceSampler};

proptest! {
    /// The maintained index row is exactly the brute-force diurnal filter
    /// at every queried round, no matter how rounds jump around.
    #[test]
    fn index_matches_brute_force_diurnal(
        seed in any::<u64>(),
        n in 0usize..200,
        rounds in prop::collection::vec(0usize..500, 1..25),
    ) {
        let mk = |i: usize| AvailabilityModel::new(split_seed(seed, 0xA11 + i as u64));
        let mut index = AvailabilityIndex::build(n, mk);
        for &r in &rounds {
            index.advance_to(r);
            let mut want_count = 0usize;
            for c in 0..n {
                let want = mk(c).diurnal_available(r);
                prop_assert_eq!(
                    index.contains(c), want,
                    "client {} round {} disagrees with brute force", c, r
                );
                want_count += usize::from(want);
            }
            prop_assert_eq!(index.count(), want_count, "count drifted at round {}", r);
        }
    }

    /// The sampler's indexed sweep equals filtering every client through
    /// `is_available` — including after arbitrary battery drains and
    /// recharges, visited in an arbitrary round order.
    #[test]
    fn indexed_sweep_matches_per_client_filter(
        seed in any::<u64>(),
        n in 1usize..120,
        drains in prop::collection::vec((0usize..120, 1u32..4), 0..16),
        rounds in prop::collection::vec(0usize..300, 1..10),
        charge_at in 0usize..10,
    ) {
        let mut sweeper = ResourceSampler::new(n, InterferenceModel::None, seed);
        let mut brute = ResourceSampler::new(n, InterferenceModel::None, seed);
        for &(c, times) in &drains {
            for _ in 0..times {
                sweeper.drain_battery(c % n, 18_000.0);
                brute.drain_battery(c % n, 18_000.0);
            }
        }
        let mut sweep = Vec::new();
        for (step, &r) in rounds.iter().enumerate() {
            if step == charge_at {
                sweeper.charge_all();
                brute.charge_all();
            }
            sweeper.available_clients_into(r, &mut sweep);
            let want: Vec<usize> = (0..n).filter(|&c| brute.is_available(c, r)).collect();
            prop_assert_eq!(&sweep, &want, "sweep diverged at round {}", r);
        }
    }

    /// Pooled draws: the returned eligible count is the exact brute-force
    /// diurnal ∩ battery count (never the pool size), the pool is an
    /// ascending duplicate-free subset of the full sweep, and the same
    /// draw seed reproduces the same pool.
    #[test]
    fn pool_is_exact_sound_and_deterministic(
        seed in any::<u64>(),
        n in 1usize..100,
        k in 1usize..48,
        draw_seed in any::<u64>(),
        drains in prop::collection::vec((0usize..100, 1u32..3), 0..10),
        rounds in prop::collection::vec(0usize..200, 1..8),
    ) {
        let mut pooled = ResourceSampler::new(n, InterferenceModel::None, seed);
        let mut twin = ResourceSampler::new(n, InterferenceModel::None, seed);
        let mut sweeper = ResourceSampler::new(n, InterferenceModel::None, seed);
        for &(c, times) in &drains {
            for _ in 0..times {
                pooled.drain_battery(c % n, 18_000.0);
                twin.drain_battery(c % n, 18_000.0);
                sweeper.drain_battery(c % n, 18_000.0);
            }
        }
        let mut pool = Vec::new();
        let mut pool_again = Vec::new();
        let mut sweep = Vec::new();
        for (step, &r) in rounds.iter().enumerate() {
            let ds = split_seed(draw_seed, step as u64);
            let eligible = pooled.candidate_pool_into(r, k, ds, &mut pool);
            let eligible_twin = twin.candidate_pool_into(r, k, ds, &mut pool_again);
            prop_assert_eq!(eligible, eligible_twin);
            prop_assert_eq!(&pool, &pool_again, "same draw seed, different pool");

            // Exactness: diurnal ∩ battery, by brute force on the twin.
            let mut want_eligible = 0usize;
            for c in 0..n {
                let t = twin.client(c);
                if t.availability.diurnal_available(r) && t.battery.allows_training() {
                    want_eligible += 1;
                }
            }
            prop_assert_eq!(eligible, want_eligible, "eligible not exact at round {}", r);

            // Soundness: a subset of the full sweep, ascending, no dups.
            sweeper.available_clients_into(r, &mut sweep);
            prop_assert!(pool.len() <= k.min(n));
            prop_assert!(pool.windows(2).all(|w| w[0] < w[1]), "pool not ascending/unique");
            prop_assert!(
                pool.iter().all(|c| sweep.binary_search(c).is_ok()),
                "pool member missing from the sweep at round {}", r
            );
        }
    }
}
