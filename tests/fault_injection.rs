//! Chaos tests for the fault-injection harness: under *any* fault
//! schedule, experiment runs must complete without panicking, reports must
//! stay free of NaN/Inf, and the fault bookkeeping (quarantines, duplicate
//! suppression, stall retries) must agree between the ledger and report.

use proptest::prelude::*;

use float::core::{AccelMode, Experiment, ExperimentConfig, ExperimentReport, SelectorChoice};
use float::sim::FaultPlan;

fn run_with_plan(
    selector: SelectorChoice,
    accel: AccelMode,
    rounds: usize,
    seed: u64,
    plan: FaultPlan,
) -> ExperimentReport {
    let mut cfg = ExperimentConfig::small(selector, accel, rounds);
    cfg.seed = seed;
    cfg.fault_plan = plan;
    Experiment::new(cfg).expect("valid config").run()
}

/// The invariants every faulted run must uphold.
fn assert_hardened(r: &ExperimentReport) {
    assert!(r.is_finite(), "report carries NaN/Inf: {}", r.label);
    assert_eq!(
        r.total_quarantined, r.resources.quarantined,
        "report and ledger disagree on quarantines"
    );
    // The ledger sees every executed attempt; the report counts the ones
    // whose completion events drained (in async, some are still in flight
    // at run end), so the ledger can only ever be ahead.
    assert!(
        r.resources.completions + r.resources.dropouts >= r.total_completions + r.total_dropouts,
        "ledger lost attempts"
    );
    for round in &r.rounds {
        assert!(
            round.quarantined <= round.dropped,
            "round {:?}",
            round.round
        );
    }
}

proptest! {
    // Each case is a full (short) experiment run; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sync_runs_survive_arbitrary_fault_schedules(
        seed in any::<u64>(),
        crash in 0.0f64..0.25,
        stall in 0.0f64..0.25,
        duplicate in 0.0f64..0.2,
        corrupt in 0.0f64..0.2,
        retries in 0u32..3,
    ) {
        let plan = FaultPlan {
            crash_rate: crash,
            stall_rate: stall,
            duplicate_rate: duplicate,
            corrupt_rate: corrupt,
            stall_max_retries: retries,
            stall_backoff_s: 30.0,
        };
        let r = run_with_plan(SelectorChoice::FedAvg, AccelMode::Rlhf, 3, seed, plan);
        assert_hardened(&r);
        prop_assert_eq!(r.rounds.len(), 3);
        // Synchronous runs drain every attempt, so the ledger identity is
        // exact: every execution (including each stall retry) is either a
        // completion or a dropout.
        prop_assert_eq!(
            r.resources.completions + r.resources.dropouts,
            r.total_completions + r.total_dropouts + r.stall_retries
        );
    }

    #[test]
    fn async_runs_survive_arbitrary_fault_schedules(
        seed in any::<u64>(),
        crash in 0.0f64..0.25,
        stall in 0.0f64..0.25,
        duplicate in 0.0f64..0.2,
        corrupt in 0.0f64..0.2,
    ) {
        let plan = FaultPlan {
            crash_rate: crash,
            stall_rate: stall,
            duplicate_rate: duplicate,
            corrupt_rate: corrupt,
            stall_max_retries: 1,
            stall_backoff_s: 10.0,
        };
        let r = run_with_plan(SelectorChoice::FedBuff, AccelMode::Rlhf, 3, seed, plan);
        assert_hardened(&r);
        // The async engine never retries stalls (a stalled slot is simply
        // reclaimed at the timeout), so no backoff may leak into the clock.
        prop_assert_eq!(r.stall_retries, 0);
    }
}

#[test]
fn every_selector_survives_chaos() {
    // The quarantine feedback path reaches each selector's penalty logic.
    for selector in [
        SelectorChoice::FedAvg,
        SelectorChoice::Oort,
        SelectorChoice::Refl,
        SelectorChoice::FedBuff,
        SelectorChoice::Tifl,
    ] {
        let r = run_with_plan(selector, AccelMode::Off, 4, 11, FaultPlan::chaos());
        assert_hardened(&r);
    }
}

#[test]
fn quarantines_surface_in_ledger_and_report() {
    // Corrupt-only plan: every injected fault is a payload poisoning, so
    // quarantines must appear and nothing else may fire.
    let plan = FaultPlan {
        corrupt_rate: 0.3,
        ..FaultPlan::none()
    };
    let r = run_with_plan(SelectorChoice::FedAvg, AccelMode::Off, 5, 3, plan);
    assert_hardened(&r);
    assert!(r.total_quarantined > 0, "30% corrupt rate injected nothing");
    assert_eq!(r.stall_retries, 0);
    assert_eq!(r.duplicates_suppressed, 0);
    let per_round: usize = r.rounds.iter().map(|x| x.quarantined).sum();
    assert_eq!(per_round as u64, r.total_quarantined);
}

#[test]
fn stall_retries_add_backoff_to_the_wall_clock() {
    let plan = FaultPlan {
        stall_rate: 0.3,
        stall_max_retries: 2,
        stall_backoff_s: 120.0,
        ..FaultPlan::none()
    };
    let mut no_backoff = plan;
    no_backoff.stall_backoff_s = 0.0;
    let with = run_with_plan(SelectorChoice::FedAvg, AccelMode::Off, 5, 9, plan);
    let without = run_with_plan(SelectorChoice::FedAvg, AccelMode::Off, 5, 9, no_backoff);
    assert_hardened(&with);
    assert!(with.stall_retries > 0, "30% stall rate retried nothing");
    // The backoff knob changes only wall time: same fault draws, same
    // outcomes, strictly more clock.
    assert_eq!(with.stall_retries, without.stall_retries);
    assert_eq!(with.total_completions, without.total_completions);
    assert!(with.wall_clock_h > without.wall_clock_h);
}

#[test]
fn duplicate_deliveries_are_suppressed_not_double_counted() {
    let plan = FaultPlan {
        duplicate_rate: 0.4,
        ..FaultPlan::none()
    };
    let dup = run_with_plan(SelectorChoice::FedAvg, AccelMode::Off, 5, 3, plan);
    let clean = run_with_plan(
        SelectorChoice::FedAvg,
        AccelMode::Off,
        5,
        3,
        FaultPlan::none(),
    );
    assert_hardened(&dup);
    assert!(
        dup.duplicates_suppressed > 0,
        "40% dup rate injected nothing"
    );
    // Duplicate delivery perturbs neither outcomes nor (post-dedup)
    // aggregation in the sync engine: the run must match a clean one
    // everywhere it counts.
    assert_eq!(dup.total_completions, clean.total_completions);
    assert_eq!(dup.client_accuracies, clean.client_accuracies);
    assert_eq!(dup.resources, clean.resources);
}

#[test]
fn faulted_runs_are_reproducible() {
    let a = run_with_plan(
        SelectorChoice::Oort,
        AccelMode::Rlhf,
        4,
        21,
        FaultPlan::chaos(),
    );
    let b = run_with_plan(
        SelectorChoice::Oort,
        AccelMode::Rlhf,
        4,
        21,
        FaultPlan::chaos(),
    );
    assert_eq!(a, b, "same seed + same plan must reproduce bit-identically");
}
