//! Property-based tests over the resource simulator: physical
//! monotonicity invariants that every latency/energy/dropout computation
//! must respect regardless of parameter values.

use proptest::prelude::*;

use float::models::{Architecture, RoundCost};
use float::sim::{estimate_round_time_s, execute_client_round, RoundParams};
use float::traces::{InterferenceModel, ResourceSampler, ResourceSnapshot};

fn snapshot(gflops: f64, mbps: f64, mem: f64) -> ResourceSnapshot {
    ResourceSnapshot {
        available: true,
        effective_gflops: gflops,
        effective_mbps: mbps,
        effective_memory_bytes: mem,
        cpu_fraction: 1.0,
        mem_fraction: 1.0,
        net_fraction: 1.0,
        battery_fraction: 1.0,
    }
}

fn profile() -> float::traces::DeviceProfile {
    let s = ResourceSampler::new(1, InterferenceModel::None, 1);
    s.client(0).profile
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn faster_compute_never_slows_the_round(g1 in 0.5f64..50.0, g2 in 0.5f64..50.0,
                                            mbps in 1.0f64..500.0,
                                            samples in 10usize..200) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), samples, 2, 16);
        let slow = estimate_round_time_s(&snapshot(lo, mbps, 1e12), &cost);
        let fast = estimate_round_time_s(&snapshot(hi, mbps, 1e12), &cost);
        prop_assert!(fast <= slow + 1e-9);
    }

    #[test]
    fn more_bandwidth_never_slows_the_round(b1 in 0.1f64..500.0, b2 in 0.1f64..500.0,
                                            gflops in 0.5f64..50.0) {
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let cost = RoundCost::vanilla(&Architecture::ResNet34.profile(), 50, 2, 16);
        let slow = estimate_round_time_s(&snapshot(gflops, lo, 1e12), &cost);
        let fast = estimate_round_time_s(&snapshot(gflops, hi, 1e12), &cost);
        prop_assert!(fast <= slow + 1e-9);
    }

    #[test]
    fn acceleration_never_raises_estimated_time(gflops in 0.5f64..50.0,
                                                mbps in 0.5f64..200.0,
                                                keep in 0.1f64..1.0) {
        let base = RoundCost::vanilla(&Architecture::ResNet34.profile(), 60, 3, 16);
        let mut pruned = base.scale_compute(keep).scale_upload(keep);
        pruned.download_bytes *= keep;
        let snap = snapshot(gflops, mbps, 1e12);
        prop_assert!(
            estimate_round_time_s(&snap, &pruned)
                <= estimate_round_time_s(&snap, &base) + 1e-9
        );
    }

    #[test]
    fn outcome_phases_are_nonnegative_and_finite(gflops in 0.01f64..100.0,
                                                 mbps in 0.01f64..1000.0,
                                                 mem in 1e6f64..1e12,
                                                 deadline in 10.0f64..10_000.0,
                                                 seed in any::<u64>()) {
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), 40, 2, 16);
        let params = RoundParams {
            deadline_s: deadline,
            failure_hazard_per_s: 1e-4,
        };
        let out = execute_client_round(&snapshot(gflops, mbps, mem), &profile(), &cost, &params, seed);
        for v in [out.download_s, out.train_s, out.upload_s, out.energy_j, out.memory_bytes] {
            prop_assert!(v.is_finite() && v >= 0.0, "non-physical value {v}");
        }
        prop_assert!(out.deadline_overrun >= 0.0);
    }

    #[test]
    fn completion_implies_meeting_the_deadline(gflops in 0.01f64..100.0,
                                               mbps in 0.01f64..1000.0,
                                               deadline in 10.0f64..10_000.0,
                                               seed in any::<u64>()) {
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), 40, 2, 16);
        let params = RoundParams {
            deadline_s: deadline,
            failure_hazard_per_s: 0.0,
        };
        let out = execute_client_round(
            &snapshot(gflops, mbps, 1e12),
            &profile(),
            &cost,
            &params,
            seed,
        );
        if out.completed() {
            prop_assert!(out.total_s() <= deadline + 1e-6);
            prop_assert_eq!(out.deadline_overrun, 0.0);
        }
    }

    #[test]
    fn longer_deadlines_never_create_dropouts(gflops in 0.1f64..50.0,
                                              mbps in 0.5f64..200.0,
                                              d1 in 60.0f64..5000.0,
                                              d2 in 60.0f64..5000.0) {
        let (short, long) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), 40, 2, 16);
        let mk = |deadline| RoundParams {
            deadline_s: deadline,
            failure_hazard_per_s: 0.0,
        };
        let snap = snapshot(gflops, mbps, 1e12);
        let with_short = execute_client_round(&snap, &profile(), &cost, &mk(short), 7);
        let with_long = execute_client_round(&snap, &profile(), &cost, &mk(long), 7);
        if with_short.completed() {
            prop_assert!(with_long.completed(), "longer deadline caused a dropout");
        }
    }

    #[test]
    fn sampler_snapshots_are_physical(clients in 1usize..30, rounds in 1usize..40,
                                      seed in any::<u64>()) {
        let mut s = ResourceSampler::new(clients, InterferenceModel::paper_dynamic(), seed);
        for c in 0..clients {
            for r in 0..rounds {
                let snap = s.snapshot(c, r);
                prop_assert!(snap.effective_gflops >= 0.0 && snap.effective_gflops.is_finite());
                prop_assert!(snap.effective_mbps >= 0.0 && snap.effective_mbps.is_finite());
                prop_assert!((0.0..=1.0).contains(&snap.cpu_fraction));
                prop_assert!((0.0..=1.0).contains(&snap.mem_fraction));
                prop_assert!((0.0..=1.0).contains(&snap.net_fraction));
                prop_assert!((0.0..=1.0).contains(&snap.battery_fraction));
            }
        }
    }
}
