//! Property-based tests over the resource simulator: physical
//! monotonicity invariants that every latency/energy/dropout computation
//! must respect regardless of parameter values.

use proptest::prelude::*;

use float::models::{Architecture, RoundCost};
use float::sim::{
    estimate_round_time_s, execute_client_round, ClientRoundOutcome, DropReason, FaultPlan,
    ResourceLedger, RoundParams,
};
use float::traces::{InterferenceModel, ResourceSampler, ResourceSnapshot};

fn snapshot(gflops: f64, mbps: f64, mem: f64) -> ResourceSnapshot {
    ResourceSnapshot {
        available: true,
        effective_gflops: gflops,
        effective_mbps: mbps,
        effective_memory_bytes: mem,
        cpu_fraction: 1.0,
        mem_fraction: 1.0,
        net_fraction: 1.0,
        battery_fraction: 1.0,
    }
}

fn profile() -> float::traces::DeviceProfile {
    let mut s = ResourceSampler::new(1, InterferenceModel::None, 1);
    s.client(0).profile
}

/// Decode an arbitrary u64 into a client-round outcome, covering every
/// drop reason (including the fault-injected ones) and a spread of
/// resource magnitudes. The shim proptest has no tuple strategies, so
/// outcome streams are generated as `Vec<u64>` and decoded here.
fn decode_outcome(w: u64) -> ClientRoundOutcome {
    let dropped = match w % 8 {
        0 | 1 => None, // completions ~25% of the stream
        2 => Some(DropReason::Unavailable),
        3 => Some(DropReason::OutOfMemory),
        4 => Some(DropReason::DeadlineMiss),
        5 => Some(DropReason::MidRoundFailure),
        6 => Some(DropReason::InjectedCrash),
        _ => {
            if w & 8 == 0 {
                Some(DropReason::NetworkStall)
            } else {
                Some(DropReason::Quarantined)
            }
        }
    };
    ClientRoundOutcome {
        dropped,
        download_s: ((w >> 8) & 0xFFFF) as f64 / 7.0,
        train_s: ((w >> 24) & 0xFFFF) as f64 / 3.0,
        upload_s: ((w >> 40) & 0xFFFF) as f64 / 11.0,
        memory_bytes: ((w >> 16) & 0xFFFF_FFFF) as f64 * 1e3,
        energy_j: (w & 0xFF_FFFF) as f64 / 13.0,
        deadline_overrun: ((w >> 48) & 0xFF) as f64 / 100.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn faster_compute_never_slows_the_round(g1 in 0.5f64..50.0, g2 in 0.5f64..50.0,
                                            mbps in 1.0f64..500.0,
                                            samples in 10usize..200) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), samples, 2, 16);
        let slow = estimate_round_time_s(&snapshot(lo, mbps, 1e12), &cost);
        let fast = estimate_round_time_s(&snapshot(hi, mbps, 1e12), &cost);
        prop_assert!(fast <= slow + 1e-9);
    }

    #[test]
    fn more_bandwidth_never_slows_the_round(b1 in 0.1f64..500.0, b2 in 0.1f64..500.0,
                                            gflops in 0.5f64..50.0) {
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let cost = RoundCost::vanilla(&Architecture::ResNet34.profile(), 50, 2, 16);
        let slow = estimate_round_time_s(&snapshot(gflops, lo, 1e12), &cost);
        let fast = estimate_round_time_s(&snapshot(gflops, hi, 1e12), &cost);
        prop_assert!(fast <= slow + 1e-9);
    }

    #[test]
    fn acceleration_never_raises_estimated_time(gflops in 0.5f64..50.0,
                                                mbps in 0.5f64..200.0,
                                                keep in 0.1f64..1.0) {
        let base = RoundCost::vanilla(&Architecture::ResNet34.profile(), 60, 3, 16);
        let mut pruned = base.scale_compute(keep).scale_upload(keep);
        pruned.download_bytes *= keep;
        let snap = snapshot(gflops, mbps, 1e12);
        prop_assert!(
            estimate_round_time_s(&snap, &pruned)
                <= estimate_round_time_s(&snap, &base) + 1e-9
        );
    }

    #[test]
    fn outcome_phases_are_nonnegative_and_finite(gflops in 0.01f64..100.0,
                                                 mbps in 0.01f64..1000.0,
                                                 mem in 1e6f64..1e12,
                                                 deadline in 10.0f64..10_000.0,
                                                 seed in any::<u64>()) {
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), 40, 2, 16);
        let params = RoundParams {
            deadline_s: deadline,
            failure_hazard_per_s: 1e-4,
        };
        let out = execute_client_round(&snapshot(gflops, mbps, mem), &profile(), &cost, &params, seed);
        for v in [out.download_s, out.train_s, out.upload_s, out.energy_j, out.memory_bytes] {
            prop_assert!(v.is_finite() && v >= 0.0, "non-physical value {v}");
        }
        prop_assert!(out.deadline_overrun >= 0.0);
    }

    #[test]
    fn completion_implies_meeting_the_deadline(gflops in 0.01f64..100.0,
                                               mbps in 0.01f64..1000.0,
                                               deadline in 10.0f64..10_000.0,
                                               seed in any::<u64>()) {
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), 40, 2, 16);
        let params = RoundParams {
            deadline_s: deadline,
            failure_hazard_per_s: 0.0,
        };
        let out = execute_client_round(
            &snapshot(gflops, mbps, 1e12),
            &profile(),
            &cost,
            &params,
            seed,
        );
        if out.completed() {
            prop_assert!(out.total_s() <= deadline + 1e-6);
            prop_assert_eq!(out.deadline_overrun, 0.0);
        }
    }

    #[test]
    fn longer_deadlines_never_create_dropouts(gflops in 0.1f64..50.0,
                                              mbps in 0.5f64..200.0,
                                              d1 in 60.0f64..5000.0,
                                              d2 in 60.0f64..5000.0) {
        let (short, long) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let cost = RoundCost::vanilla(&Architecture::ResNet18.profile(), 40, 2, 16);
        let mk = |deadline| RoundParams {
            deadline_s: deadline,
            failure_hazard_per_s: 0.0,
        };
        let snap = snapshot(gflops, mbps, 1e12);
        let with_short = execute_client_round(&snap, &profile(), &cost, &mk(short), 7);
        let with_long = execute_client_round(&snap, &profile(), &cost, &mk(long), 7);
        if with_short.completed() {
            prop_assert!(with_long.completed(), "longer deadline caused a dropout");
        }
    }

    #[test]
    fn ledger_totals_stay_physical_under_arbitrary_outcomes(
        words in prop::collection::vec(any::<u64>(), 0..200)
    ) {
        let mut ledger = ResourceLedger::new();
        let mut expected_quarantined = 0u64;
        for &w in &words {
            let outcome = decode_outcome(w);
            if outcome.dropped == Some(DropReason::Quarantined) {
                expected_quarantined += 1;
            }
            ledger.record(&outcome);
        }
        let t = ledger.totals();
        prop_assert!(t.is_physical(), "non-physical totals: {t:?}");
        // Every recorded outcome is exactly one of completion / dropout.
        prop_assert_eq!(t.completions + t.dropouts, words.len() as u64);
        prop_assert_eq!(t.quarantined, expected_quarantined);
        prop_assert!(t.quarantined <= t.dropouts);
    }

    #[test]
    fn ledger_merge_preserves_physicality(a_words in prop::collection::vec(any::<u64>(), 0..60),
                                          b_words in prop::collection::vec(any::<u64>(), 0..60)) {
        let mut a = ResourceLedger::new();
        for &w in &a_words {
            a.record(&decode_outcome(w));
        }
        let mut b = ResourceLedger::new();
        for &w in &b_words {
            b.record(&decode_outcome(w));
        }
        a.merge(&b);
        let t = a.totals();
        prop_assert!(t.is_physical());
        prop_assert_eq!(t.completions + t.dropouts, (a_words.len() + b_words.len()) as u64);
    }

    #[test]
    fn fault_draws_respect_empty_and_full_plans(seed in any::<u64>(),
                                                round in 0u64..1000,
                                                client in 0u64..1000) {
        let empty = FaultPlan::none();
        prop_assert!(empty.draw(seed, round, client, 0).is_none());
        let mut certain = FaultPlan::none();
        certain.crash_rate = 1.0;
        prop_assert!(certain.draw(seed, round, client, 0).is_some());
        // Purity: the same coordinates always draw the same fault.
        let plan = FaultPlan::chaos();
        prop_assert_eq!(
            plan.draw(seed, round, client, 1),
            plan.draw(seed, round, client, 1)
        );
    }

    #[test]
    fn sampler_snapshots_are_physical(clients in 1usize..30, rounds in 1usize..40,
                                      seed in any::<u64>()) {
        let mut s = ResourceSampler::new(clients, InterferenceModel::paper_dynamic(), seed);
        for c in 0..clients {
            for r in 0..rounds {
                let snap = s.snapshot(c, r);
                prop_assert!(snap.effective_gflops >= 0.0 && snap.effective_gflops.is_finite());
                prop_assert!(snap.effective_mbps >= 0.0 && snap.effective_mbps.is_finite());
                prop_assert!((0.0..=1.0).contains(&snap.cpu_fraction));
                prop_assert!((0.0..=1.0).contains(&snap.mem_fraction));
                prop_assert!((0.0..=1.0).contains(&snap.net_fraction));
                prop_assert!((0.0..=1.0).contains(&snap.battery_fraction));
            }
        }
    }
}
