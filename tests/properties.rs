//! Property-based tests (proptest) over the core data structures and
//! invariants: quantization error bounds, lossless-codec round-trips,
//! masks, aggregation, partitioning, state discretization, and the
//! Q-table.

use proptest::prelude::*;

use float::accel::action::AccelAction;
use float::accel::compress::{compress_f32_update, decompress_f32_update, top_k_sparsify};
use float::accel::partial::{compute_multiplier, frozen_mask};
use float::accel::prune::{apply_mask, density, magnitude_mask};
use float::accel::quantize::{quantization_error_bound, quantize_dequantize};
use float::core::aggregate::{aggregate, PendingUpdate};
use float::data::partition::{dirichlet_partition, iid_partition, partition_skew};
use float::rl::binning::AdaptiveBinner;
use float::rl::{DeadlineLevel, GlobalState, LocalState, QKey, QTable};

fn small_f32() -> impl Strategy<Value = f32> {
    // Finite, moderate-magnitude floats — the range of model updates.
    (-100.0f32..100.0).prop_map(|v| if v.abs() < 1e-6 { 0.0 } else { v })
}

proptest! {
    #[test]
    fn quantization_error_within_bound(vals in prop::collection::vec(small_f32(), 1..200),
                                        bits in 2u32..=16) {
        let deq = quantize_dequantize(&vals, bits);
        // The analytical bound is half a grid step; allow a small slack
        // for f32 rounding in the scale and reconstruction arithmetic.
        let bound = quantization_error_bound(&vals, bits);
        for (a, b) in vals.iter().zip(&deq) {
            prop_assert!((a - b).abs() <= bound * (1.0 + 1e-2) + 1e-6,
                "err {} > bound {}", (a - b).abs(), bound);
        }
    }

    #[test]
    fn quantization_preserves_zero_and_sign(vals in prop::collection::vec(small_f32(), 1..100)) {
        let deq = quantize_dequantize(&vals, 8);
        for (a, b) in vals.iter().zip(&deq) {
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0);
            } else if b.abs() > 0.0 {
                prop_assert_eq!(a.signum(), b.signum());
            }
        }
    }

    #[test]
    fn lossless_codec_roundtrips(vals in prop::collection::vec(small_f32(), 0..300)) {
        let compressed = compress_f32_update(&vals);
        let back = decompress_f32_update(&compressed);
        prop_assert_eq!(back, Some(vals));
    }

    #[test]
    fn lossless_codec_never_blows_up(vals in prop::collection::vec(small_f32(), 0..300)) {
        let compressed = compress_f32_update(&vals);
        // Worst case: 4 raw planes + 4 tag bytes + 4 header bytes.
        prop_assert!(compressed.len() <= vals.len() * 4 + 8);
    }

    #[test]
    fn prune_mask_density_matches_fraction(vals in prop::collection::vec(small_f32(), 10..500),
                                           fraction in 0.0f64..=1.0) {
        let mask = magnitude_mask(&vals, fraction);
        let d = density(&mask);
        prop_assert!((d - (1.0 - fraction)).abs() < 2.0 / vals.len() as f64 + 1e-9,
            "density {} for fraction {}", d, fraction);
    }

    #[test]
    fn pruned_values_are_never_larger_than_survivors(
        vals in prop::collection::vec(small_f32(), 10..200)) {
        let mask = magnitude_mask(&vals, 0.5);
        let max_pruned = vals.iter().zip(&mask)
            .filter(|(_, &keep)| !keep)
            .map(|(v, _)| v.abs())
            .fold(0.0f32, f32::max);
        let min_kept = vals.iter().zip(&mask)
            .filter(|(_, &keep)| keep)
            .map(|(v, _)| v.abs())
            .fold(f32::INFINITY, f32::min);
        prop_assert!(max_pruned <= min_kept + 1e-6,
            "pruned {} > kept {}", max_pruned, min_kept);
    }

    #[test]
    fn apply_mask_zeroes_exactly_pruned(vals in prop::collection::vec(small_f32(), 1..100),
                                        fraction in 0.0f64..=1.0) {
        let mask = magnitude_mask(&vals, fraction);
        let mut out = vals.clone();
        apply_mask(&mut out, &mask);
        for ((o, v), &keep) in out.iter().zip(&vals).zip(&mask) {
            if keep {
                prop_assert_eq!(o, v);
            } else {
                prop_assert_eq!(*o, 0.0);
            }
        }
    }

    #[test]
    fn frozen_mask_fraction_and_determinism(n in 1usize..2000,
                                            fraction in 0.0f64..=1.0,
                                            seed in any::<u64>()) {
        let a = frozen_mask(n, fraction, seed);
        let b = frozen_mask(n, fraction, seed);
        prop_assert_eq!(&a, &b);
        let frozen = a.iter().filter(|&&f| f).count();
        let expected = (n as f64 * fraction).round() as usize;
        prop_assert_eq!(frozen, expected);
    }

    #[test]
    fn compute_multiplier_is_monotone_and_bounded(f1 in 0.0f64..=1.0, f2 in 0.0f64..=1.0) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(compute_multiplier(lo) >= compute_multiplier(hi));
        prop_assert!(compute_multiplier(f1) <= 1.0);
        prop_assert!(compute_multiplier(f1) >= 1.0 / 3.0 - 1e-9);
    }

    #[test]
    fn top_k_keeps_exactly_k(vals in prop::collection::vec(small_f32(), 1..300),
                             keep in 0.01f64..=1.0) {
        let s = top_k_sparsify(&vals, keep);
        let expect = ((vals.len() as f64 * keep).round() as usize).clamp(1, vals.len());
        prop_assert_eq!(s.indices.len(), expect);
        // Indices are sorted and unique.
        for w in s.indices.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Dense reconstruction matches kept values.
        let dense = s.to_dense();
        for (&i, &v) in s.indices.iter().zip(&s.values) {
            prop_assert_eq!(dense[i as usize], v);
        }
    }

    #[test]
    fn aggregation_stays_in_convex_hull(deltas in prop::collection::vec(small_f32(), 1..20),
                                        samples in prop::collection::vec(1usize..1000, 1..20)) {
        // One-dimensional model: the aggregated delta must lie within
        // [min, max] of the individual deltas (convexity of weighted mean).
        let n = deltas.len().min(samples.len());
        let updates: Vec<PendingUpdate> = (0..n)
            .map(|i| PendingUpdate {
                client: i,
                delta: vec![deltas[i]],
                samples: samples[i],
                staleness: 0,
            })
            .collect();
        let mut global = vec![0.0f32];
        aggregate(&mut global, &updates);
        let lo = deltas[..n].iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = deltas[..n].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(global[0] >= lo - 1e-4 && global[0] <= hi + 1e-4,
            "aggregate {} outside [{}, {}]", global[0], lo, hi);
    }

    #[test]
    fn dirichlet_partition_counts_are_positive(clients in 1usize..50,
                                               classes in 2usize..20,
                                               alpha in 0.01f64..10.0,
                                               seed in any::<u64>()) {
        let parts = dirichlet_partition(clients, classes, 50, alpha, seed);
        prop_assert_eq!(parts.len(), clients);
        for p in &parts {
            prop_assert_eq!(p.len(), classes);
            prop_assert!(p.iter().sum::<usize>() >= 1);
        }
    }

    #[test]
    fn iid_partition_has_low_skew(clients in 5usize..30, seed in any::<u64>()) {
        let parts = iid_partition(clients, 10, 500, seed);
        prop_assert!(partition_skew(&parts) < 0.1);
    }

    #[test]
    fn local_state_index_bijection(cpu in 0.0f64..=1.0, mem in 0.0f64..=1.0, net in 0.0f64..=1.0) {
        let s = LocalState::from_fractions(cpu, mem, net);
        prop_assert!(s.index() < LocalState::COUNT);
    }

    #[test]
    fn deadline_levels_are_monotone(a in 0.0f64..2.0, b in 0.0f64..2.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(DeadlineLevel::from_overrun(lo) <= DeadlineLevel::from_overrun(hi));
    }

    #[test]
    fn qtable_moving_average_is_bounded(rewards in prop::collection::vec(0.0f64..=1.0, 1..100),
                                        lr in 0.01f64..=1.0) {
        let mut t = QTable::new(2);
        let key = QKey {
            global: GlobalState::from_raw(20, 5, 30),
            local: LocalState::from_fractions(0.5, 0.5, 0.5),
            hf: None,
        };
        for &r in &rewards {
            t.update(key, 0, r, r, lr, 0.0, (0.0, 0.0));
        }
        let e = t.row(&key).expect("row")[0];
        prop_assert!(e.q_participation >= -1e-9 && e.q_participation <= 1.0 + 1e-9);
        prop_assert!(e.q_accuracy >= -1e-9 && e.q_accuracy <= 1.0 + 1e-9);
    }

    #[test]
    fn qtable_json_roundtrip(visits in 1u64..30) {
        let mut t = QTable::new(4);
        let key = QKey {
            global: GlobalState::from_raw(8, 5, 10),
            local: LocalState::from_fractions(0.2, 0.8, 0.4),
            hf: Some(DeadlineLevel::Moderate),
        };
        for i in 0..visits {
            t.update(key, (i % 4) as usize, 0.7, 0.2, 0.5, 0.0, (0.0, 0.0));
        }
        let back = QTable::from_json(&t.to_json()).expect("roundtrip");
        for (a, b) in back.row(&key).expect("row").iter().zip(t.row(&key).expect("row")) {
            prop_assert_eq!(a.visits, b.visits);
            prop_assert!((a.q_participation - b.q_participation).abs() < 1e-12);
            prop_assert!((a.q_accuracy - b.q_accuracy).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_binner_bins_in_range(samples in prop::collection::vec(0.0f64..100.0, 10..500),
                                     bins in 1usize..10,
                                     query in -10.0f64..110.0) {
        let b = AdaptiveBinner::fit(&samples, bins);
        prop_assert!(b.bin(query) < b.bins());
    }
}

#[test]
fn action_aggressiveness_covers_catalogue() {
    use float::accel::ActionCatalogue;
    // Non-property companion: the paper catalogue spans mild-to-extreme.
    let cat = ActionCatalogue::paper();
    let aggs: Vec<f64> = cat.iter().map(AccelAction::aggressiveness).collect();
    assert!(aggs.iter().cloned().fold(f64::INFINITY, f64::min) <= 0.25);
    assert!(aggs.iter().cloned().fold(0.0, f64::max) >= 0.75);
}
