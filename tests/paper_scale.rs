//! Paper-scale smoke test: the full 200-client / 30-per-round / 300-round
//! configuration of §6.1 runs end to end and shows the headline FLOAT
//! effect. Ignored by default (several minutes); run with
//! `cargo test --release --test paper_scale -- --ignored`.

use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
use float::data::Task;

#[test]
#[ignore = "paper-scale run takes several minutes; run with --ignored"]
fn paper_scale_femnist_fedavg_float_vs_vanilla() {
    let vanilla = Experiment::new(ExperimentConfig::paper_e2e(
        Task::Femnist,
        SelectorChoice::FedAvg,
        AccelMode::Off,
        300,
    ))
    .expect("paper config valid")
    .run();
    let float = Experiment::new(ExperimentConfig::paper_e2e(
        Task::Femnist,
        SelectorChoice::FedAvg,
        AccelMode::Rlhf,
        300,
    ))
    .expect("paper config valid")
    .run();

    eprintln!(
        "paper-scale vanilla: acc {:.4}, dropouts {}, wasted compute {:.0} h",
        vanilla.accuracy.mean, vanilla.total_dropouts, vanilla.resources.wasted_compute_h
    );
    eprintln!(
        "paper-scale FLOAT:   acc {:.4}, dropouts {}, wasted compute {:.0} h",
        float.accuracy.mean, float.total_dropouts, float.resources.wasted_compute_h
    );

    assert!(float.total_dropouts < vanilla.total_dropouts);
    assert!(float.resources.wasted_compute_h < vanilla.resources.wasted_compute_h);
    assert!(float.accuracy.mean > vanilla.accuracy.mean - 0.01);
}
