//! # FLOAT — Federated Learning Optimizations with Automated Tuning
//!
//! A from-scratch Rust reproduction of *FLOAT: Federated Learning
//! Optimizations with Automated Tuning* (Khan et al., EuroSys 2024).
//!
//! FLOAT attaches to an existing federated-learning system and, every
//! round, picks a per-client *acceleration action* — quantization (8/16
//! bit), magnitude pruning (25/50/75 %), or partial training (25/50/75 %)
//! — using a multi-objective Q-learning agent with human feedback. The
//! goal is to keep resource-constrained clients from missing deadlines or
//! dropping out, which simultaneously improves final accuracy and stops
//! compute/communication/memory from being wasted on failed rounds.
//!
//! This crate is a facade re-exporting the workspace's subsystems:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `float-tensor` | dense tensors, MLP proxy model, SGD |
//! | [`data`] | `float-data` | synthetic tasks, Dirichlet partitioning |
//! | [`models`] | `float-models` | architecture cost descriptors |
//! | [`traces`] | `float-traces` | network/compute/availability traces |
//! | [`sim`] | `float-sim` | round execution, dropout logic, ledger |
//! | [`accel`] | `float-accel` | acceleration techniques |
//! | [`rl`] | `float-rl` | the Q-learning RLHF agent |
//! | [`obs`] | `float-obs` | deterministic telemetry: events, metrics, digests |
//! | [`profile`] | `float-profile` | online client profiling: EWMA/quantile/reliability estimators |
//! | [`select`] | `float-select` | FedAvg/Oort/REFL/FedBuff baselines |
//! | [`core`] | `float-core` | the FLOAT runtime and metrics |
//! | [`sweep`] | `float-sweep` | concurrent sweep orchestrator (grid + successive halving) |
//! | [`vfl`] | `float-vfl` | vertical-FL substrate (split training) |
//!
//! # Quickstart
//!
//! ```
//! use float::core::{AccelMode, Experiment, ExperimentConfig, SelectorChoice};
//!
//! // A small run: FedAvg selection with full FLOAT (RLHF) acceleration.
//! let config = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 5);
//! let report = Experiment::new(config).expect("valid config").run();
//! assert_eq!(report.rounds.len(), 5);
//! println!(
//!     "mean accuracy {:.3}, dropouts {}",
//!     report.accuracy.mean, report.total_dropouts
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use float_accel as accel;
pub use float_core as core;
pub use float_data as data;
pub use float_models as models;
pub use float_obs as obs;
pub use float_profile as profile;
pub use float_rl as rl;
pub use float_select as select;
pub use float_sim as sim;
pub use float_sweep as sweep;
pub use float_tensor as tensor;
pub use float_traces as traces;
pub use float_vfl as vfl;
