//! A std-only scoped worker pool for the parallel attempt phase.
//!
//! The round runtime is a two-phase engine: a *parallel attempt phase*
//! computes every selected client's resource outcome, local training, and
//! wire transform as a pure function of shared read-only state, and a
//! *sequential commit phase* applies the mutations (agent feedback,
//! error-feedback residuals, ledger, report bookkeeping) in client order.
//! This module provides the fan-out primitive for the first phase:
//! [`parallel_map_with`], built on [`std::thread::scope`] — no external
//! crates, no unsafe code.
//!
//! Determinism is structural, not accidental: workers pull task *indices*
//! from a shared atomic counter, send `(index, result)` pairs over a
//! channel, and the caller reassembles results **in task order**. Which
//! worker computes which task — and in what wall-clock order — cannot
//! influence the output, because each task is a pure function of its
//! input plus a per-worker scratch buffer whose contents are fully
//! overwritten before use.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Map `f` over `items`, fanning work out over `scratches.len()` worker
/// threads, and return the results **in item order**.
///
/// Each worker owns one scratch value for its lifetime; `f` receives the
/// worker's scratch and a borrowed item. The scratch lets workers reuse
/// expensive buffers (model clones, parameter vectors) across items
/// without cross-worker sharing. For scratch-free maps pass `&mut [(); n]`.
///
/// Falls back to a plain sequential loop (no threads spawned) when there
/// is at most one worker or at most one item, so single-threaded runs pay
/// zero synchronization cost.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers; a panicking
/// worker aborts the map).
pub fn parallel_map_with<S, T, R, F>(scratches: &mut [S], items: &[T], f: F) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, &T) -> R + Sync,
{
    assert!(!scratches.is_empty(), "need at least one worker scratch");
    let workers = scratches.len().min(items.len());
    if workers <= 1 {
        let scratch = &mut scratches[0];
        return items.iter().map(|t| f(scratch, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        for scratch in scratches[..workers].iter_mut() {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(scratch, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index produces exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..101).collect();
        let mut scratches = vec![(); 4];
        let out = parallel_map_with(&mut scratches, &items, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches_parallel() {
        let items: Vec<u64> = (0..37).collect();
        let mut one = vec![0u64; 1];
        let mut many = vec![0u64; 8];
        let f = |s: &mut u64, &x: &u64| {
            *s = x; // scratch is per-item state, fully overwritten
            *s * *s + 1
        };
        assert_eq!(
            parallel_map_with(&mut one, &items, f),
            parallel_map_with(&mut many, &items, f)
        );
    }

    #[test]
    fn scratches_are_reused_not_shared() {
        // Each worker's scratch accumulates; total across scratches must
        // equal the item count even though per-worker splits vary.
        let items: Vec<usize> = (0..64).collect();
        let mut scratches = vec![0usize; 3];
        let _ = parallel_map_with(&mut scratches, &items, |s, _| *s += 1);
        assert_eq!(scratches.iter().sum::<usize>(), 64);
    }

    #[test]
    fn empty_items_is_fine() {
        let mut scratches = vec![(); 2];
        let out: Vec<u8> = parallel_map_with(&mut scratches, &[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }
}
