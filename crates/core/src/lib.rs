//! `float-core` — the FLOAT framework: configuration, the synchronous and
//! asynchronous FL runtimes, aggregation, per-client acceleration driven by
//! the RLHF agent (or the heuristic / no-op baselines), and the paper's
//! evaluation metrics.
//!
//! The runtime is deliberately layered the way the paper describes FLOAT's
//! integration story: a [`ClientSelector`] (any of the four baselines)
//! picks the cohort, and FLOAT wraps the *execution* of each selected
//! client — choosing an acceleration action from the client's resource
//! state, re-costing the round, training the proxy model with the
//! corresponding transform, and feeding the outcome back to the agent.
//! Turning FLOAT off reduces the runtime to a faithful FedScale-style
//! baseline simulator; nothing about selection or aggregation changes.
//!
//! [`ClientSelector`]: float_select::ClientSelector

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod optim;
pub mod runtime;
pub mod trial;

pub use config::{AccelMode, ExperimentConfig, SelectorChoice};
pub use float_data::ShardCacheStats;
pub use metrics::{AccuracySummary, ExperimentReport, RoundRecord, TechniqueStats};
pub use optim::{ServerOptimConfig, ServerOptimizer, ServerOptimizerChoice};
pub use runtime::Experiment;
pub use trial::{run_trial, run_trial_traced, SharedPopulation};
