//! The FLOAT experiment runtime: wires datasets, traces, selection,
//! acceleration, simulation, training, and aggregation into one
//! deterministic run (Algorithm 1 of the paper plus the surrounding FL
//! loop).

use std::collections::{BinaryHeap, HashMap};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

use rand::seq::SliceRandom;

use float_accel::apply::transform_update;
use float_accel::{apply_action_protected, AccelAction, ActionCatalogue, ErrorFeedback};
use float_data::{ShardCache, ShardCacheStats, ShardSpec, SharedShardCache};
use float_models::RoundCost;
use float_obs::metrics::{
    ESTIMATE_ERROR_BUCKETS, LATENCY_BUCKETS_S, PAYLOAD_BUCKETS_BYTES, UTILIZATION_BUCKETS,
};
use float_obs::{Collector, Event, OutcomeKind, Phase, Recorder, Telemetry};
use float_profile::{
    ClientEstimate, ClientProfiler, ColdStartPolicy, Observation, ObservedOutcome, ProfilerStats,
};
use float_rl::{AgentConfig, DeadlineLevel, GlobalState, LocalState, RlhfAgent};
use float_select::{
    ClientSelector, FedAvgSelector, FedBuffSelector, HeuristicPolicy, OortSelector, ReflSelector,
    SelectionFeedback, TiflSelector,
};
use float_sim::{
    apply_outcome_fault, estimate_round_time_s, execute_client_round, ClientRoundOutcome,
    DropReason, FaultKind, ResourceLedger, RoundParams, SimClock,
};
use float_tensor::rng::{seed_rng, split_seed};
use float_tensor::{Dataset, DriftOptions, Mlp, MlpConfig, Sgd};
use float_traces::{AvailabilityStats, DeviceProfile, ResourceSampler, ResourceSnapshot};

use crate::aggregate::{dedup_updates, PendingUpdate};
use crate::config::{AccelMode, ExperimentConfig, SelectorChoice};
use crate::engine::parallel_map_with;
use crate::metrics::{AccuracySummary, ExperimentReport, RoundRecord};
use crate::optim::{ServerOptimizer, ServerOptimizerChoice};
use crate::trial::SharedPopulation;

/// Hidden width of the proxy model used for the accuracy side of the
/// simulation. Kept modest so full 300-round runs stay fast.
const PROXY_HIDDEN: usize = 128;

/// A fully assembled experiment, ready to run.
pub struct Experiment {
    config: ExperimentConfig,
    /// Lazy per-client shards behind a bounded LRU cache (standalone
    /// runs) or a sweep-wide shared store (trials built through
    /// [`Experiment::new_shared`]). Client datasets are derived on first
    /// touch (a pure function of `(seed, client)` — bit-identical to
    /// eager generation, pinned by the `lazy_shards` proptest), so
    /// training-data memory is O(cache capacity), not O(population).
    data: ShardSource,
    sampler: ResourceSampler,
    selector: Box<dyn ClientSelector + Send + Sync>,
    catalogue: ActionCatalogue,
    agent: Option<RlhfAgent>,
    heuristic: Option<HeuristicPolicy>,
    global_model: Mlp,
    /// Exponential moving average of each client's *vanilla-round*
    /// deadline overrun — the "deadline difference" human-feedback signal
    /// (Table 1). Tracking the vanilla estimate rather than the last
    /// accelerated outcome keeps the signal stable: a chronically slow
    /// client that acceleration rescued still reads as slow. Sparse
    /// (absent ⇒ 0.0, the historical initial value): only ever-planned
    /// clients carry state, so memory is O(participants), not
    /// O(population).
    hf_overrun_ema: HashMap<usize, f64>,
    /// Per-client residual memory for error-feedback compression
    /// (engaged when the extended catalogue's top-k action is chosen).
    /// Sparse like `hf_overrun_ema` (absent ⇒ a fresh empty residual).
    error_feedback: HashMap<usize, ErrorFeedback>,
    /// Prune-protected parameter mask of the proxy model (biases +
    /// classifier layer), computed once.
    protected: Vec<bool>,
    clock: SimClock,
    ledger: ResourceLedger,
    report: ExperimentReport,
    /// Wall-clock backoff accumulated by stall retries in the current
    /// synchronous round; drained into the round's wall time.
    round_backoff_s: f64,
    /// Telemetry collector (`ObsConfig::off()` by default). All events are
    /// recorded from the sequential plan/commit phases in cohort order, so
    /// enabling telemetry neither changes results nor breaks the
    /// bit-identical-across-thread-counts guarantee.
    obs: Collector,
    /// Reusable eligibility buffer, refilled each round — at population
    /// scale the eligible list is the largest per-round structure, so it
    /// is allocated once, not per round.
    eligible_buf: Vec<usize>,
    /// Reusable cohort buffer the selector writes into each round.
    cohort_buf: Vec<usize>,
    /// Clients whose accuracy defines the report
    /// ([`ExperimentConfig::eval_sample`]). Empty ⇒ the full population.
    /// Drawn once from its own seed stream and kept in ascending order, so
    /// `eval_sample == num_clients` is bit-identical to full eval.
    eval_set: Vec<usize>,
    /// Exact eligible count of the current round under candidate pooling
    /// (`None` on full-sweep runs, where `eligible_buf.len()` already *is*
    /// the exact count). Feeds `Event::RoundStart` and
    /// `RoundRecord::eligible` — never the pool size.
    record_eligible: Option<usize>,
    /// Server-side aggregation optimizer (FedAvg / FedAvgM / FedAdam /
    /// FedYogi). Its moment buffers advance only inside the sequential
    /// aggregation step of either engine, so optimizer state — like every
    /// other committed state — is identical for any worker-thread count.
    server_optim: ServerOptimizer,
    /// SCAFFOLD server control variate `c` (empty when SCAFFOLD is off).
    /// Read by the parallel execute phase, mutated only at commit time.
    scaffold_c: Vec<f32>,
    /// SCAFFOLD per-client control variates `c_i`. Sparse like
    /// `hf_overrun_ema` (absent ⇒ all-zero variate), so memory is
    /// O(participants), not O(population).
    scaffold_ci: HashMap<usize, Vec<f32>>,
    /// Persistent per-worker evaluation models: clones of the global
    /// architecture re-parameterized once per evaluation pass via
    /// [`Mlp::set_params`]. Reusing them keeps each worker's forward
    /// scratch *and* packed-panel cache warm across the whole eval sweep —
    /// `set_params` bumps the weight stamps, so the first client repacks
    /// and every later client replays the cached panels.
    eval_models: Vec<Mlp>,
    /// Reusable flat-parameter buffer for re-parameterizing `eval_models`.
    eval_parameters: Vec<f32>,
    /// In-flight background evaluation under pipelined rounds: the report
    /// record awaiting its `mean_accuracy` plus the thread computing it.
    /// Resolved at the next round's bookkeeping (or at finalization), so
    /// at most one evaluation is ever outstanding.
    pending_eval: Option<PendingEval>,
    /// Online client profiler ([`ExperimentConfig::profiling`], DESIGN.md
    /// §17): the commit-phase fold of observed outcomes into per-client
    /// estimates that replace the trace oracle in selection and in the
    /// accel decision features. `None` with profiling off — the
    /// byte-identical historical path. Mutated only in the sequential
    /// commit phase (slot order) and read only in the sequential
    /// plan/select phases, so profiler state — and everything selection
    /// derives from it — is bit-identical for any worker-thread count.
    profiler: Option<ClientProfiler>,
}

/// A background evaluation pass launched by a pipelined round. The thread
/// owns clones of everything it reads (model, shard spec, client list), so
/// it cannot observe — or perturb — the next round's mutations; its result
/// is a pure function of the post-aggregation parameters it was given.
struct PendingEval {
    /// Index into `report.rounds` whose `mean_accuracy` the result fills.
    record: usize,
    handle: thread::JoinHandle<Vec<f64>>,
}

/// The frozen inputs of one client attempt, produced by the sequential
/// *plan* phase. Everything the parallel *execute* phase needs is captured
/// here by value, so execution is a pure function of `(global params,
/// task)` plus read-only experiment state. `Clone` so a stall retry can
/// re-execute the same plan under a fresh attempt number.
#[derive(Clone)]
struct AttemptTask {
    client: usize,
    staleness: u64,
    /// Position in the launching cohort. Only telemetry consumes it (the
    /// per-worker recorder merge orders samples by `(slot, attempt)`).
    slot: u64,
    /// Which delivery attempt this is (0 for the first; stall retries
    /// bump it so the fault schedule redraws).
    attempt: u32,
    snap: ResourceSnapshot,
    profile: DeviceProfile,
    action: AccelAction,
    base_cost: RoundCost,
    shard_len: usize,
    /// The client's train shard, pinned by the sequential plan phase via
    /// the shard cache so the parallel execute phase never touches the
    /// cache (cheap `Arc` clone; eviction cannot invalidate it).
    train: Arc<Dataset>,
    /// The client's held-out test shard, pinned like `train`.
    test: Arc<Dataset>,
    /// Agent-state inputs captured at decision time, replayed verbatim to
    /// the agent's feedback call in the commit phase.
    global: GlobalState,
    local: LocalState,
    hf: DeadlineLevel,
    /// Snapshot of the client's error-feedback residual, taken when the
    /// attempt is planned (or re-planned for a retry). Captured by value so
    /// a pipelined execute phase — which runs concurrently with earlier
    /// slots' commits — reads exactly the state a sequential execute phase
    /// would have. `Some` only for the top-k compression action.
    error_feedback: Option<ErrorFeedback>,
    /// Snapshot of the client's SCAFFOLD control variate `c_i`, captured
    /// like `error_feedback` (SCAFFOLD runs only; an empty vec means the
    /// client has no variate yet).
    scaffold_ci: Option<Vec<f32>>,
}

/// The side-effect-free result of the parallel *execute* phase, consumed
/// by the sequential *commit* phase.
struct AttemptExec {
    outcome: ClientRoundOutcome,
    utility: f64,
    improvement: f64,
    update: Option<PendingUpdate>,
    /// Updated error-feedback residual (top-k compression only); written
    /// back to the experiment in the commit phase, in client order.
    error_feedback: Option<ErrorFeedback>,
    /// An injected duplicate-delivery fault hit this attempt: the
    /// transport will hand the aggregator the update twice.
    duplicate: bool,
    /// The fault (if any) the schedule injected into this attempt, carried
    /// back so the sequential commit phase can emit its telemetry event.
    fault: Option<FaultKind>,
    /// Refreshed SCAFFOLD client control variate (`c_i⁺`, SCAFFOLD runs
    /// only); folded into the server variate and stored at commit time,
    /// in cohort order.
    scaffold_ci: Option<Vec<f32>>,
    /// The executed plan's cost model (post-acceleration), carried back so
    /// the commit phase can invert the simulator's phase formulas into
    /// witnessed-throughput observations for the online profiler.
    cost: RoundCost,
}

/// Per-worker reusable buffers for the execute phase. Contents are fully
/// overwritten before each use, so scratch reuse cannot leak state between
/// attempts — it only recycles allocations.
#[derive(Default)]
struct WorkerScratch {
    /// Lazily created clone of the global model, re-parameterized per
    /// attempt via [`Mlp::set_params`].
    local: Option<Mlp>,
    /// Flattened-parameter readback buffer.
    params: Vec<f32>,
    /// Update-delta buffer.
    delta: Vec<f32>,
    /// Telemetry sample buffer; drained into the central registry by the
    /// commit phase in `(slot, attempt)` order, so which worker recorded a
    /// sample never matters.
    recorder: Recorder,
}

/// Owned snapshot of every piece of experiment state the execute phase
/// reads. Both engines' attempt batches execute through one of these: the
/// sequential engine builds it right before the fan-out, and the pipelined
/// engine builds it before planning starts so worker threads never borrow
/// the `Experiment` at all — the main thread is then free to keep planning
/// and committing (both `&mut self`) while workers run. The snapshots are
/// what make streamed commits safe: a commit may mutate `scaffold_c` or a
/// residual while later slots are still executing, but those slots read
/// the values frozen here (and in their [`AttemptTask`]), which are
/// exactly the values a fully sequential round would have read.
struct ExecuteCtx {
    config: ExperimentConfig,
    protected: Vec<bool>,
    global_params: Vec<f32>,
    /// Architecture template for workers that have not yet materialized
    /// their scratch model (parameters are overwritten per attempt).
    model: Mlp,
    /// SCAFFOLD server control variate at plan time (empty when off).
    scaffold_c: Vec<f32>,
    obs_enabled: bool,
}

impl ExecuteCtx {
    /// Phase 2 — *execute*: simulate the round and, on completion, run the
    /// client's real local training and wire transform. A pure function of
    /// `(ctx, task)` — all randomness comes from seeds derived per
    /// `(round, client, attempt)` and the worker scratch is fully
    /// overwritten before use, so the result is independent of which
    /// worker runs it, in what order, and of any commit that has already
    /// landed for an earlier slot.
    fn execute(
        &self,
        round: usize,
        task: &AttemptTask,
        scratch: &mut WorkerScratch,
    ) -> AttemptExec {
        let global_params = &self.global_params[..];
        let plan = apply_action_protected(
            task.action,
            task.base_cost,
            global_params,
            split_seed(self.config.seed, (round as u64) << 20 | task.client as u64),
            Some(&self.protected),
        );
        let round_params = RoundParams {
            deadline_s: self.config.deadline_s,
            failure_hazard_per_s: self.config.failure_hazard_per_s,
        };
        let mut outcome = execute_client_round(
            &task.snap,
            &task.profile,
            &plan.cost,
            &round_params,
            split_seed(
                self.config.seed,
                0xE0 << 56 | (round as u64) << 20 | task.client as u64,
            ),
        );
        // Fig. 3 "no dropouts" counterfactual: every client that started
        // finishes, no matter how long it took.
        if self.config.assume_no_dropouts && outcome.dropped != Some(DropReason::Unavailable) {
            outcome.dropped = None;
        }
        // Injected faults land after the counterfactual override: the ND
        // analysis removes *benign* dropouts, not adversarial ones. The
        // draw is a pure function of (seed, round, client, attempt), so
        // it is identical no matter which worker executes the attempt.
        let fault = self.config.fault_plan.draw(
            self.config.seed,
            round as u64,
            task.client as u64,
            task.attempt,
        );
        if let Some(kind) = fault {
            if !kind.affects_payload() {
                apply_outcome_fault(&mut outcome, kind, &round_params);
            }
        }
        if !outcome.completed() {
            if self.obs_enabled {
                scratch
                    .recorder
                    .inc(task.slot, task.attempt, "attempts_executed", 1);
            }
            return AttemptExec {
                outcome,
                utility: 0.0,
                improvement: 0.0,
                update: None,
                error_feedback: None,
                duplicate: false,
                fault,
                scaffold_ci: None,
                cost: plan.cost,
            };
        }

        // Real local training with the plan's transform hooks. The worker
        // scratch supplies the local model and parameter buffers, reused
        // across attempts and rounds; shards were pinned by the plan phase
        // (Arc), so execution never touches the shard cache.
        let shard = &*task.train;
        let test = &*task.test;
        let local = scratch.local.get_or_insert_with(|| self.model.clone());
        local
            .set_params(global_params)
            .expect("scratch model shares the global architecture");
        let before = local.evaluate_mut(test).accuracy as f64;
        let mut opt = Sgd::new(self.config.learning_rate);
        let mut last_loss = 0.0f32;
        // Drift corrections (FedProx / SCAFFOLD) read the control variates
        // snapshotted at plan time (ctx + task), so every attempt in a
        // batch sees one consistent view per round regardless of engine or
        // commit streaming. With both corrections off this is the
        // historical training path bit for bit (the default
        // `DriftOptions` skips the correction branches).
        let client_ci: &[f32] = task.scaffold_ci.as_deref().unwrap_or(&[]);
        let drift = DriftOptions {
            prox: (self.config.prox_mu > 0.0)
                .then_some((self.config.prox_mu as f32, global_params)),
            scaffold: self
                .config
                .scaffold
                .then_some((self.scaffold_c.as_slice(), client_ci)),
        };
        for e in 0..self.config.local_epochs {
            last_loss = local.train_epoch_corrected(
                shard,
                self.config.batch_size,
                &mut opt,
                split_seed(
                    self.config.seed,
                    (round as u64) << 24 | (task.client as u64) << 8 | e as u64,
                ),
                &plan.train_options,
                &drift,
            );
        }
        let after = local.evaluate_mut(test).accuracy as f64;
        // Update delta, computed in place into the scratch buffer.
        local.params_into(&mut scratch.params);
        scratch.delta.clear();
        scratch
            .delta
            .extend(scratch.params.iter().zip(global_params).map(|(l, g)| l - g));
        // SCAFFOLD client-variate refresh (option II of the paper):
        // c_i⁺ = c_i − c + (x − y_i)/(K·η_l) = c_i − c − Δ_i/(K·η_l),
        // computed from the *raw* local delta before any wire transform.
        // The commit phase folds it into the server variate sequentially.
        let scaffold_ci = if self.config.scaffold {
            let steps = self.config.local_epochs * task.shard_len.div_ceil(self.config.batch_size);
            if steps == 0 {
                None
            } else {
                let scale = 1.0 / (steps as f32 * self.config.learning_rate);
                let ci_new: Vec<f32> = (0..scratch.delta.len())
                    .map(|j| {
                        let ci = client_ci.get(j).copied().unwrap_or(0.0);
                        ci - self.scaffold_c[j] - scratch.delta[j] * scale
                    })
                    .collect();
                Some(ci_new)
            }
        } else {
            None
        };
        // Apply the wire transform the acceleration dictates (quantization
        // grid, pruning zeros, sparsification). The attempt plan already
        // carries the masks — they depend only on the action, the global
        // parameters, and the seed, so no second plan is needed.
        let (mut delta, error_feedback) = if task.action == AccelAction::TopK10 {
            // Sparsified uploads carry per-client error feedback so the
            // untransmitted mass is not lost (see float_accel::feedback).
            // Work on the residual snapshotted into the task; the commit
            // phase writes the refreshed copy back in client order.
            let mut ef = task.error_feedback.clone().unwrap_or_default();
            let d = ef.compress(&scratch.delta, 0.10);
            (d, Some(ef))
        } else {
            (transform_update(task.action, &scratch.delta, &plan), None)
        };
        // A corrupt-payload fault poisons the wire delta with non-finite
        // values; server-side validation must catch these in the commit
        // phase before they reach aggregation.
        if fault == Some(FaultKind::CorruptPayload) && !delta.is_empty() {
            let mid = delta.len() / 2;
            delta[0] = f32::NAN;
            delta[mid] = f32::INFINITY;
        }
        // Oort's statistical utility: loss magnitude scaled by dataset size.
        let utility = f64::from(last_loss.max(0.0)) * (shard.len() as f64).sqrt();
        // Per-round accuracy improvements are a few percent at most, while
        // participation success is binary; normalize the accuracy objective
        // to a comparable [0, 1] range (one decile of local accuracy gain
        // saturates it) so the multi-objective trade-off stays live rather
        // than participation-dominated.
        let improvement = ((after - before) * 10.0).clamp(0.0, 1.0);
        if self.obs_enabled {
            // Samples are simulated quantities keyed by cohort slot, so the
            // merged registry is identical for any worker-thread count.
            let r = &mut scratch.recorder;
            r.inc(task.slot, task.attempt, "attempts_executed", 1);
            r.observe(
                task.slot,
                task.attempt,
                "client_latency_s",
                LATENCY_BUCKETS_S,
                outcome.total_s(),
            );
            r.observe(
                task.slot,
                task.attempt,
                "upload_bytes",
                PAYLOAD_BUCKETS_BYTES,
                (delta.len() * std::mem::size_of::<f32>()) as f64,
            );
        }
        AttemptExec {
            outcome,
            utility,
            improvement,
            update: Some(PendingUpdate {
                client: task.client,
                delta,
                samples: task.shard_len,
                staleness: task.staleness,
            }),
            error_feedback,
            duplicate: fault == Some(FaultKind::DuplicateDelivery),
            fault,
            scaffold_ci,
            cost: plan.cost,
        }
    }
}

/// Resource-availability fraction assumed for every component under the
/// `Pessimistic` cold-start policy (a quarter of peak — a deliberately
/// conservative device until proven otherwise).
const PESSIMISTIC_FRACTION: f64 = 0.25;

/// Per-component `(cpu, mem, net)` availability fractions derivable from
/// one profiled estimate; `None` where the estimate has no evidence yet.
/// Compute capability is witnessed GFLOP/s relative to the device's
/// spec-sheet peak (the one static rating a real deployment does know);
/// network is witnessed throughput relative to the client's best-ever
/// link; memory is the complement of the Beta-mean OOM probability.
fn fraction_components(
    est: &ClientEstimate,
    peak_gflops: f64,
) -> (Option<f64>, Option<f64>, Option<f64>) {
    let cpu = est
        .compute_gflops
        .map(|g| (g / peak_gflops.max(1e-9)).clamp(0.0, 1.0));
    let mem = (est.observations > 0).then(|| (1.0 - est.oom_p).clamp(0.0, 1.0));
    let net = match (est.bandwidth_mbps, est.bandwidth_peak_mbps) {
        (Some(b), Some(p)) if p > 0.0 => Some((b / p).clamp(0.0, 1.0)),
        _ => None,
    };
    (cpu, mem, net)
}

/// The profiled replacement for the oracle snapshot fractions feeding the
/// accel agent's [`LocalState`] and the heuristic policy. Components the
/// client's own estimate cannot supply fall back to the cold-start
/// policy: the population's running estimate under `GlobalPrior` (full
/// fractions before any data exists), full fractions under `Optimistic`,
/// quarter fractions under `Pessimistic`. A pure read — never perturbs
/// profiler state.
fn profiled_fractions(
    profiler: &ClientProfiler,
    client: usize,
    peak_gflops: f64,
) -> (f64, f64, f64) {
    let cold = match profiler.config().cold_start {
        ColdStartPolicy::Optimistic => (1.0, 1.0, 1.0),
        ColdStartPolicy::Pessimistic => (
            PESSIMISTIC_FRACTION,
            PESSIMISTIC_FRACTION,
            PESSIMISTIC_FRACTION,
        ),
        ColdStartPolicy::GlobalPrior => profiler.global_estimate().map_or((1.0, 1.0, 1.0), |g| {
            let (c, m, n) = fraction_components(&g, peak_gflops);
            (c.unwrap_or(1.0), m.unwrap_or(1.0), n.unwrap_or(1.0))
        }),
    };
    let (c, m, n) = profiler
        .estimate(client)
        .map_or((None, None, None), |e| fraction_components(&e, peak_gflops));
    (
        c.unwrap_or(cold.0),
        m.unwrap_or(cold.1),
        n.unwrap_or(cold.2),
    )
}

/// The profiled replacement for [`estimate_round_time_s`] in the
/// human-feedback overrun signal: predict the vanilla round time from the
/// client's witnessed throughput estimates, mirroring the oracle
/// formula's floors (`mbps ≥ 1e-3`, `gflops ≥ 1e-4`). Unknown components
/// fall back per the cold-start policy: the global estimate under
/// `GlobalPrior`, an instant phase under `Optimistic` (no overrun signal
/// until evidence), three-quarters of the deadline per phase under
/// `Pessimistic` (two unknown phases ⇒ a 1.5× deadline assumption).
fn profiled_round_time_s(
    profiler: &ClientProfiler,
    client: usize,
    cost: &RoundCost,
    deadline_s: f64,
) -> f64 {
    let est = profiler.estimate(client);
    let global = profiler.global_estimate();
    let global_prior = profiler.config().cold_start == ColdStartPolicy::GlobalPrior;
    let pick =
        |local: Option<f64>, glob: Option<f64>| local.or(if global_prior { glob } else { None });
    let mbps = pick(
        est.and_then(|e| e.bandwidth_mbps),
        global.and_then(|g| g.bandwidth_mbps),
    );
    let gflops = pick(
        est.and_then(|e| e.compute_gflops),
        global.and_then(|g| g.compute_gflops),
    );
    let cold_term = match profiler.config().cold_start {
        ColdStartPolicy::Pessimistic => 0.75 * deadline_s,
        ColdStartPolicy::Optimistic | ColdStartPolicy::GlobalPrior => 0.0,
    };
    let net_term = mbps.map_or(cold_term, |m| {
        (cost.download_bytes + cost.upload_bytes) * 8.0 / (m.max(1e-3) * 1e6)
    });
    let compute_term = gflops.map_or(cold_term, |g| cost.train_flops / (g.max(1e-4) * 1e9));
    net_term + compute_term
}

/// Registry counter name for one committed-attempt outcome kind (counter
/// names must be `&'static str`).
fn outcome_counter(kind: OutcomeKind) -> &'static str {
    match kind {
        OutcomeKind::Completed => "outcomes_completed",
        OutcomeKind::Duplicate => "outcomes_duplicate",
        OutcomeKind::Quarantined => "outcomes_quarantined",
        OutcomeKind::Stalled => "outcomes_stalled",
        OutcomeKind::Dropped => "outcomes_dropped",
    }
}

/// Outcome of executing one client attempt (used by both engines).
struct Attempt {
    client: usize,
    completed: bool,
    duration_s: f64,
    was_available: bool,
    utility: f64,
    /// Reward fed to the agent (None when agent off or not applicable).
    reward: Option<f64>,
    /// Pending update if the client completed.
    update: Option<PendingUpdate>,
    /// The update arrived but payload validation quarantined it.
    quarantined: bool,
    /// The transport will deliver this update twice.
    duplicate: bool,
    /// The upload stalled past the server timeout (retry candidate).
    stalled: bool,
}

/// Where a run's client shards come from: a private bounded LRU cache
/// (every standalone run — the historical path, byte for byte), or one
/// sweep-wide [`SharedShardCache`] serving many concurrent trials over
/// the same population. Both serve bit-identical values — shards are pure
/// functions of `(spec, client)` — so the choice never changes a report.
enum ShardSource {
    Owned(ShardCache),
    Shared(Arc<SharedShardCache>),
}

impl ShardSource {
    fn get(&mut self, client: usize) -> (Arc<Dataset>, Arc<Dataset>) {
        match self {
            ShardSource::Owned(cache) => cache.get(client),
            ShardSource::Shared(store) => store.get(client),
        }
    }

    fn spec(&self) -> &ShardSpec {
        match self {
            ShardSource::Owned(cache) => cache.spec(),
            ShardSource::Shared(store) => store.spec(),
        }
    }

    fn stats(&self) -> ShardCacheStats {
        match self {
            ShardSource::Owned(cache) => cache.stats(),
            ShardSource::Shared(store) => store.stats(),
        }
    }
}

impl Experiment {
    /// Build an experiment from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration error string if `config.validate()` fails.
    pub fn new(config: ExperimentConfig) -> Result<Self, String> {
        Self::build(config, None)
    }

    /// Build a sweep trial against a pre-built [`SharedPopulation`]: the
    /// trial reads shards through the sweep-wide shared store and clones
    /// the already-built availability calendar instead of re-deriving
    /// either. The resulting run is bit-identical to `Experiment::new`
    /// with the same config — sharing amortizes cost, never changes bits.
    ///
    /// # Errors
    ///
    /// Returns the validation error string, or a mismatch description if
    /// `config` describes a different population than `shared` was built
    /// for.
    pub fn new_shared(config: ExperimentConfig, shared: &SharedPopulation) -> Result<Self, String> {
        Self::build(config, Some(shared))
    }

    fn build(config: ExperimentConfig, shared: Option<&SharedPopulation>) -> Result<Self, String> {
        config.validate()?;
        let seed = config.seed;
        let pop_seed = config.population_seed();
        let (data, sampler) = match shared {
            None => {
                let data = ShardSource::Owned(ShardCache::new(
                    ShardSpec::new(config.federated_config(), split_seed(pop_seed, 1)),
                    config.resolved_shard_cache(),
                ));
                let mut sampler = ResourceSampler::new(
                    config.num_clients,
                    config.interference,
                    split_seed(pop_seed, 2),
                );
                if config.candidate_pool == 0 {
                    // Full-sweep runs touch every client's availability
                    // model each round; materialize them now so the cost
                    // lands at build time, not inside the first round.
                    // Pooled runs skip this entirely (it is the only
                    // remaining O(population) allocation).
                    sampler.prewarm_full_sweep();
                }
                (data, sampler)
            }
            Some(sp) => {
                sp.check(&config)?;
                (ShardSource::Shared(sp.shards()), sp.sampler_for(&config))
            }
        };
        let selector: Box<dyn ClientSelector + Send + Sync> = match config.selector {
            SelectorChoice::FedAvg => Box::new(FedAvgSelector::new(split_seed(seed, 3))),
            SelectorChoice::Oort => Box::new(OortSelector::new(
                split_seed(seed, 3),
                config.deadline_s / 2.0,
            )),
            SelectorChoice::Refl => {
                Box::new(ReflSelector::new(split_seed(seed, 3), config.deadline_s))
            }
            SelectorChoice::FedBuff => Box::new(FedBuffSelector::new(
                split_seed(seed, 3),
                config.async_concurrency,
                config.async_buffer,
            )),
            SelectorChoice::Tifl => Box::new(TiflSelector::new(split_seed(seed, 3))),
        };
        let catalogue = match config.accel {
            AccelMode::RlhfExtended => ActionCatalogue::extended(),
            _ => ActionCatalogue::paper(),
        };
        let agent = match config.accel {
            AccelMode::Rl => {
                let mut c = AgentConfig::rl_only(catalogue.len());
                c.w_participation = config.reward_w_participation;
                c.w_accuracy = config.reward_w_accuracy;
                Some(RlhfAgent::new(c, split_seed(seed, 4)))
            }
            AccelMode::Rlhf | AccelMode::RlhfExtended => {
                let mut c = AgentConfig::rlhf(catalogue.len());
                c.w_participation = config.reward_w_participation;
                c.w_accuracy = config.reward_w_accuracy;
                Some(RlhfAgent::new(c, split_seed(seed, 4)))
            }
            _ => None,
        };
        let heuristic = match config.accel {
            AccelMode::Heuristic => Some(HeuristicPolicy::new(split_seed(seed, 5))),
            _ => None,
        };
        let synth = *data.spec().synthetic();
        let global_model = Mlp::new(
            &MlpConfig::new(synth.feature_dim, &[PROXY_HIDDEN], synth.num_classes),
            split_seed(seed, 6),
        );
        // Non-default optimizer / drift choices are spelled out in the
        // label; the default FedAvg-no-drift path keeps the historical
        // format byte for byte (pinned by the golden reports).
        let mut label = format!(
            "{}({})/{}",
            config.accel.name(),
            config.selector.name(),
            config.task.name()
        );
        if config.server_optim.optimizer != ServerOptimizerChoice::FedAvg {
            label.push('@');
            label.push_str(config.server_optim.optimizer.name());
        }
        if config.prox_mu > 0.0 {
            label.push_str("+prox");
        }
        if config.scaffold {
            label.push_str("+scaffold");
        }
        if config.profiling.enabled {
            // `+prof0` marks the cold-start ablation (observations
            // suppressed), `+prof` the full online-profiling path.
            label.push_str(if config.profiling.cold_only {
                "+prof0"
            } else {
                "+prof"
            });
        }
        let report = ExperimentReport {
            label,
            accuracy: AccuracySummary::from_accuracies(&[]),
            client_accuracies: Vec::new(),
            selected_count: vec![0; config.num_clients],
            completed_count: vec![0; config.num_clients],
            total_dropouts: 0,
            total_completions: 0,
            total_quarantined: 0,
            duplicates_suppressed: 0,
            stall_retries: 0,
            resources: Default::default(),
            wall_clock_h: 0.0,
            technique_stats: Default::default(),
            rounds: Vec::new(),
            telemetry: None,
        };
        let protected = global_model.protected_mask();
        let num_params = global_model.num_params();
        // The evaluation set: a fixed uniform sample from a dedicated seed
        // stream, sorted ascending so sampled evaluation visits clients in
        // the same order full evaluation does. Empty means "everyone".
        let eval_set: Vec<usize> =
            if config.eval_sample == 0 || config.eval_sample >= config.num_clients {
                Vec::new()
            } else {
                let mut ids: Vec<usize> = (0..config.num_clients).collect();
                ids.shuffle(&mut seed_rng(split_seed(seed, 7)));
                ids.truncate(config.eval_sample);
                ids.sort_unstable();
                ids
            };
        Ok(Experiment {
            config,
            data,
            sampler,
            selector,
            catalogue,
            agent,
            heuristic,
            global_model,
            hf_overrun_ema: HashMap::new(),
            error_feedback: HashMap::new(),
            protected,
            clock: SimClock::new(),
            ledger: ResourceLedger::new(),
            report,
            round_backoff_s: 0.0,
            obs: Collector::new(config.obs),
            eligible_buf: Vec::new(),
            cohort_buf: Vec::new(),
            eval_set,
            record_eligible: None,
            server_optim: ServerOptimizer::new(config.server_optim),
            scaffold_c: if config.scaffold {
                vec![0.0; num_params]
            } else {
                Vec::new()
            },
            scaffold_ci: HashMap::new(),
            eval_models: Vec::new(),
            eval_parameters: Vec::new(),
            pending_eval: None,
            profiler: config
                .profiling
                .enabled
                .then(|| ClientProfiler::for_population(config.profiling, config.num_clients)),
        })
    }

    /// Replace the agent with a pre-trained one (transfer / fine-tuning,
    /// RQ3 and Fig. 9). The agent's exploration state is reset via
    /// [`RlhfAgent::begin_fine_tune`].
    ///
    /// # Panics
    ///
    /// Panics if the experiment's accel mode is not RL/RLHF.
    pub fn install_pretrained_agent(&mut self, mut agent: RlhfAgent) {
        assert!(
            matches!(
                self.config.accel,
                AccelMode::Rl | AccelMode::Rlhf | AccelMode::RlhfExtended
            ),
            "cannot install an agent into accel mode {:?}",
            self.config.accel
        );
        agent.begin_fine_tune(split_seed(self.config.seed, 44));
        self.agent = Some(agent);
    }

    /// Borrow the (possibly trained) agent.
    pub fn agent(&self) -> Option<&RlhfAgent> {
        self.agent.as_ref()
    }

    /// Replace the agent with a differently configured one *before*
    /// running (ablation studies). Unlike
    /// [`Experiment::install_pretrained_agent`], the agent's state is
    /// used as-is.
    ///
    /// # Panics
    ///
    /// Panics if the accel mode has no agent, or the action counts
    /// disagree with the experiment's catalogue.
    pub fn replace_agent(&mut self, agent: RlhfAgent) {
        assert!(
            matches!(
                self.config.accel,
                AccelMode::Rl | AccelMode::Rlhf | AccelMode::RlhfExtended
            ),
            "cannot install an agent into accel mode {:?}",
            self.config.accel
        );
        assert_eq!(
            agent.config().num_actions,
            self.catalogue.len(),
            "agent action count must match the experiment catalogue"
        );
        self.agent = Some(agent);
    }

    /// Take the agent out of a finished experiment (for transfer).
    pub fn take_agent(&mut self) -> Option<RlhfAgent> {
        self.agent.take()
    }

    /// The experiment's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn run_engine(&mut self) {
        if self.config.selector == SelectorChoice::FedBuff {
            self.run_async();
        } else {
            self.run_sync();
        }
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> ExperimentReport {
        self.run_engine();
        self.finalize()
    }

    /// Run to completion and also return the shard-cache counters, so
    /// population-scale harnesses can assert that training-data memory
    /// stayed bounded by the configured cache capacity.
    pub fn run_with_cache_stats(mut self) -> (ExperimentReport, ShardCacheStats) {
        self.run_engine();
        let stats = self.data.stats();
        (self.finalize(), stats)
    }

    /// Run to completion and also return the online profiler's store
    /// accounting (`None` with profiling off), so harnesses can assert the
    /// bounded store's identities (`inserted == evictions + resident`,
    /// `resident ≤ capacity`) at population scale.
    pub fn run_with_profiler_stats(mut self) -> (ExperimentReport, Option<ProfilerStats>) {
        self.run_engine();
        let stats = self.profiler.as_ref().map(ClientProfiler::stats);
        (self.finalize(), stats)
    }

    /// Run to completion and also return the shard-cache counters plus the
    /// availability-index residency stats (heap bytes, transitions applied,
    /// tracked batteries, pool draws), so population-scale harnesses can
    /// attribute both memory and per-round work.
    pub fn run_with_population_stats(
        mut self,
    ) -> (ExperimentReport, ShardCacheStats, AvailabilityStats) {
        self.run_engine();
        let cache = self.data.stats();
        let avail = self.sampler.availability_stats();
        (self.finalize(), cache, avail)
    }

    /// Run to completion and also return the recorded telemetry (the full
    /// event stream plus the summary, for JSONL export and digests).
    /// Requires the config to enable observability — with telemetry off
    /// the stream would be silently empty, which is never what a caller
    /// of this method wants.
    ///
    /// # Panics
    ///
    /// Panics if `config.obs` is disabled.
    pub fn run_traced(mut self) -> (ExperimentReport, Telemetry) {
        assert!(
            self.obs.enabled(),
            "run_traced on a run with telemetry disabled (enable config.obs)"
        );
        self.run_engine();
        let events = self.obs.take_events();
        let report = self.finalize();
        let summary = report.telemetry.clone().unwrap_or_default();
        (report, Telemetry { events, summary })
    }

    /// Run to completion and also return the trained RLHF agent (for the
    /// transfer / fine-tuning workflow of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if the accel mode has no agent (Off / Static / Heuristic);
    /// use [`Experiment::run`] for those.
    pub fn run_capturing_agent(mut self) -> (ExperimentReport, RlhfAgent) {
        assert!(
            matches!(
                self.config.accel,
                AccelMode::Rl | AccelMode::Rlhf | AccelMode::RlhfExtended
            ),
            "accel mode {:?} trains no agent",
            self.config.accel
        );
        self.run_engine();
        let agent = self.agent.take().expect("RL modes imply an agent");
        (self.finalize(), agent)
    }

    // ------------------------------------------------------------------
    // Shared per-client machinery
    // ------------------------------------------------------------------

    fn global_state(&self) -> GlobalState {
        GlobalState::from_raw(
            self.config.batch_size,
            self.config.local_epochs,
            self.config.cohort_size,
        )
    }

    /// Refresh `eligible_buf` with the selection candidates for `round`,
    /// ascending. Mirrors the FedScale/production model: devices that are
    /// off, interrupted, or below the battery threshold never become
    /// selection candidates, so dropouts are resource-driven (deadline,
    /// memory, mid-round failures) rather than trivial no-shows.
    ///
    /// With `candidate_pool == 0` this is the full availability sweep
    /// (bit-identical to the historical behaviour). Otherwise the sampler
    /// draws a deterministic pool of at most `candidate_pool` candidates
    /// from its event-driven index — per-round cost O(transitions + pool),
    /// independent of population — and `record_eligible` captures the
    /// *exact* population-wide eligible count for telemetry. The pool's
    /// seed stream (8) is keyed by round only, so it is identical across
    /// thread counts and unaffected by any other consumer of randomness.
    fn refresh_eligible(&mut self, round: usize) {
        let k = self.config.candidate_pool;
        if k == 0 {
            self.sampler
                .available_clients_into(round, &mut self.eligible_buf);
            self.record_eligible = None;
        } else {
            let draw_seed = split_seed(split_seed(self.config.seed, 8), round as u64);
            let exact =
                self.sampler
                    .candidate_pool_into(round, k, draw_seed, &mut self.eligible_buf);
            self.record_eligible = Some(exact);
        }
    }

    /// Select a cohort for `round` out of `eligible_buf`. The profiled
    /// path hands the selector a read-only view of the online estimates
    /// ([`ClientSelector::select_profiled`]); the oracle path is the
    /// historical `select_into`, byte for byte. When telemetry is on,
    /// cohort coverage — the fraction of selected clients the profiler
    /// has at least one resident observation for — is recorded before
    /// the round runs, so the metric describes the estimates selection
    /// actually acted on.
    fn select_cohort(&mut self, round: usize, target: usize, cohort: &mut Vec<usize>) {
        match &self.profiler {
            Some(p) => {
                self.selector
                    .select_profiled(round, &self.eligible_buf, target, &p.view(), cohort)
            }
            None => self
                .selector
                .select_into(round, &self.eligible_buf, target, cohort),
        }
        if self.obs.enabled() && !cohort.is_empty() {
            if let Some(p) = &self.profiler {
                let covered = cohort.iter().filter(|&&c| p.observed(c)).count();
                let reg = self.obs.registry_mut();
                reg.inc("profile_selected_clients", cohort.len() as u64);
                reg.inc("profile_covered_clients", covered as u64);
                reg.set_gauge(
                    "profile_cohort_coverage",
                    covered as f64 / cohort.len() as f64,
                );
            }
        }
    }

    /// The attempt duration a selector may learn from. With profiling on,
    /// a non-completer's wall time is censored at the deadline: a real
    /// server never observes a no-show's counterfactual full duration
    /// (the oracle leak audited by ISSUE 9's feedback sweep). With
    /// profiling off the historical uncensored value flows through,
    /// byte for byte.
    fn feedback_duration_s(&self, a: &Attempt) -> f64 {
        if self.profiler.is_some() && !a.completed {
            a.duration_s.min(self.config.deadline_s)
        } else {
            a.duration_s
        }
    }

    /// Decide the acceleration action for a client given its `(cpu, mem,
    /// net)` availability fractions — the oracle snapshot's with profiling
    /// off, the profiler's witnessed estimates with it on. When telemetry
    /// is on, emits the [`Event::AccelDecision`] for this attempt — still
    /// inside the sequential plan phase, so decision events appear in
    /// cohort order.
    fn choose_action(
        &mut self,
        client: usize,
        fractions: (f64, f64, f64),
        round: usize,
    ) -> AccelAction {
        let (cpu_f, mem_f, net_f) = fractions;
        let (action, agent_state, q, explore) = match self.config.accel {
            AccelMode::Off => (AccelAction::NoOp, None, 0.0, false),
            AccelMode::Static(idx) => (
                self.catalogue.action(idx % self.catalogue.len()),
                None,
                0.0,
                false,
            ),
            AccelMode::Heuristic => {
                let h = self
                    .heuristic
                    .as_mut()
                    .expect("heuristic mode implies a policy");
                (h.choose(cpu_f, net_f), None, 0.0, false)
            }
            AccelMode::Rl | AccelMode::Rlhf | AccelMode::RlhfExtended => {
                let global = self.global_state();
                let local = LocalState::from_fractions(cpu_f, mem_f, net_f);
                let hf = DeadlineLevel::from_overrun(
                    self.hf_overrun_ema.get(&client).copied().unwrap_or(0.0),
                );
                let agent = self.agent.as_mut().expect("RL modes imply an agent");
                // The traced call IS the decision path (`choose_action`
                // delegates to it), so the RNG stream is identical whether
                // or not anyone looks at the trace.
                let trace =
                    agent.choose_action_traced(global, local, hf, round, self.config.rounds);
                (
                    self.catalogue.action(trace.action),
                    Some((local, hf)),
                    trace.q_value,
                    trace.explored,
                )
            }
        };
        if self.obs.enabled() {
            let state = agent_state.map_or_else(
                || "-".to_string(),
                |(local, hf)| format!("s{}h{}", local.index(), hf.index()),
            );
            self.obs.record(Event::AccelDecision {
                round: round as u64,
                client: client as u64,
                state,
                action: action.name().to_string(),
                q,
                explore,
            });
        }
        action
    }

    // ------------------------------------------------------------------
    // Two-phase attempt engine: plan (sequential, mutates decision state)
    // → execute (parallel, pure) → commit (sequential, client order).
    // ------------------------------------------------------------------

    /// Phase 1 — *plan*: snapshot the client, fold the human-feedback
    /// signal, and choose the acceleration action. Everything that mutates
    /// decision state (sampler RNG, agent exploration, EMA) happens here,
    /// in cohort order, so the parallel phase inherits a fixed plan.
    fn plan_attempt(&mut self, client: usize, round: usize, staleness: u64) -> AttemptTask {
        let snap = self.sampler.snapshot(client, round);
        let device = self.sampler.client(client).profile;
        // Pin the client's shards for the execute phase. The cache is only
        // touched here, in the sequential plan phase, so its LRU state
        // (and therefore its hit/miss/eviction sequence) is deterministic.
        let (train, test) = self.data.get(client);
        let shard_len = train.len();
        let base_cost = RoundCost::vanilla(
            &self.config.arch.profile(),
            shard_len,
            self.config.local_epochs,
            self.config.batch_size,
        );
        // Human feedback: fold this round's *vanilla* overrun estimate into
        // the client's running deadline-difference profile before deciding.
        // With profiling off the estimate reads the trace oracle (the
        // historical path, byte for byte); with it on, only witnessed
        // throughput — the runtime's own observations — may be consulted.
        let vanilla_time_s = match &self.profiler {
            None => estimate_round_time_s(&snap, &base_cost),
            Some(p) => profiled_round_time_s(p, client, &base_cost, self.config.deadline_s),
        };
        let vanilla_overrun =
            ((vanilla_time_s - self.config.deadline_s) / self.config.deadline_s).max(0.0);
        let ema = self.hf_overrun_ema.entry(client).or_insert(0.0);
        *ema = 0.7 * *ema + 0.3 * vanilla_overrun;
        // The accel decision's resource features: oracle fractions, or the
        // profiler's witnessed estimates under the cold-start policy.
        let fractions = match &self.profiler {
            None => (snap.cpu_fraction, snap.mem_fraction, snap.net_fraction),
            Some(p) => profiled_fractions(p, client, device.gflops),
        };
        let action = self.choose_action(client, fractions, round);
        let (error_feedback, scaffold_ci) = self.snapshot_drift_state(client, action);
        let (cpu_f, mem_f, net_f) = fractions;
        AttemptTask {
            client,
            staleness,
            slot: 0, // assigned by run_attempts once the cohort is fixed
            attempt: 0,
            snap,
            profile: device,
            action,
            base_cost,
            shard_len,
            train,
            test,
            global: self.global_state(),
            local: LocalState::from_fractions(cpu_f, mem_f, net_f),
            hf: DeadlineLevel::from_overrun(
                self.hf_overrun_ema.get(&client).copied().unwrap_or(0.0),
            ),
            error_feedback,
            scaffold_ci,
        }
    }

    /// Freeze the execute phase's view of the experiment: configuration,
    /// protection mask, global parameters, architecture template, and the
    /// SCAFFOLD server variate. Built once per attempt batch — and rebuilt
    /// per retry, which by the historical contract sees the batch's
    /// earlier commits.
    fn execute_ctx(&self, global_params: &[f32]) -> ExecuteCtx {
        ExecuteCtx {
            config: self.config,
            protected: self.protected.clone(),
            global_params: global_params.to_vec(),
            model: self.global_model.clone(),
            scaffold_c: self.scaffold_c.clone(),
            obs_enabled: self.obs.enabled(),
        }
    }

    /// Snapshot the per-client state the execute phase reads through the
    /// task: the error-feedback residual (top-k compression only) and the
    /// SCAFFOLD control variate. Taken at plan time — and re-taken per
    /// retry, matching the historical retry path, which read them live
    /// after the batch's first-round commits.
    fn snapshot_drift_state(
        &self,
        client: usize,
        action: AccelAction,
    ) -> (Option<ErrorFeedback>, Option<Vec<f32>>) {
        let ef = (action == AccelAction::TopK10).then(|| {
            self.error_feedback
                .get(&client)
                .cloned()
                .unwrap_or_default()
        });
        let ci = self
            .config
            .scaffold
            .then(|| self.scaffold_ci.get(&client).cloned().unwrap_or_default());
        (ef, ci)
    }

    /// Phase 3 — *commit*: apply the attempt's mutations (ledger, battery,
    /// error-feedback residual, agent feedback, report bookkeeping) in
    /// client order. Always sequential, so these effects are identical no
    /// matter how many workers ran the execute phase.
    fn commit_attempt(
        &mut self,
        round: usize,
        task: &AttemptTask,
        mut exec: AttemptExec,
    ) -> Attempt {
        // Server-side payload validation: an update carrying NaN/Inf would
        // poison the global model through aggregation, so it is quarantined
        // — dropped before aggregation, its resources counted as wasted,
        // and the event surfaced in the ledger and report.
        let quarantined = exec
            .update
            .as_ref()
            .is_some_and(|u| u.delta.iter().any(|v| !v.is_finite()));
        if quarantined {
            exec.outcome.dropped = Some(DropReason::Quarantined);
            exec.update = None;
            // Discard the residual too: error feedback distilled from a
            // poisoned update must not leak into future rounds. The same
            // goes for a SCAFFOLD variate derived from a poisoned delta.
            exec.error_feedback = None;
            exec.scaffold_ci = None;
            exec.utility = 0.0;
            exec.improvement = 0.0;
            self.report.total_quarantined += 1;
        }
        self.ledger.record(&exec.outcome);
        self.sampler
            .drain_battery(task.client, exec.outcome.energy_j);
        if let Some(ef) = exec.error_feedback {
            self.error_feedback.insert(task.client, ef);
        }
        if let Some(ci_new) = exec.scaffold_ci.take() {
            // Reject a variate poisoned by non-finite arithmetic: a NaN
            // entry would spread to the server variate and from there to
            // every client's gradients.
            if ci_new.iter().all(|v| v.is_finite()) {
                // Server variate: c += (c_i⁺ − c_i)/N over the population,
                // applied here in cohort order (sequential ⇒ thread-count
                // invariant, like all committed state).
                let n = self.config.num_clients as f32;
                let old = self.scaffold_ci.get(&task.client);
                for (j, c) in self.scaffold_c.iter_mut().enumerate() {
                    let prev = old.map_or(0.0, |v| v[j]);
                    *c += (ci_new[j] - prev) / n;
                }
                self.scaffold_ci.insert(task.client, ci_new);
            }
        }
        let completed = exec.outcome.completed();
        let reward = self.agent.as_mut().map(|agent| {
            let idx = self
                .catalogue
                .index_of(task.action)
                .expect("action came from the catalogue");
            if completed {
                agent.feedback(
                    task.client,
                    task.global,
                    task.local,
                    task.hf,
                    idx,
                    1.0,
                    exec.improvement,
                    round,
                    self.config.rounds,
                );
                let c = agent.config();
                c.w_participation + c.w_accuracy * exec.improvement
            } else {
                agent.feedback_dropout(
                    task.client,
                    task.global,
                    task.local,
                    task.hf,
                    idx,
                    round,
                    self.config.rounds,
                );
                0.0
            }
        });
        self.report.record_technique(task.action, completed);
        let duplicate = exec.duplicate && completed;
        let stalled = exec.outcome.dropped == Some(DropReason::NetworkStall);
        if self.obs.enabled() {
            if let Some(kind) = exec.fault {
                self.obs.record(Event::FaultInjected {
                    round: round as u64,
                    client: task.client as u64,
                    attempt: u64::from(task.attempt),
                    kind: kind.name().to_string(),
                });
                self.obs.registry_mut().inc("faults_injected", 1);
            }
            let outcome_kind = if quarantined {
                OutcomeKind::Quarantined
            } else if duplicate {
                OutcomeKind::Duplicate
            } else if completed {
                OutcomeKind::Completed
            } else if stalled {
                OutcomeKind::Stalled
            } else {
                OutcomeKind::Dropped
            };
            self.obs.record(Event::ClientOutcome {
                round: round as u64,
                client: task.client as u64,
                attempt: u64::from(task.attempt),
                outcome: outcome_kind,
                sim_duration_s: exec.outcome.total_s(),
            });
            self.obs
                .registry_mut()
                .inc(outcome_counter(outcome_kind), 1);
        }
        // Online profiling: fold the committed outcome into the profiler.
        // Commit phase, slot order — so profiler state (and everything
        // selection later reads from it) is thread-count invariant. A
        // quarantined or dropped attempt teaches reliability only; the
        // witnessed throughputs invert the simulator's phase formulas
        // (`upload_s = bytes·8 / (mbps·1e6)`, `train_s = flops /
        // (gflops·1e9)`) so estimates converge on the effective rates.
        if let Some(profiler) = self.profiler.as_mut() {
            let kind = if quarantined {
                ObservedOutcome::Quarantined
            } else if completed {
                ObservedOutcome::Completed
            } else if stalled {
                ObservedOutcome::Stalled
            } else if exec.outcome.dropped == Some(DropReason::OutOfMemory) {
                ObservedOutcome::DroppedOom
            } else {
                ObservedOutcome::Dropped
            };
            let upload_mbps = (completed && exec.outcome.upload_s > 0.0)
                .then(|| exec.cost.upload_bytes * 8.0 / (exec.outcome.upload_s * 1e6));
            let compute_gflops = (completed && exec.outcome.train_s > 0.0)
                .then(|| exec.cost.train_flops / (exec.outcome.train_s * 1e9));
            // Estimate error against the *pre-update* prediction: how far
            // off was the latency the selector just acted on?
            let prior_latency = profiler.estimate(task.client).and_then(|e| e.latency_s);
            profiler.observe(
                task.client,
                &Observation {
                    round: round as u64,
                    kind,
                    duration_s: exec.outcome.total_s(),
                    upload_mbps,
                    compute_gflops,
                },
            );
            if self.obs.enabled() {
                let reg = self.obs.registry_mut();
                reg.inc("profile_observations", 1);
                if completed && exec.outcome.total_s() > 0.0 {
                    if let Some(pred) = prior_latency {
                        let actual = exec.outcome.total_s();
                        reg.observe(
                            "profile_estimate_error",
                            ESTIMATE_ERROR_BUCKETS,
                            ((pred - actual) / actual).abs(),
                        );
                    }
                }
            }
        }
        Attempt {
            client: task.client,
            completed,
            duration_s: exec.outcome.total_s(),
            was_available: task.snap.available,
            utility: exec.utility,
            reward,
            update: exec.update,
            quarantined,
            duplicate,
            stalled,
        }
    }

    /// Plan, execute (fanned out over `scratches`), and commit a batch of
    /// client attempts. Results come back in cohort order.
    ///
    /// Dispatches on [`ExperimentConfig::pipeline_rounds`]: the sequential
    /// engine runs the three phases back to back with a full barrier
    /// between each; the pipelined engine streams tasks to workers as they
    /// are planned and streams commits back in slot order as results
    /// arrive. Both produce bit-identical committed state — every commit
    /// happens on the main thread in slot order, and the execute phase
    /// reads only plan-time snapshots (see [`ExecuteCtx`]).
    ///
    /// With `retry_stalled` set (the synchronous engine), clients whose
    /// upload hit an injected network stall are re-requested up to the
    /// fault plan's retry bound, each retry charging its backoff to the
    /// round's wall clock. Retries run sequentially in cohort order with a
    /// bumped attempt number, so the fault schedule redraws and the result
    /// stays independent of worker-thread count.
    fn run_attempts(
        &mut self,
        round: usize,
        cohort: &[usize],
        global_params: &[f32],
        scratches: &mut [WorkerScratch],
        retry_stalled: bool,
    ) -> Vec<Attempt> {
        if self.config.pipeline_rounds {
            self.run_attempts_pipelined(round, cohort, global_params, scratches, retry_stalled)
        } else {
            self.run_attempts_sequential(round, cohort, global_params, scratches, retry_stalled)
        }
    }

    /// The historical barrier engine: plan all, execute all, commit all.
    fn run_attempts_sequential(
        &mut self,
        round: usize,
        cohort: &[usize],
        global_params: &[f32],
        scratches: &mut [WorkerScratch],
        retry_stalled: bool,
    ) -> Vec<Attempt> {
        let plan_t = self.obs.phase_start();
        let mut tasks = Vec::with_capacity(cohort.len());
        for (slot, &client) in cohort.iter().enumerate() {
            self.report.selected_count[client] += 1;
            let mut task = self.plan_attempt(client, round, 0);
            task.slot = slot as u64;
            tasks.push(task);
        }
        self.obs.phase_end(round as u64, Phase::Plan, plan_t);
        let exec_t = self.obs.phase_start();
        let ctx = self.execute_ctx(global_params);
        let execs = parallel_map_with(scratches, &tasks, |scratch, task| {
            ctx.execute(round, task, scratch)
        });
        self.obs.phase_end(round as u64, Phase::Execute, exec_t);
        let commit_t = self.obs.phase_start();
        let mut attempts: Vec<Attempt> = tasks
            .iter()
            .zip(execs)
            .map(|(task, exec)| self.commit_attempt(round, task, exec))
            .collect();
        if retry_stalled {
            self.retry_stalled_attempts(round, global_params, &tasks, &mut attempts, scratches);
        }
        // Fold the workers' telemetry buffers into the central registry,
        // ordered by (cohort slot, attempt) — part of the sequential
        // commit phase, like every other cross-thread reduction.
        self.obs
            .absorb_recorders(scratches.iter_mut().map(|s| &mut s.recorder));
        self.obs.phase_end(round as u64, Phase::Commit, commit_t);
        attempts
    }

    /// The pipelined engine (`pipeline_rounds = true`): the main thread
    /// streams each task to the worker pool the moment it is planned, then
    /// commits results in slot order as they arrive — so planning of slot
    /// `i+1` overlaps execution of slot `i`, and the commit of slot `i`
    /// overlaps execution of slots `> i`. Commits stay on the main thread
    /// in slot order, and workers read only the [`ExecuteCtx`] /
    /// [`AttemptTask`] snapshots, so the committed state — and therefore
    /// the report — is byte-identical to the sequential engine's (pinned
    /// by `tests/pipelined_determinism.rs`).
    ///
    /// Phase spans under pipelining: the plan span is the planning prefix;
    /// the execute span runs from first dispatch to last arrival, with
    /// `overlapped_us` crediting the plan and commit work that ran under
    /// it; the commit span is the accumulated commit work (streamed +
    /// tail), so `Σ wall − Σ overlapped` across the three spans is the
    /// batch's critical path.
    fn run_attempts_pipelined(
        &mut self,
        round: usize,
        cohort: &[usize],
        global_params: &[f32],
        scratches: &mut [WorkerScratch],
        retry_stalled: bool,
    ) -> Vec<Attempt> {
        let round_u = round as u64;
        if cohort.is_empty() {
            // Preserve the three-span-per-batch shape so per-kind event
            // counts (and obsdump reconciliation) are engine-independent.
            let t = self.obs.phase_start();
            self.obs.phase_end(round_u, Phase::Plan, t);
            self.obs.phase_span(round_u, Phase::Execute, 0, None);
            self.obs.phase_span(round_u, Phase::Commit, 0, None);
            return Vec::new();
        }
        let timers = self.obs.wall_timers();
        let ctx = self.execute_ctx(global_params);
        let n = cohort.len();
        let workers = scratches.len().min(n);
        let batch_t = self.obs.phase_start();
        let (task_tx, task_rx) = mpsc::channel::<(usize, AttemptTask)>();
        let task_rx = Mutex::new(task_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, AttemptTask, AttemptExec)>();
        let mut tasks: Vec<Option<AttemptTask>> = (0..n).map(|_| None).collect();
        let mut attempts: Vec<Option<Attempt>> = (0..n).map(|_| None).collect();
        let mut plan_us = 0u64;
        let mut commit_us = 0u64;
        let mut commit_overlap_us = 0u64;
        let mut exec_wall_us = 0u64;
        thread::scope(|scope| {
            for scratch in scratches[..workers].iter_mut() {
                let ctx = &ctx;
                let task_rx = &task_rx;
                let res_tx = res_tx.clone();
                scope.spawn(move || loop {
                    // Hold the lock only for the dequeue, not the work.
                    let msg = task_rx.lock().expect("task queue lock").recv();
                    let Ok((slot, task)) = msg else { break };
                    let exec = ctx.execute(round, &task, scratch);
                    if res_tx.send((slot, task, exec)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);
            // Plan: hand each task to the pool the moment it exists, so
            // slot 0 is already executing while slot 1 is being planned.
            for (slot, &client) in cohort.iter().enumerate() {
                self.report.selected_count[client] += 1;
                let mut task = self.plan_attempt(client, round, 0);
                task.slot = slot as u64;
                task_tx
                    .send((slot, task))
                    .expect("workers outlive dispatch");
            }
            drop(task_tx); // workers exit once the queue drains
            plan_us = batch_t.map_or(0, |t| t.elapsed().as_micros() as u64);
            self.obs.phase_span(round_u, Phase::Plan, plan_us, None);
            // Streamed commit: results re-ordered into slot order via a
            // pending buffer; only the contiguous prefix commits, so the
            // commit sequence is identical to the sequential engine's.
            let mut pending: Vec<Option<(AttemptTask, AttemptExec)>> =
                (0..n).map(|_| None).collect();
            let mut next = 0usize;
            for received in 0..n {
                let (slot, task, exec) = res_rx.recv().expect("worker delivers every task");
                pending[slot] = Some((task, exec));
                if received + 1 == n {
                    // Last result is in: the execute wall stops here, but
                    // the span event is emitted after the loop — at the
                    // last arrival an arbitrary (thread-timing dependent)
                    // number of slots is still pending in the reorder
                    // buffer, and the event stream must not depend on
                    // worker count.
                    exec_wall_us = batch_t.map_or(0, |t| t.elapsed().as_micros() as u64);
                }
                let c0 = timers.then(Instant::now);
                while next < n {
                    let Some((task, exec)) = pending[next].take() else {
                        break;
                    };
                    attempts[next] = Some(self.commit_attempt(round, &task, exec));
                    tasks[next] = Some(task);
                    next += 1;
                }
                if let Some(c0) = c0 {
                    let us = c0.elapsed().as_micros() as u64;
                    commit_us += us;
                    if received + 1 < n {
                        commit_overlap_us += us;
                    }
                }
            }
        });
        // Close the execute span (first dispatch → last arrival), crediting
        // the plan and commit work that ran under it.
        self.obs.phase_span(
            round_u,
            Phase::Execute,
            exec_wall_us,
            timers.then_some(plan_us + commit_overlap_us),
        );
        let tasks: Vec<AttemptTask> = tasks
            .into_iter()
            .map(|t| t.expect("every slot was committed"))
            .collect();
        let mut attempts: Vec<Attempt> = attempts
            .into_iter()
            .map(|a| a.expect("every slot was committed"))
            .collect();
        let tail_t = timers.then(Instant::now);
        if retry_stalled {
            self.retry_stalled_attempts(round, global_params, &tasks, &mut attempts, scratches);
        }
        self.obs
            .absorb_recorders(scratches.iter_mut().map(|s| &mut s.recorder));
        if let Some(t) = tail_t {
            commit_us += t.elapsed().as_micros() as u64;
        }
        self.obs.phase_span(round_u, Phase::Commit, commit_us, None);
        attempts
    }

    /// Sequential stall-retry pass shared by both attempt engines: clients
    /// whose committed outcome was a network stall are re-requested in
    /// cohort order with a bumped attempt number. Each retry re-snapshots
    /// the drift state and rebuilds the execute context, because — per the
    /// historical contract — retries observe the batch's earlier commits.
    fn retry_stalled_attempts(
        &mut self,
        round: usize,
        global_params: &[f32],
        tasks: &[AttemptTask],
        attempts: &mut [Attempt],
        scratches: &mut [WorkerScratch],
    ) {
        let max_retries = self.config.fault_plan.stall_max_retries;
        if max_retries == 0 {
            return;
        }
        for (i, task0) in tasks.iter().enumerate() {
            let mut attempt_no = 0u32;
            while attempts[i].stalled && attempt_no < max_retries {
                attempt_no += 1;
                let mut task = task0.clone();
                task.attempt = attempt_no;
                let (ef, ci) = self.snapshot_drift_state(task.client, task.action);
                task.error_feedback = ef;
                task.scaffold_ci = ci;
                self.round_backoff_s += self.config.fault_plan.stall_backoff_s;
                self.report.stall_retries += 1;
                if self.obs.enabled() {
                    self.obs.registry_mut().inc("stall_retries", 1);
                }
                let ctx = self.execute_ctx(global_params);
                let exec = ctx.execute(round, &task, &mut scratches[0]);
                attempts[i] = self.commit_attempt(round, &task, exec);
            }
        }
    }

    fn worker_scratches(&self) -> Vec<WorkerScratch> {
        (0..self.config.effective_threads())
            .map(|_| WorkerScratch::default())
            .collect()
    }

    /// Per-client accuracy of the global model over the evaluation set:
    /// the full population by default, or the fixed `eval_sample` subset
    /// when configured. Test shards are derived on the fly from the pure
    /// shard spec (never through the training cache), so evaluation cannot
    /// perturb the cache's deterministic LRU state.
    ///
    /// Each worker evaluates through a persistent model clone
    /// (`eval_models`) via [`Mlp::evaluate_mut`], so one forward scratch
    /// and one packed-panel cache are reused across every client in the
    /// sweep: `set_params` bumps the weight stamps once per pass, the
    /// first client repacks, and every later client replays the cached
    /// weight panels. Per-client accuracy is a pure function of the
    /// parameters, so the result is identical for any worker count.
    fn eval_all_clients(&mut self) -> Vec<f64> {
        let mut models = std::mem::take(&mut self.eval_models);
        let threads = self.config.effective_threads();
        if models.len() != threads {
            models.resize_with(threads, || self.global_model.clone());
        }
        let mut params = std::mem::take(&mut self.eval_parameters);
        self.global_model.params_into(&mut params);
        for m in &mut models {
            m.set_params(&params)
                .expect("eval models share the global architecture");
        }
        let spec = self.data.spec();
        let full: Vec<usize>;
        let clients: &[usize] = if self.eval_set.is_empty() {
            full = (0..self.config.num_clients).collect();
            &full
        } else {
            &self.eval_set
        };
        let accs = parallel_map_with(&mut models, clients, |m, &c| {
            m.evaluate_mut(&spec.test_shard(c)).accuracy as f64
        });
        self.eval_parameters = params;
        self.eval_models = models;
        accs
    }

    /// Launch the round's evaluation on a background thread (pipelined
    /// rounds only). The thread owns clones of the post-aggregation model,
    /// the shard spec, and the client list, so the next round's work —
    /// which the evaluation overlaps — cannot influence the result. The
    /// matching [`RoundRecord`] is pushed with `mean_accuracy: None` and
    /// patched when [`Experiment::resolve_pending_eval`] joins the thread.
    fn spawn_eval(&mut self, record: usize) {
        let spec = self.data.spec().clone();
        let mut model = self.global_model.clone();
        let clients: Vec<usize> = if self.eval_set.is_empty() {
            (0..self.config.num_clients).collect()
        } else {
            self.eval_set.clone()
        };
        let handle = thread::spawn(move || {
            clients
                .iter()
                .map(|&c| model.evaluate_mut(&spec.test_shard(c)).accuracy as f64)
                .collect()
        });
        self.pending_eval = Some(PendingEval { record, handle });
    }

    /// Join the outstanding background evaluation (if any) and patch its
    /// mean accuracy into the report record it belongs to. Called at the
    /// next round's bookkeeping and at finalization, so every record is
    /// resolved before anyone reads the report.
    fn resolve_pending_eval(&mut self) {
        if let Some(p) = self.pending_eval.take() {
            let accs = p.handle.join().expect("background eval completes");
            let mean = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
            self.report.rounds[p.record].mean_accuracy = Some(mean);
        }
    }

    // ------------------------------------------------------------------
    // Synchronous engine (FedAvg / Oort / REFL)
    // ------------------------------------------------------------------

    fn run_sync(&mut self) {
        let mut scratches = self.worker_scratches();
        for round in 0..self.config.rounds {
            self.refresh_eligible(round);
            let mut cohort = std::mem::take(&mut self.cohort_buf);
            self.select_cohort(round, self.config.cohort_size, &mut cohort);
            self.obs.record(Event::RoundStart {
                round: round as u64,
                sim_s: self.clock.now_s(),
                eligible: self.record_eligible.unwrap_or(self.eligible_buf.len()) as u64,
                selected: cohort.len() as u64,
            });
            let mut global = self.global_model.params();
            let mut attempts = self.run_attempts(round, &cohort, &global, &mut scratches, true);
            self.cohort_buf = cohort;
            // Aggregate completed updates, taken by move. An injected
            // duplicate-delivery fault hands the aggregator the same
            // update twice; the dedup pass suppresses the extra copy so a
            // faulty transport cannot double-weight a client.
            let mut updates: Vec<PendingUpdate> = Vec::with_capacity(attempts.len());
            for a in attempts.iter_mut() {
                if let Some(u) = a.update.take() {
                    if a.duplicate {
                        updates.push(u.clone());
                    }
                    updates.push(u);
                }
            }
            let suppressed = dedup_updates(&mut updates);
            self.report.duplicates_suppressed += suppressed;
            // The optimizer's applied count is authoritative: a batch with
            // no aggregate weight applies nothing, and the event must say
            // so rather than echo the batch size.
            let applied = self.server_optim.aggregate(&mut global, &updates);
            self.global_model
                .set_params(&global)
                .expect("aggregation preserves parameter count");
            self.obs.record(Event::AggregationApplied {
                round: round as u64,
                sim_s: self.clock.now_s(),
                updates: applied as u64,
                suppressed,
            });

            // Wall clock: the server waits for the slowest completer, or
            // the full deadline if anyone missed it — plus any backoff the
            // stall retries charged.
            let backoff_s = std::mem::take(&mut self.round_backoff_s);
            let any_miss = attempts.iter().any(|a| !a.completed && a.was_available);
            let max_complete = attempts
                .iter()
                .filter(|a| a.completed)
                .map(|a| a.duration_s)
                .fold(0.0f64, f64::max);
            let round_wall = if any_miss {
                self.config.deadline_s
            } else {
                max_complete.max(1.0)
            } + backoff_s;
            self.clock.advance(round_wall);
            self.sampler.charge_all();

            self.bookkeep_round(round, &attempts);
        }
    }

    // ------------------------------------------------------------------
    // Asynchronous engine (FedBuff)
    // ------------------------------------------------------------------

    fn run_async(&mut self) {
        // Event-driven: each in-flight client has an absolute finish time;
        // aggregation fires whenever `async_buffer` updates are buffered.
        #[derive(PartialEq)]
        struct Finish {
            at_s: f64,
            client: usize,
            completed: bool,
            attempt_idx: usize,
        }
        impl Eq for Finish {}
        impl Ord for Finish {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap on time. Finish times are sums of finite
                // simulated durations, so `total_cmp` orders exactly like
                // the old partial comparator while staying total.
                other
                    .at_s
                    .total_cmp(&self.at_s)
                    .then(other.client.cmp(&self.client))
            }
        }
        impl PartialOrd for Finish {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap: BinaryHeap<Finish> = BinaryHeap::new();
        let mut attempts_store: Vec<Attempt> = Vec::new();
        let mut buffer: Vec<PendingUpdate> = Vec::new();
        let mut agg_count: u64 = 0;
        let mut round_attempts: Vec<usize> = Vec::new(); // indices into attempts_store
                                                         // Launch-time aggregation count per in-flight attempt, to compute
                                                         // staleness on arrival.
        let mut launch_agg: Vec<u64> = Vec::new();

        let mut scratches = self.worker_scratches();
        for agg_round in 0..self.config.rounds {
            // Event loop: keep the in-flight set topped up continuously
            // (FedBuff never waits to relaunch) and drain completion
            // events until the aggregation buffer fills.
            self.refresh_eligible(agg_round);
            // The global model only changes at aggregation boundaries, so
            // one parameter readback serves every launch batch in between.
            let global_params = self.global_model.params();
            let mut round_started = false;
            loop {
                let mut launched = std::mem::take(&mut self.cohort_buf);
                self.select_cohort(agg_round, self.config.cohort_size, &mut launched);
                if !round_started {
                    round_started = true;
                    self.obs.record(Event::RoundStart {
                        round: agg_round as u64,
                        sim_s: self.clock.now_s(),
                        eligible: self.record_eligible.unwrap_or(self.eligible_buf.len()) as u64,
                        selected: launched.len() as u64,
                    });
                }
                let batch =
                    self.run_attempts(agg_round, &launched, &global_params, &mut scratches, false);
                self.cohort_buf = launched;
                for a in batch {
                    // Completions arrive when the client finishes. A failed
                    // client never reports back, so its slot is only
                    // reclaimed when the server-side timeout (the round
                    // deadline) fires — this is what bounds FedBuff's
                    // relaunch churn to the paper's ~5x over-selection.
                    let slot_free_s = if a.completed {
                        a.duration_s.max(1.0)
                    } else {
                        self.config.deadline_s
                    };
                    let finish = Finish {
                        at_s: self.clock.now_s() + slot_free_s,
                        client: a.client,
                        completed: a.completed,
                        attempt_idx: attempts_store.len(),
                    };
                    launch_agg.push(agg_count);
                    attempts_store.push(a);
                    heap.push(finish);
                }
                if buffer.len() >= self.config.async_buffer {
                    break;
                }
                let Some(ev) = heap.pop() else { break };
                let dt = (ev.at_s - self.clock.now_s()).max(0.0);
                self.clock.advance(dt);
                let attempt = &attempts_store[ev.attempt_idx];
                let duration_s = self.feedback_duration_s(attempt);
                // Free the slot in the FedBuff selector.
                self.selector.feedback(
                    agg_round,
                    &[SelectionFeedback {
                        client: ev.client,
                        completed: ev.completed,
                        duration_s,
                        utility: attempt.utility,
                        was_available: attempt.was_available,
                        quarantined: attempt.quarantined,
                    }],
                );
                round_attempts.push(ev.attempt_idx);
                if ev.completed {
                    let duplicate = attempts_store[ev.attempt_idx].duplicate;
                    if let Some(mut u) = attempts_store[ev.attempt_idx].update.take() {
                        u.staleness = agg_count - launch_agg[ev.attempt_idx];
                        // An at-least-once transport delivers the update
                        // twice; both copies land in the buffer and the
                        // pre-aggregation dedup suppresses the extra one.
                        if duplicate {
                            buffer.push(u.clone());
                        }
                        buffer.push(u);
                    }
                }
            }
            if !buffer.is_empty() {
                let suppressed = dedup_updates(&mut buffer);
                self.report.duplicates_suppressed += suppressed;
                let mut global = self.global_model.params();
                let applied = self.server_optim.aggregate(&mut global, &buffer);
                self.global_model
                    .set_params(&global)
                    .expect("aggregation preserves parameter count");
                self.obs.record(Event::AggregationApplied {
                    round: agg_round as u64,
                    sim_s: self.clock.now_s(),
                    updates: applied as u64,
                    suppressed,
                });
                buffer.clear();
                agg_count += 1;
            }
            self.sampler.charge_all();

            let round_atts: Vec<&Attempt> =
                round_attempts.iter().map(|&i| &attempts_store[i]).collect();
            self.bookkeep_round_refs(agg_round, &round_atts);
            round_attempts.clear();
        }
    }

    // ------------------------------------------------------------------
    // Bookkeeping + finalization
    // ------------------------------------------------------------------

    fn bookkeep_round(&mut self, round: usize, attempts: &[Attempt]) {
        // Feed the synchronous selector.
        let fb: Vec<SelectionFeedback> = attempts
            .iter()
            .map(|a| SelectionFeedback {
                client: a.client,
                completed: a.completed,
                duration_s: self.feedback_duration_s(a),
                utility: a.utility,
                was_available: a.was_available,
                quarantined: a.quarantined,
            })
            .collect();
        self.selector.feedback(round, &fb);
        let refs: Vec<&Attempt> = attempts.iter().collect();
        self.bookkeep_round_refs(round, &refs);
    }

    fn bookkeep_round_refs(&mut self, round: usize, attempts: &[&Attempt]) {
        // Join the previous round's background evaluation (pipelined runs)
        // before this round's record is pushed — at most one evaluation is
        // ever in flight.
        self.resolve_pending_eval();
        let completed = attempts.iter().filter(|a| a.completed).count();
        let dropped = attempts.len() - completed;
        let quarantined = attempts.iter().filter(|a| a.quarantined).count();
        self.obs.record(Event::RoundEnd {
            round: round as u64,
            sim_s: self.clock.now_s(),
            completed: completed as u64,
            dropped: dropped as u64,
            quarantined: quarantined as u64,
        });
        if self.obs.enabled() {
            let utilization = if attempts.is_empty() {
                0.0
            } else {
                completed as f64 / attempts.len() as f64
            };
            let reg = self.obs.registry_mut();
            reg.observe("round_utilization", UTILIZATION_BUCKETS, utilization);
            reg.set_gauge("sim_clock_h", self.clock.now_s() / 3600.0);
        }
        for a in attempts {
            if a.completed {
                self.report.completed_count[a.client] += 1;
                self.report.total_completions += 1;
            } else {
                self.report.total_dropouts += 1;
            }
        }
        let rewards: Vec<f64> = attempts.iter().filter_map(|a| a.reward).collect();
        let mean_reward = if rewards.is_empty() {
            None
        } else {
            Some(rewards.iter().sum::<f64>() / rewards.len() as f64)
        };
        let is_eval =
            round.is_multiple_of(self.config.eval_every) || round + 1 == self.config.rounds;
        let mean_accuracy = if is_eval {
            if self.config.pipeline_rounds {
                // Overlap the evaluation with the next round's work; the
                // placeholder is patched when the thread joins.
                self.spawn_eval(self.report.rounds.len());
                None
            } else {
                let accs = self.eval_all_clients();
                Some(accs.iter().sum::<f64>() / accs.len().max(1) as f64)
            }
        } else {
            None
        };
        self.report.rounds.push(RoundRecord {
            round,
            selected: attempts.len(),
            completed,
            dropped,
            quarantined,
            clock_s: self.clock.now_s(),
            mean_accuracy,
            mean_reward,
            eligible: self.record_eligible,
        });
    }

    fn finalize(mut self) -> ExperimentReport {
        self.resolve_pending_eval();
        let accs = self.eval_all_clients();
        self.report.accuracy = AccuracySummary::from_accuracies(&accs);
        self.report.client_accuracies = accs;
        self.report.resources = self.ledger.totals();
        self.report.wall_clock_h = self.clock.now_hours();
        if self.obs.enabled() {
            // The summary is all simulated-state data (event tallies +
            // registry snapshot), so embedding it keeps the report inside
            // the bit-identical determinism contract.
            self.report.telemetry = Some(self.obs.summary());
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(selector: SelectorChoice, accel: AccelMode, rounds: usize) -> ExperimentReport {
        let cfg = ExperimentConfig::small(selector, accel, rounds);
        Experiment::new(cfg).expect("valid config").run()
    }

    #[test]
    fn sync_baseline_runs_and_reports() {
        let r = run_small(SelectorChoice::FedAvg, AccelMode::Off, 8);
        assert_eq!(r.rounds.len(), 8);
        assert_eq!(r.client_accuracies.len(), 40);
        assert!(r.total_completions + r.total_dropouts > 0);
        assert!(r.wall_clock_h > 0.0);
        // Selected counts sum to rounds * cohort.
        let total_selected: u64 = r.selected_count.iter().sum();
        assert_eq!(total_selected, 8 * 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_small(SelectorChoice::FedAvg, AccelMode::Rlhf, 5);
        let b = run_small(SelectorChoice::FedAvg, AccelMode::Rlhf, 5);
        assert_eq!(a.total_dropouts, b.total_dropouts);
        assert_eq!(a.client_accuracies, b.client_accuracies);
        assert_eq!(a.selected_count, b.selected_count);
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let r = run_small(SelectorChoice::FedAvg, AccelMode::Off, 20);
        let evals: Vec<(usize, f64)> = r
            .rounds
            .iter()
            .filter_map(|x| x.mean_accuracy.map(|a| (x.round, a)))
            .collect();
        assert!(evals.len() >= 2);
        let first = evals.first().expect("has evals").1;
        let last = evals.last().expect("has evals").1;
        assert!(
            last > first + 0.05,
            "no learning: first {first} last {last}"
        );
    }

    #[test]
    fn fedbuff_async_engine_runs() {
        let r = run_small(SelectorChoice::FedBuff, AccelMode::Off, 6);
        assert_eq!(r.rounds.len(), 6);
        assert!(r.total_completions > 0, "no async completions");
    }

    #[test]
    fn rlhf_reduces_dropouts_vs_vanilla() {
        let off = run_small(SelectorChoice::FedAvg, AccelMode::Off, 15);
        let rlhf = run_small(SelectorChoice::FedAvg, AccelMode::Rlhf, 15);
        assert!(
            rlhf.total_dropouts < off.total_dropouts,
            "rlhf {} vs off {} dropouts",
            rlhf.total_dropouts,
            off.total_dropouts
        );
    }

    #[test]
    fn static_mode_uses_single_technique() {
        let r = run_small(SelectorChoice::FedAvg, AccelMode::Static(4), 5); // Prune75
        assert_eq!(r.technique_stats.len(), 1);
        assert!(r.technique_stats.contains_key("prune75"));
    }

    #[test]
    fn heuristic_mode_uses_rule_pools_only() {
        let r = run_small(SelectorChoice::FedAvg, AccelMode::Heuristic, 6);
        for name in r.technique_stats.keys() {
            assert!(
                [
                    "prune75",
                    "partial75",
                    "quant8",
                    "quant16",
                    "partial25",
                    "prune25"
                ]
                .contains(&name.as_str()),
                "unexpected technique {name}"
            );
        }
    }

    #[test]
    fn agent_transfer_roundtrip() {
        let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 6);
        let mut exp = Experiment::new(cfg).expect("valid");
        let agent = exp.take_agent().expect("agent exists");
        let mut exp2 = Experiment::new(ExperimentConfig::small(
            SelectorChoice::Oort,
            AccelMode::Rlhf,
            4,
        ))
        .expect("valid");
        exp2.install_pretrained_agent(agent);
        let r = exp2.run();
        assert_eq!(r.rounds.len(), 4);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 5);
        cfg.cohort_size = 0;
        assert!(Experiment::new(cfg).is_err());
    }

    /// `eval_sample == num_clients` must take the full-population path and
    /// reproduce the default report bit for bit — sampling only changes
    /// the eval set when it is a strict subset.
    #[test]
    fn full_eval_sample_is_bit_identical_to_default() {
        let base = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 6);
        let mut sampled = base;
        sampled.eval_sample = base.num_clients;
        let a = Experiment::new(base).expect("valid").run();
        let b = Experiment::new(sampled).expect("valid").run();
        assert_eq!(a, b, "eval_sample == num_clients changed the report");
    }

    /// A strict eval subset evaluates exactly `eval_sample` clients,
    /// deterministically, without touching the training trajectory.
    #[test]
    fn sampled_eval_is_deterministic_and_sized() {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 6);
        cfg.eval_sample = 7;
        let a = Experiment::new(cfg).expect("valid").run();
        let b = Experiment::new(cfg).expect("valid").run();
        assert_eq!(a, b);
        assert_eq!(a.client_accuracies.len(), 7);
        // The training trajectory is eval-independent: selection and
        // dropout counters match the full-eval run exactly.
        let full = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 6);
        let f = Experiment::new(full).expect("valid").run();
        assert_eq!(a.selected_count, f.selected_count);
        assert_eq!(a.total_dropouts, f.total_dropouts);
    }

    /// Shard-cache capacity is a memory knob, never a results knob: an
    /// explicit tiny capacity (forcing evictions) must reproduce the
    /// auto-capacity report bit for bit.
    #[test]
    fn shard_cache_capacity_does_not_change_results() {
        let auto = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Rlhf, 6);
        let mut tiny = auto;
        tiny.shard_cache = auto.cohort_size; // smallest legal capacity
        let (a, a_stats) = Experiment::new(auto).expect("valid").run_with_cache_stats();
        let (b, b_stats) = Experiment::new(tiny).expect("valid").run_with_cache_stats();
        assert_eq!(a, b, "cache capacity changed the report");
        assert!(b_stats.evictions > 0, "tiny cache never evicted");
        assert!(b_stats.peak_resident <= b_stats.capacity);
        assert!(a_stats.peak_resident <= a_stats.capacity);
    }

    #[test]
    fn chaos_sync_run_is_finite_and_accounts_faults() {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 10);
        cfg.fault_plan = float_sim::FaultPlan::chaos();
        let r = Experiment::new(cfg).expect("valid config").run();
        assert!(r.is_finite(), "report carries NaN/Inf under faults");
        assert_eq!(
            r.total_quarantined, r.resources.quarantined,
            "report and ledger disagree on quarantine count"
        );
        assert!(
            r.total_quarantined > 0,
            "5% corrupt rate over 100 attempts should quarantine something"
        );
        assert!(r.duplicates_suppressed > 0, "no duplicates suppressed");
        assert!(r.stall_retries > 0, "no stall retries issued");
        let round_quarantines: usize = r.rounds.iter().map(|x| x.quarantined).sum();
        assert_eq!(round_quarantines as u64, r.total_quarantined);
    }

    #[test]
    fn chaos_async_run_is_finite() {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Off, 6);
        cfg.fault_plan = float_sim::FaultPlan::chaos();
        let r = Experiment::new(cfg).expect("valid config").run();
        assert!(r.is_finite(), "async report carries NaN/Inf under faults");
        assert_eq!(r.total_quarantined, r.resources.quarantined);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Rlhf, 6);
        cfg.fault_plan = float_sim::FaultPlan::chaos();
        let a = Experiment::new(cfg).expect("valid").run();
        let b = Experiment::new(cfg).expect("valid").run();
        assert_eq!(a, b);
    }

    /// Count ClientOutcome events matching `pred`.
    fn count_outcomes(
        events: &[float_obs::Event],
        pred: impl Fn(float_obs::OutcomeKind, u64) -> bool,
    ) -> u64 {
        events
            .iter()
            .filter(|e| {
                matches!(e, float_obs::Event::ClientOutcome { outcome, attempt, .. }
                    if pred(*outcome, *attempt))
            })
            .count() as u64
    }

    #[test]
    fn telemetry_is_pure_observation_under_chaos() {
        // Turning telemetry on must not change a single bit of the report
        // (beyond carrying the summary), even under the chaos fault plan.
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 8);
        cfg.fault_plan = float_sim::FaultPlan::chaos();
        let base = Experiment::new(cfg).expect("valid").run();
        let mut cfg_obs = cfg;
        cfg_obs.obs = float_obs::ObsConfig::on();
        let (report, telemetry) = Experiment::new(cfg_obs).expect("valid").run_traced();
        let mut stripped = report.clone();
        stripped.telemetry = None;
        assert_eq!(stripped, base, "telemetry perturbed the run");
        assert_eq!(
            report.telemetry.as_ref().expect("summary embedded"),
            &telemetry.summary,
            "embedded summary must match the returned telemetry"
        );
        assert!(telemetry.summary.events_dropped == 0);
        assert_eq!(
            telemetry.summary.events_recorded as usize,
            telemetry.events.len()
        );
    }

    #[test]
    fn sync_event_stream_reconciles_with_ledger_and_report() {
        use float_obs::OutcomeKind;
        let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Rlhf, 10);
        cfg.fault_plan = float_sim::FaultPlan::chaos();
        cfg.obs = float_obs::ObsConfig::on();
        let (report, telemetry) = Experiment::new(cfg).expect("valid").run_traced();
        let events = &telemetry.events;
        // Ledger counts every committed attempt; so does the event stream.
        let completions = count_outcomes(events, |k, _| k.is_completion());
        let dropouts = count_outcomes(events, |k, _| !k.is_completion());
        let quarantined = count_outcomes(events, |k, _| k == OutcomeKind::Quarantined);
        assert_eq!(completions, report.resources.completions);
        assert_eq!(dropouts, report.resources.dropouts);
        assert_eq!(quarantined, report.resources.quarantined);
        assert_eq!(quarantined, report.total_quarantined);
        // Retries carry attempt > 0; the sync engine's retry counter
        // matches them one-for-one.
        let retries = count_outcomes(events, |_, attempt| attempt > 0);
        assert_eq!(retries, report.stall_retries);
        assert!(retries > 0, "chaos plan should force retries");
        // Every duplicate outcome is suppressed by dedup the same round.
        let duplicates = count_outcomes(events, |k, _| k == OutcomeKind::Duplicate);
        assert_eq!(duplicates, report.duplicates_suppressed);
        // Aggregation events account for every suppression too.
        let suppressed: u64 = events
            .iter()
            .filter_map(|e| match e {
                float_obs::Event::AggregationApplied { suppressed, .. } => Some(*suppressed),
                _ => None,
            })
            .sum();
        assert_eq!(suppressed, report.duplicates_suppressed);
        // Round-end events mirror the per-round report records exactly.
        let round_ends: Vec<(u64, u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                float_obs::Event::RoundEnd {
                    completed,
                    dropped,
                    quarantined,
                    ..
                } => Some((*completed, *dropped, *quarantined)),
                _ => None,
            })
            .collect();
        assert_eq!(round_ends.len(), report.rounds.len());
        for (ends, rec) in round_ends.iter().zip(&report.rounds) {
            assert_eq!(ends.0 as usize, rec.completed);
            assert_eq!(ends.1 as usize, rec.dropped);
            assert_eq!(ends.2 as usize, rec.quarantined);
        }
        // One decision per planned (non-retry) attempt.
        let decisions = telemetry.summary.event_count("accel_decision");
        let planned = count_outcomes(events, |_, attempt| attempt == 0);
        assert_eq!(decisions, planned);
    }

    #[test]
    fn async_event_stream_counts_committed_attempts() {
        let mut cfg = ExperimentConfig::small(SelectorChoice::FedBuff, AccelMode::Off, 6);
        cfg.fault_plan = float_sim::FaultPlan::chaos();
        cfg.obs = float_obs::ObsConfig::on();
        let (report, telemetry) = Experiment::new(cfg).expect("valid").run_traced();
        // The async engine commits attempts at launch, so the ledger and
        // the event stream agree even though some attempts are still
        // in-flight at run end (those never reach the per-round report).
        let completions = count_outcomes(&telemetry.events, |k, _| k.is_completion());
        let dropouts = count_outcomes(&telemetry.events, |k, _| !k.is_completion());
        assert_eq!(completions, report.resources.completions);
        assert_eq!(dropouts, report.resources.dropouts);
        assert!(completions >= report.total_completions);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        // FaultPlan::none() must be a true no-op: same results as a config
        // that never heard of fault injection.
        let cfg = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Rlhf, 5);
        let mut cfg_faultless = cfg;
        cfg_faultless.fault_plan = float_sim::FaultPlan::none();
        let a = Experiment::new(cfg).expect("valid").run();
        let b = Experiment::new(cfg_faultless).expect("valid").run();
        assert_eq!(a, b);
        assert_eq!(a.total_quarantined, 0);
        assert_eq!(a.stall_retries, 0);
        assert_eq!(a.duplicates_suppressed, 0);
    }
}
