//! Server-side aggregation optimizers (the FedOpt family).
//!
//! FedAvg applies the weighted-mean client delta directly; the adaptive
//! members keep first/second-moment state over the *aggregated delta*
//! (never per-client state), exactly as Reddi et al.'s FedOpt framework
//! prescribes:
//!
//! ```text
//! m_{t+1} = β₁·m_t + (1-β₁)·Δ_t            (FedAdam / FedYogi)
//! v_{t+1} = β₂·v_t + (1-β₂)·Δ_t²            (FedAdam)
//! v_{t+1} = v_t − (1-β₂)·Δ_t²·sign(v_t−Δ_t²) (FedYogi)
//! w_{t+1} = w_t + η·m_{t+1}/(√v_{t+1} + τ)
//! ```
//!
//! FedAvgM is classical server momentum (`m ← β₁·m + Δ; w ← w + η·m`).
//!
//! Determinism contract: optimizer state is mutated only in the
//! sequential commit phase (both engines call [`ServerOptimizer::apply`]
//! from their aggregation step), all accumulation runs in `f64` in
//! parameter order, and [`ServerOptimizerChoice::FedAvg`] reproduces the
//! historical direct-apply path bit for bit — see `DESIGN.md` §Server
//! optimizer layer.

use serde::{Deserialize, Serialize};

use crate::aggregate::{weighted_mean_delta, PendingUpdate};

/// Which server-side optimizer folds the aggregated delta into the
/// global model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerOptimizerChoice {
    /// Direct application of the weighted-mean delta (the historical
    /// path, bit-identical to pre-optimizer reports).
    FedAvg,
    /// Server momentum over the aggregated delta.
    FedAvgM,
    /// Adam at the server (FedOpt).
    FedAdam,
    /// Yogi at the server: additive, sign-controlled second moment —
    /// more stable than Adam when deltas are sparse or bursty.
    FedYogi,
}

impl ServerOptimizerChoice {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServerOptimizerChoice::FedAvg => "fedavg",
            ServerOptimizerChoice::FedAvgM => "fedavgm",
            ServerOptimizerChoice::FedAdam => "fedadam",
            ServerOptimizerChoice::FedYogi => "fedyogi",
        }
    }

    /// All four optimizers, in comparison-grid order.
    pub const ALL: [ServerOptimizerChoice; 4] = [
        ServerOptimizerChoice::FedAvg,
        ServerOptimizerChoice::FedAvgM,
        ServerOptimizerChoice::FedAdam,
        ServerOptimizerChoice::FedYogi,
    ];
}

/// Hyperparameters of the server optimizer. The defaults select
/// [`ServerOptimizerChoice::FedAvg`], so configurations that never heard
/// of this struct (old JSON, existing presets) keep their exact
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerOptimConfig {
    /// Which optimizer runs at the server.
    pub optimizer: ServerOptimizerChoice,
    /// Server learning rate `η`. Ignored by FedAvg (whose step is the
    /// raw mean delta); `1.0` keeps the adaptive members on the same
    /// scale as FedAvg.
    pub server_lr: f64,
    /// First-moment coefficient `β₁` (FedAvgM momentum / Adam / Yogi).
    pub beta1: f64,
    /// Second-moment coefficient `β₂` (FedAdam / FedYogi).
    pub beta2: f64,
    /// Adaptivity floor `τ` added to `√v` — bounds the effective
    /// per-parameter learning rate at `η/τ`.
    pub tau: f64,
}

impl Default for ServerOptimConfig {
    fn default() -> Self {
        ServerOptimConfig {
            optimizer: ServerOptimizerChoice::FedAvg,
            server_lr: 1.0,
            beta1: 0.9,
            beta2: 0.99,
            tau: 1e-3,
        }
    }
}

impl ServerOptimConfig {
    /// A preset for `optimizer` with the default hyperparameters.
    pub fn with(optimizer: ServerOptimizerChoice) -> Self {
        ServerOptimConfig {
            optimizer,
            ..Default::default()
        }
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, carrying
    /// the offending value.
    pub fn validate(&self) -> Result<(), String> {
        if self.server_lr <= 0.0 || !self.server_lr.is_finite() {
            return Err(format!(
                "server_optim.server_lr {} must be positive and finite",
                self.server_lr
            ));
        }
        if !(0.0..1.0).contains(&self.beta1) {
            return Err(format!(
                "server_optim.beta1 {} must be in [0, 1)",
                self.beta1
            ));
        }
        if !(0.0..1.0).contains(&self.beta2) {
            return Err(format!(
                "server_optim.beta2 {} must be in [0, 1)",
                self.beta2
            ));
        }
        if self.tau <= 0.0 || !self.tau.is_finite() {
            return Err(format!(
                "server_optim.tau {} must be positive and finite",
                self.tau
            ));
        }
        Ok(())
    }
}

/// The server optimizer: configuration plus moment buffers, lazily sized
/// to the model on first use. Owned by the experiment and only ever
/// touched from the sequential commit phase, so its state trajectory is
/// identical for any worker-thread count.
#[derive(Debug, Clone)]
pub struct ServerOptimizer {
    cfg: ServerOptimConfig,
    /// First moment `m` (FedAvgM / FedAdam / FedYogi). Empty until the
    /// first aggregation.
    momentum: Vec<f64>,
    /// Second moment `v` (FedAdam / FedYogi). Empty until the first
    /// aggregation.
    second: Vec<f64>,
}

impl ServerOptimizer {
    /// Build an optimizer from its configuration.
    pub fn new(cfg: ServerOptimConfig) -> Self {
        ServerOptimizer {
            cfg,
            momentum: Vec::new(),
            second: Vec::new(),
        }
    }

    /// The configuration this optimizer runs with.
    pub fn config(&self) -> &ServerOptimConfig {
        &self.cfg
    }

    /// Aggregate `updates` into `global` through the configured
    /// optimizer: compute the staleness-discounted weighted-mean delta,
    /// then fold it in via [`ServerOptimizer::apply`].
    ///
    /// Returns the number of updates actually applied — `0` when the
    /// batch is empty or carries no aggregate weight, in which case
    /// `global` and the optimizer state are untouched.
    ///
    /// # Panics
    ///
    /// Panics if an update's delta length differs from `global.len()`.
    pub fn aggregate(&mut self, global: &mut [f32], updates: &[PendingUpdate]) -> usize {
        let Some(delta) = weighted_mean_delta(global.len(), updates) else {
            return 0;
        };
        self.apply(global, &delta);
        updates.len()
    }

    /// Apply one aggregated mean delta to the global parameters,
    /// advancing the moment buffers. FedAvg performs exactly the
    /// historical `g += delta as f32` walk, so selecting it reproduces
    /// pre-optimizer reports bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != global.len()`.
    pub fn apply(&mut self, global: &mut [f32], delta: &[f64]) {
        assert_eq!(
            delta.len(),
            global.len(),
            "aggregated delta length {} does not match the model's {}",
            delta.len(),
            global.len()
        );
        let ServerOptimConfig {
            optimizer,
            server_lr: eta,
            beta1,
            beta2,
            tau,
        } = self.cfg;
        match optimizer {
            ServerOptimizerChoice::FedAvg => {
                for (g, d) in global.iter_mut().zip(delta) {
                    *g += *d as f32;
                }
            }
            ServerOptimizerChoice::FedAvgM => {
                self.ensure_momentum(global.len());
                for ((g, d), m) in global.iter_mut().zip(delta).zip(&mut self.momentum) {
                    *m = beta1 * *m + *d;
                    *g = (f64::from(*g) + eta * *m) as f32;
                }
            }
            ServerOptimizerChoice::FedAdam => {
                self.ensure_momentum(global.len());
                self.ensure_second(global.len());
                for (((g, d), m), v) in global
                    .iter_mut()
                    .zip(delta)
                    .zip(&mut self.momentum)
                    .zip(&mut self.second)
                {
                    *m = beta1 * *m + (1.0 - beta1) * *d;
                    *v = beta2 * *v + (1.0 - beta2) * *d * *d;
                    *g = (f64::from(*g) + eta * *m / (v.sqrt() + tau)) as f32;
                }
            }
            ServerOptimizerChoice::FedYogi => {
                self.ensure_momentum(global.len());
                self.ensure_second(global.len());
                for (((g, d), m), v) in global
                    .iter_mut()
                    .zip(delta)
                    .zip(&mut self.momentum)
                    .zip(&mut self.second)
                {
                    *m = beta1 * *m + (1.0 - beta1) * *d;
                    let d2 = *d * *d;
                    *v -= (1.0 - beta2) * d2 * (*v - d2).signum();
                    *g = (f64::from(*g) + eta * *m / (v.sqrt().max(0.0) + tau)) as f32;
                }
            }
        }
    }

    /// Snapshot of the moment buffers (momentum, second moment) for
    /// determinism tests; empty until the optimizer first applies.
    pub fn state(&self) -> (&[f64], &[f64]) {
        (&self.momentum, &self.second)
    }

    fn ensure_momentum(&mut self, n: usize) {
        if self.momentum.len() != n {
            self.momentum = vec![0.0; n];
        }
    }

    fn ensure_second(&mut self, n: usize) {
        if self.second.len() != n {
            self.second = vec![0.0; n];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;

    fn upd(client: usize, delta: Vec<f32>, samples: usize) -> PendingUpdate {
        PendingUpdate {
            client,
            delta,
            samples,
            staleness: 0,
        }
    }

    #[test]
    fn default_config_is_fedavg_and_validates() {
        let cfg = ServerOptimConfig::default();
        assert_eq!(cfg.optimizer, ServerOptimizerChoice::FedAvg);
        cfg.validate().expect("default must validate");
    }

    #[test]
    fn validation_messages_carry_offending_values() {
        let cfg = ServerOptimConfig {
            server_lr: -0.25,
            ..ServerOptimConfig::default()
        };
        let err = cfg.validate().expect_err("bad lr");
        assert!(err.contains("-0.25"), "message: {err}");
        let cfg = ServerOptimConfig {
            beta1: 1.5,
            ..ServerOptimConfig::default()
        };
        let err = cfg.validate().expect_err("bad beta1");
        assert!(err.contains("1.5"), "message: {err}");
        let cfg = ServerOptimConfig {
            beta2: -0.1,
            ..ServerOptimConfig::default()
        };
        let err = cfg.validate().expect_err("bad beta2");
        assert!(err.contains("-0.1"), "message: {err}");
        let cfg = ServerOptimConfig {
            tau: f64::NAN,
            ..ServerOptimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fedavg_choice_matches_plain_aggregate_bitwise() {
        let updates = vec![
            upd(0, vec![0.125, -3.5, 0.7], 30),
            upd(1, vec![-0.25, 1.1, 0.01], 10),
            upd(2, vec![9.75, 0.333, -2.25], 17),
        ];
        let mut direct = vec![0.5f32, -1.25, 2.0];
        let n_direct = aggregate(&mut direct, &updates);
        let mut through = vec![0.5f32, -1.25, 2.0];
        let mut opt = ServerOptimizer::new(ServerOptimConfig::default());
        let n_through = opt.aggregate(&mut through, &updates);
        assert_eq!(n_direct, n_through);
        assert_eq!(
            direct.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            through.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "FedAvg through the optimizer drifted from the direct path"
        );
        // FedAvg keeps no moment state.
        assert!(opt.state().0.is_empty() && opt.state().1.is_empty());
    }

    #[test]
    fn fedavgm_momentum_accumulates_across_rounds() {
        let mut opt = ServerOptimizer::new(ServerOptimConfig {
            optimizer: ServerOptimizerChoice::FedAvgM,
            server_lr: 1.0,
            beta1: 0.5,
            ..Default::default()
        });
        let mut g = vec![0.0f32];
        opt.apply(&mut g, &[1.0]); // m = 1, g = 1
        assert!((g[0] - 1.0).abs() < 1e-6);
        opt.apply(&mut g, &[1.0]); // m = 1.5, g = 2.5
        assert!((g[0] - 2.5).abs() < 1e-6, "momentum lost: {}", g[0]);
    }

    #[test]
    fn fedadam_step_is_bounded_by_lr_over_tau() {
        let mut opt = ServerOptimizer::new(ServerOptimConfig {
            optimizer: ServerOptimizerChoice::FedAdam,
            server_lr: 0.1,
            tau: 1e-3,
            ..Default::default()
        });
        let mut g = vec![0.0f32];
        for _ in 0..100 {
            opt.apply(&mut g, &[1000.0]);
        }
        // η/τ bounds each per-parameter step; 100 steps stay under 100·η/τ.
        assert!(g[0].is_finite());
        assert!(g[0] <= 100.0 * 0.1 / 1e-3 + 1.0, "unbounded step: {}", g[0]);
    }

    #[test]
    fn fedyogi_second_moment_moves_toward_delta_square() {
        let cfg = ServerOptimConfig {
            optimizer: ServerOptimizerChoice::FedYogi,
            ..Default::default()
        };
        let mut opt = ServerOptimizer::new(cfg);
        let mut g = vec![0.0f32];
        for _ in 0..200 {
            opt.apply(&mut g, &[2.0]);
        }
        let (_, v) = opt.state();
        // Yogi's additive update converges v toward Δ² = 4 from below.
        assert!((v[0] - 4.0).abs() < 0.5, "v = {}", v[0]);
        assert!(g[0].is_finite());
    }

    #[test]
    fn adaptive_optimizers_are_deterministic() {
        for choice in ServerOptimizerChoice::ALL {
            let cfg = ServerOptimConfig::with(choice);
            let updates = vec![upd(0, vec![0.3, -0.7], 12), upd(1, vec![1.5, 0.2], 5)];
            let run = || {
                let mut opt = ServerOptimizer::new(cfg);
                let mut g = vec![0.1f32, -0.2];
                for _ in 0..5 {
                    opt.aggregate(&mut g, &updates);
                }
                g.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(run(), run(), "{choice:?} not deterministic");
        }
    }

    #[test]
    fn empty_batch_applies_nothing_and_reports_zero() {
        for choice in ServerOptimizerChoice::ALL {
            let mut opt = ServerOptimizer::new(ServerOptimConfig::with(choice));
            let mut g = vec![1.0f32, 2.0];
            assert_eq!(opt.aggregate(&mut g, &[]), 0);
            assert_eq!(g, vec![1.0, 2.0], "{choice:?} moved on empty batch");
            assert!(opt.state().0.is_empty(), "{choice:?} grew state");
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_delta_panics() {
        let mut opt = ServerOptimizer::new(ServerOptimConfig::with(ServerOptimizerChoice::FedAdam));
        let mut g = vec![0.0f32; 2];
        opt.apply(&mut g, &[1.0]);
    }
}
