//! Shared-population trial execution — the `float-core` half of the sweep
//! orchestrator.
//!
//! A sweep runs many [`ExperimentConfig`] variations over *one*
//! population: same task, client count, data skew, and trace calendar,
//! differing only in runtime knobs (cohort size, deadline, local epochs,
//! selector, optimizer, accel policy). Building each trial independently
//! would re-derive the population's two expensive artifacts once per
//! trial:
//!
//! - the client shards (one synthetic-sampler pass per touched client),
//! - the availability calendar ([`ResourceSampler::build_index`], the
//!   sampler's only O(population) pass) plus the full-sweep availability
//!   models.
//!
//! [`SharedPopulation`] builds each exactly once and hands every trial a
//! cheap handle: shards through one sweep-wide
//! [`SharedShardCache`](float_data::SharedShardCache) (derive-once,
//! `Arc`-served), the calendar as a clone of the pre-built index (a
//! memcpy, not a re-derivation). Sharing is value-transparent because
//! every artifact is a pure function of `(population config, population
//! seed)` — a trial built through [`Experiment::new_shared`] produces a
//! report bit-identical to the same config built standalone, a contract
//! pinned by tests and the `sweepexp` self-check.
//!
//! The seed split that makes this work: trials set `seed =
//! split_seed(root, trial_idx)` for independent runtime randomness and
//! `data_seed = root` so the population stays common — see
//! [`ExperimentConfig::data_seed`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use float_data::federated::FederatedConfig;
use float_data::{ShardCacheStats, ShardSpec, SharedShardCache};
use float_obs::Telemetry;
use float_tensor::rng::split_seed;
use float_traces::{AvailabilityIndex, AvailabilityModel, ResourceSampler};

use crate::config::ExperimentConfig;
use crate::metrics::ExperimentReport;
use crate::runtime::Experiment;

/// One population's shared read-only artifacts, built once per sweep and
/// handed to every trial over that population.
pub struct SharedPopulation {
    /// The dataset parameters the shard spec was built from — trials must
    /// match these exactly (shards are a function of them).
    fed: FederatedConfig,
    /// The population seed the spec and calendar derive from.
    population_seed: u64,
    /// Sweep-wide shard store (derive-once, `Arc`-served).
    shards: Arc<SharedShardCache>,
    /// Pre-built availability calendar; trials clone it (cheap) instead
    /// of re-deriving it (O(population) model derivations).
    index: AvailabilityIndex,
    /// Full-sweep availability models, built on the first trial that
    /// needs them (candidate_pool == 0) and shared from then on.
    sweep_models: OnceLock<Arc<Vec<AvailabilityModel>>>,
    /// Trials attached so far (for amortization reporting).
    attached: AtomicU64,
}

impl SharedPopulation {
    /// Build the shared artifacts for `config`'s population. Only the
    /// population-defining fields matter: any trial whose
    /// [`ExperimentConfig::federated_config`] and
    /// [`ExperimentConfig::population_seed`] match can attach, whatever
    /// its runtime knobs.
    ///
    /// # Errors
    ///
    /// Returns the validation error string if `config` is invalid.
    pub fn build(config: &ExperimentConfig) -> Result<Self, String> {
        config.validate()?;
        let fed = config.federated_config();
        let pop_seed = config.population_seed();
        let spec = ShardSpec::new(fed, split_seed(pop_seed, 1));
        let index = ResourceSampler::build_index(config.num_clients, split_seed(pop_seed, 2));
        Ok(SharedPopulation {
            fed,
            population_seed: pop_seed,
            shards: Arc::new(SharedShardCache::new(spec)),
            index,
            sweep_models: OnceLock::new(),
            attached: AtomicU64::new(0),
        })
    }

    /// Whether `config` describes exactly the population these artifacts
    /// were built for.
    pub fn matches(&self, config: &ExperimentConfig) -> bool {
        config.federated_config() == self.fed && config.population_seed() == self.population_seed
    }

    /// [`SharedPopulation::matches`] as a `Result` with a diagnostic.
    pub(crate) fn check(&self, config: &ExperimentConfig) -> Result<(), String> {
        if !self.matches(config) {
            return Err(format!(
                "trial population (task {:?}, {} clients, mean_samples {}, alpha {:?}, \
                 population seed {}) does not match the shared population (task {:?}, \
                 {} clients, mean_samples {}, alpha {:?}, population seed {})",
                config.task,
                config.num_clients,
                config.mean_samples,
                config.alpha,
                config.population_seed(),
                self.fed.task,
                self.fed.num_clients,
                self.fed.mean_samples,
                self.fed.alpha,
                self.population_seed,
            ));
        }
        self.attached.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Handle to the sweep-wide shard store.
    pub(crate) fn shards(&self) -> Arc<SharedShardCache> {
        Arc::clone(&self.shards)
    }

    /// A sampler for one trial: the shared calendar cloned, the shared
    /// full-sweep models attached when the trial runs full availability
    /// sweeps (pooled trials skip them, mirroring the standalone path's
    /// O(population) avoidance).
    pub(crate) fn sampler_for(&self, config: &ExperimentConfig) -> ResourceSampler {
        let trace_seed = split_seed(self.population_seed, 2);
        let models = (config.candidate_pool == 0).then(|| {
            Arc::clone(self.sweep_models.get_or_init(|| {
                Arc::new(ResourceSampler::build_sweep_models(
                    self.fed.num_clients,
                    trace_seed,
                ))
            }))
        });
        ResourceSampler::with_shared(
            self.fed.num_clients,
            config.interference,
            trace_seed,
            self.index.clone(),
            models,
        )
    }

    /// Shard-store counters: `misses` is the number of shard derivations
    /// actually paid across *all* attached trials (at most one per
    /// client), `hits` the derivations avoided by sharing.
    pub fn shard_stats(&self) -> ShardCacheStats {
        self.shards.stats()
    }

    /// Trials attached so far. Each attached trial after the first saved
    /// one availability-calendar build and one shard-spec derivation.
    pub fn trials_attached(&self) -> u64 {
        self.attached.load(Ordering::Relaxed)
    }
}

/// Run one trial to completion: through `shared` handles when given (the
/// sweep path), standalone otherwise. Both paths produce bit-identical
/// reports for the same `config`.
///
/// # Errors
///
/// Propagates [`Experiment::new`] / [`Experiment::new_shared`] errors.
pub fn run_trial(
    config: ExperimentConfig,
    shared: Option<&SharedPopulation>,
) -> Result<ExperimentReport, String> {
    Ok(match shared {
        Some(sp) => Experiment::new_shared(config, sp)?.run(),
        None => Experiment::new(config)?.run(),
    })
}

/// [`run_trial`] with the telemetry stream attached (requires
/// `config.obs` enabled — the sweep's per-trial JSONL sink path).
///
/// # Errors
///
/// Propagates [`Experiment::new`] / [`Experiment::new_shared`] errors.
pub fn run_trial_traced(
    config: ExperimentConfig,
    shared: Option<&SharedPopulation>,
) -> Result<(ExperimentReport, Telemetry), String> {
    Ok(match shared {
        Some(sp) => Experiment::new_shared(config, sp)?.run_traced(),
        None => Experiment::new(config)?.run_traced(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccelMode, SelectorChoice};

    fn base() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small(SelectorChoice::Oort, AccelMode::Rlhf, 3);
        cfg.num_clients = 16;
        cfg.cohort_size = 4;
        cfg.mean_samples = 30;
        cfg.seed = 1234;
        cfg
    }

    #[test]
    fn shared_trial_matches_standalone_bit_for_bit() {
        let mut cfg = base();
        cfg.data_seed = 99;
        let shared = SharedPopulation::build(&cfg).expect("valid population");
        // Two knob variants, both sharing the population.
        for (cohort, epochs) in [(4usize, 1usize), (6, 2)] {
            let mut trial = cfg;
            trial.cohort_size = cohort;
            trial.local_epochs = epochs;
            trial.seed = split_seed(7, cohort as u64);
            let standalone = run_trial(trial, None).expect("standalone runs");
            let via_shared = run_trial(trial, Some(&shared)).expect("shared runs");
            assert_eq!(
                standalone, via_shared,
                "shared-handle trial diverged at cohort {cohort}"
            );
        }
        assert_eq!(shared.trials_attached(), 2);
        let stats = shared.shard_stats();
        assert!(stats.hits > 0, "second trial should hit the shared store");
        assert!(
            stats.misses <= cfg.num_clients as u64,
            "at most one derivation per client across the sweep"
        );
    }

    #[test]
    fn population_mismatch_is_rejected() {
        let cfg = base();
        let shared = SharedPopulation::build(&cfg).expect("valid population");
        let mut other = cfg;
        other.num_clients = 20;
        assert!(Experiment::new_shared(other, &shared).is_err());
        let mut reseeded = cfg;
        reseeded.seed = cfg.seed + 1; // population_seed follows seed here
        assert!(Experiment::new_shared(reseeded, &shared).is_err());
    }

    #[test]
    fn data_seed_zero_is_the_historical_path() {
        let cfg = base();
        let mut split = cfg;
        split.data_seed = cfg.seed; // explicit override equal to the root
        let a = run_trial(cfg, None).expect("runs");
        let b = run_trial(split, None).expect("runs");
        assert_eq!(a, b, "data_seed == seed must reproduce data_seed == 0");
    }

    #[test]
    fn data_seed_pins_population_across_runtime_seeds() {
        // Two trials with different root seeds but one data_seed must see
        // identical shards — proven indirectly: both attach to the same
        // SharedPopulation and reproduce their standalone reports.
        let mut cfg = base();
        cfg.data_seed = 555;
        let shared = SharedPopulation::build(&cfg).expect("valid population");
        for s in [1u64, 2] {
            let mut trial = cfg;
            trial.seed = s;
            let standalone = run_trial(trial, None).expect("runs");
            let via_shared = run_trial(trial, Some(&shared)).expect("runs");
            assert_eq!(standalone, via_shared);
        }
    }
}
