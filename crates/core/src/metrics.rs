//! Evaluation metrics matching the paper (§6.1 "Metrics"): top-10 % /
//! average / bottom-10 % client accuracy, dropout counts, per-technique
//! success/failure statistics, and resource-inefficiency totals.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use float_accel::AccelAction;
use float_obs::TelemetrySummary;
use float_sim::LedgerTotals;

/// Summary of per-client accuracies: the paper's three-way split designed
/// to expose selection bias (top clients fine, bottom clients starved).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySummary {
    /// Mean accuracy of the best-performing 10 % of clients.
    pub top10: f64,
    /// Mean accuracy across all clients.
    pub mean: f64,
    /// Mean accuracy of the worst-performing 10 % of clients.
    pub bottom10: f64,
}

impl AccuracySummary {
    /// Compute the three-way summary from per-client accuracies.
    ///
    /// Empty input yields all zeros. The decile is at least one client.
    pub fn from_accuracies(accs: &[f64]) -> Self {
        if accs.is_empty() {
            return AccuracySummary {
                top10: 0.0,
                mean: 0.0,
                bottom10: 0.0,
            };
        }
        let mut sorted = accs.to_vec();
        // total_cmp gives a real total order: NaNs sort to the top instead
        // of freezing wherever the comparison happened to see them, so a
        // poisoned accuracy cannot scramble the deciles.
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let decile = (n / 10).max(1);
        let bottom10 = sorted[..decile].iter().sum::<f64>() / decile as f64;
        let top10 = sorted[n - decile..].iter().sum::<f64>() / decile as f64;
        let mean = sorted.iter().sum::<f64>() / n as f64;
        AccuracySummary {
            top10,
            mean,
            bottom10,
        }
    }
}

/// Success / failure counts of one acceleration technique (Fig. 6 and 11,
/// right panels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TechniqueStats {
    /// Client-rounds where the technique was applied and the client
    /// completed.
    pub successes: u64,
    /// Client-rounds where the technique was applied and the client
    /// dropped.
    pub failures: u64,
}

impl TechniqueStats {
    /// Success rate in `[0, 1]`; `0.0` when never applied.
    pub fn success_rate(&self) -> f64 {
        let total = self.successes + self.failures;
        if total == 0 {
            0.0
        } else {
            self.successes as f64 / total as f64
        }
    }

    /// Fold another technique's counts into this one (combining reports
    /// from sharded or repeated runs).
    pub fn merge(&mut self, other: &TechniqueStats) {
        self.successes += other.successes;
        self.failures += other.failures;
    }
}

/// One row of the per-round log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round (or async aggregation) index.
    pub round: usize,
    /// Clients tasked this round.
    pub selected: usize,
    /// Clients whose updates were aggregated.
    pub completed: usize,
    /// Clients that dropped.
    pub dropped: usize,
    /// Of the dropped clients, how many were quarantined by payload
    /// validation (subset of `dropped`).
    #[serde(default)]
    pub quarantined: usize,
    /// Virtual wall-clock at the end of the round, seconds.
    pub clock_s: f64,
    /// Mean client accuracy, if this was an evaluation round.
    pub mean_accuracy: Option<f64>,
    /// Mean RLHF reward over the round's feedback events (None when the
    /// agent is off).
    pub mean_reward: Option<f64>,
    /// Exact number of eligible clients this round (diurnally available ∩
    /// battery-admitted), maintained incrementally by the availability
    /// index. Only populated under candidate pooling
    /// (`ExperimentConfig::candidate_pool > 0`) — it is the truthful
    /// population-wide count, *never* the pool size. `None` on full-sweep
    /// runs, whose round logs stay byte-identical to pre-pool reports.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eligible: Option<usize>,
}

/// Full result of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Label, e.g. `"float-rlhf(fedavg)/femnist"`.
    pub label: String,
    /// Final accuracy summary over all clients.
    pub accuracy: AccuracySummary,
    /// Per-client final accuracies (for distribution plots).
    pub client_accuracies: Vec<f64>,
    /// Count of selections per client (Fig. 2a "C").
    pub selected_count: Vec<u64>,
    /// Count of successful participations per client (Fig. 2a "S").
    pub completed_count: Vec<u64>,
    /// Total dropout events across the run.
    pub total_dropouts: u64,
    /// Total completion events across the run.
    pub total_completions: u64,
    /// Updates rejected by server-side payload validation (non-finite
    /// deltas). Counted in `total_dropouts` too.
    #[serde(default)]
    pub total_quarantined: u64,
    /// Duplicate deliveries of the same client's update suppressed before
    /// aggregation.
    #[serde(default)]
    pub duplicates_suppressed: u64,
    /// Retries issued for network-stalled clients (sync engine's bounded
    /// retry/backoff).
    #[serde(default)]
    pub stall_retries: u64,
    /// Resource ledger totals.
    pub resources: LedgerTotals,
    /// Final virtual wall-clock, hours.
    pub wall_clock_h: f64,
    /// Per-technique success/failure statistics, keyed by action name.
    pub technique_stats: HashMap<String, TechniqueStats>,
    /// Per-round log.
    pub rounds: Vec<RoundRecord>,
    /// End-of-run telemetry totals (`None` unless the run enabled
    /// observability via `ExperimentConfig::obs`). Contains only
    /// simulated-state data, so it is covered by the report's bit-identical
    /// determinism guarantee.
    #[serde(default)]
    pub telemetry: Option<TelemetrySummary>,
}

impl ExperimentReport {
    /// Number of clients never selected during the run — the selection
    /// bias measure behind Fig. 2a.
    pub fn never_selected(&self) -> usize {
        self.selected_count.iter().filter(|&&c| c == 0).count()
    }

    /// Number of clients that never completed a round.
    pub fn never_completed(&self) -> usize {
        self.completed_count.iter().filter(|&&c| c == 0).count()
    }

    /// Record one technique outcome.
    pub fn record_technique(&mut self, action: AccelAction, success: bool) {
        let e = self
            .technique_stats
            .entry(action.name().to_string())
            .or_default();
        if success {
            e.successes += 1;
        } else {
            e.failures += 1;
        }
    }

    /// Mean reward across rounds that reported one (RLHF convergence
    /// trajectory, Fig. 9).
    pub fn reward_trajectory(&self) -> Vec<(usize, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.mean_reward.map(|w| (r.round, w)))
            .collect()
    }

    /// Whether every floating-point quantity in the report is finite —
    /// the no-NaN/no-Inf invariant chaos runs assert even under hostile
    /// fault schedules.
    #[must_use = "is_finite reports an invariant check; ignoring it hides NaN/Inf corruption"]
    pub fn is_finite(&self) -> bool {
        [
            self.accuracy.top10,
            self.accuracy.mean,
            self.accuracy.bottom10,
        ]
        .iter()
        .all(|v| v.is_finite())
            && self.client_accuracies.iter().all(|v| v.is_finite())
            && self.wall_clock_h.is_finite()
            && self.resources.is_physical()
            && self.rounds.iter().all(|r| {
                r.clock_s.is_finite()
                    && r.mean_accuracy.is_none_or(f64::is_finite)
                    && r.mean_reward.is_none_or(f64::is_finite)
            })
    }

    /// Serialize the per-round log as JSON Lines (one round per line) —
    /// the analog of the paper artifact's per-round log files, convenient
    /// for `jq`/pandas post-processing.
    pub fn round_log_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.rounds {
            out.push_str(&serde_json::to_string(r).expect("RoundRecord serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_accuracies() {
        let accs = vec![0.5; 20];
        let s = AccuracySummary::from_accuracies(&accs);
        assert!((s.top10 - 0.5).abs() < 1e-12);
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert!((s.bottom10 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_separates_deciles() {
        // 10 clients: accuracies 0.0..0.9.
        let accs: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let s = AccuracySummary::from_accuracies(&accs);
        assert!((s.bottom10 - 0.0).abs() < 1e-12);
        assert!((s.top10 - 0.9).abs() < 1e-12);
        assert!((s.mean - 0.45).abs() < 1e-12);
        assert!(s.top10 > s.mean && s.mean > s.bottom10);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = AccuracySummary::from_accuracies(&[]);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_handles_fewer_than_ten() {
        let s = AccuracySummary::from_accuracies(&[0.2, 0.8]);
        assert!((s.bottom10 - 0.2).abs() < 1e-12);
        assert!((s.top10 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn summary_of_single_client_uses_it_for_every_decile() {
        let s = AccuracySummary::from_accuracies(&[0.42]);
        assert!((s.top10 - 0.42).abs() < 1e-12);
        assert!((s.mean - 0.42).abs() < 1e-12);
        assert!((s.bottom10 - 0.42).abs() < 1e-12);
    }

    #[test]
    fn summary_is_stable_with_nan_input() {
        // Regression: the old partial_cmp(..).unwrap_or(Equal) comparator
        // stopped sorting at the first NaN, leaving the deciles scrambled.
        // total_cmp sends NaNs to the top decile deterministically; the
        // bottom decile and the finite prefix stay correct.
        let mut accs: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        accs[7] = f64::NAN;
        let s = AccuracySummary::from_accuracies(&accs);
        assert!((s.bottom10 - (0.0 + 0.05) / 2.0).abs() < 1e-12);
        assert!(s.top10.is_nan(), "NaN must surface in the top decile");
        // Same input permuted must give the same summary (total order).
        accs.reverse();
        let s2 = AccuracySummary::from_accuracies(&accs);
        assert_eq!(s.bottom10.to_bits(), s2.bottom10.to_bits());
        assert_eq!(s.top10.to_bits(), s2.top10.to_bits());
    }

    #[test]
    fn technique_stats_merge_adds_counts() {
        let mut a = TechniqueStats {
            successes: 3,
            failures: 1,
        };
        let b = TechniqueStats {
            successes: 2,
            failures: 5,
        };
        a.merge(&b);
        assert_eq!(a.successes, 5);
        assert_eq!(a.failures, 6);
        assert!((a.success_rate() - 5.0 / 11.0).abs() < 1e-12);
        // Merging the empty stats is the identity.
        let before = a;
        a.merge(&TechniqueStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn round_log_jsonl_is_one_valid_object_per_line() {
        let report = ExperimentReport {
            label: "t".into(),
            accuracy: AccuracySummary::from_accuracies(&[0.5]),
            client_accuracies: vec![0.5],
            selected_count: vec![1],
            completed_count: vec![1],
            total_dropouts: 0,
            total_completions: 1,
            total_quarantined: 0,
            duplicates_suppressed: 0,
            stall_retries: 0,
            resources: Default::default(),
            wall_clock_h: 1.0,
            technique_stats: Default::default(),
            telemetry: None,
            rounds: vec![
                RoundRecord {
                    round: 0,
                    selected: 3,
                    completed: 2,
                    dropped: 1,
                    quarantined: 1,
                    clock_s: 100.0,
                    mean_accuracy: Some(0.4),
                    mean_reward: None,
                    eligible: None,
                },
                RoundRecord {
                    round: 1,
                    selected: 3,
                    completed: 3,
                    dropped: 0,
                    quarantined: 0,
                    clock_s: 200.0,
                    mean_accuracy: None,
                    mean_reward: Some(0.7),
                    eligible: Some(5),
                },
            ],
        };
        assert!(report.is_finite());
        let jsonl = report.round_log_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("round").is_some());
        }
        let mut bad = report;
        bad.wall_clock_h = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn technique_stats_rate() {
        let t = TechniqueStats {
            successes: 3,
            failures: 1,
        };
        assert!((t.success_rate() - 0.75).abs() < 1e-12);
        assert_eq!(TechniqueStats::default().success_rate(), 0.0);
    }
}
