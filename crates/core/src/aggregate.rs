//! Model-update aggregation: synchronous FedAvg and asynchronous
//! FedBuff-style buffered aggregation with staleness discounting.

use serde::{Deserialize, Serialize};

/// One client's contribution awaiting aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingUpdate {
    /// Contributing client.
    pub client: usize,
    /// Parameter delta against the model version the client started from.
    pub delta: Vec<f32>,
    /// Training samples backing the update (FedAvg weighting).
    pub samples: usize,
    /// How many aggregations happened between launch and arrival
    /// (0 for synchronous updates).
    pub staleness: u64,
}

/// Weighted-average aggregation of deltas into the global parameters.
///
/// Synchronous FedAvg: weight by sample count. Asynchronous updates are
/// additionally discounted by `1 / sqrt(1 + staleness)` — the polynomial
/// staleness weighting FedBuff uses.
///
/// Returns the number of updates applied (0 leaves `global` untouched).
///
/// # Panics
///
/// Panics if an update's delta length differs from `global.len()` —
/// aggregating mismatched models is a programming error, not a runtime
/// condition.
pub fn aggregate(global: &mut [f32], updates: &[PendingUpdate]) -> usize {
    if updates.is_empty() {
        return 0;
    }
    let mut total_weight = 0.0f64;
    for u in updates {
        assert_eq!(
            u.delta.len(),
            global.len(),
            "client {} delta has wrong length",
            u.client
        );
        total_weight += weight(u);
    }
    if total_weight <= 0.0 {
        return 0;
    }
    let mut acc = vec![0.0f64; global.len()];
    for u in updates {
        let w = weight(u) / total_weight;
        for (a, &d) in acc.iter_mut().zip(&u.delta) {
            *a += w * f64::from(d);
        }
    }
    for (g, a) in global.iter_mut().zip(&acc) {
        *g += *a as f32;
    }
    updates.len()
}

/// FedAvg weight with FedBuff staleness discount.
fn weight(u: &PendingUpdate) -> f64 {
    (u.samples.max(1) as f64) / (1.0 + u.staleness as f64).sqrt()
}

/// Drop all but the first update from each client, preserving arrival
/// order, and return how many duplicates were suppressed.
///
/// A faulty transport can deliver the same client update twice (the
/// fault-injection harness models exactly this); double-counting a
/// client's delta would silently skew the weighted average toward it.
pub fn dedup_updates(updates: &mut Vec<PendingUpdate>) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let before = updates.len();
    updates.retain(|u| seen.insert(u.client));
    (before - updates.len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>, samples: usize, staleness: u64) -> PendingUpdate {
        PendingUpdate {
            client,
            delta,
            samples,
            staleness,
        }
    }

    #[test]
    fn equal_weights_average() {
        let mut g = vec![0.0f32; 2];
        aggregate(
            &mut g,
            &[upd(0, vec![1.0, 0.0], 10, 0), upd(1, vec![0.0, 1.0], 10, 0)],
        );
        assert!((g[0] - 0.5).abs() < 1e-6);
        assert!((g[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sample_weighting_skews_average() {
        let mut g = vec![0.0f32];
        aggregate(
            &mut g,
            &[upd(0, vec![1.0], 30, 0), upd(1, vec![0.0], 10, 0)],
        );
        assert!((g[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn staleness_discounts_contribution() {
        let mut g = vec![0.0f32];
        aggregate(
            &mut g,
            &[upd(0, vec![1.0], 10, 8), upd(1, vec![0.0], 10, 0)],
        );
        // Stale update weight 10/3, fresh 10 → stale share = 1/4.
        assert!((g[0] - 0.25).abs() < 1e-6, "got {}", g[0]);
    }

    #[test]
    fn empty_updates_leave_global() {
        let mut g = vec![3.0f32, 4.0];
        assert_eq!(aggregate(&mut g, &[]), 0);
        assert_eq!(g, vec![3.0, 4.0]);
    }

    #[test]
    fn aggregation_is_incremental() {
        // Applying the mean delta moves the global model, preserving the
        // base: g' = g + mean(delta).
        let mut g = vec![10.0f32];
        aggregate(&mut g, &[upd(0, vec![2.0], 1, 0)]);
        assert!((g[0] - 12.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn mismatched_delta_panics() {
        let mut g = vec![0.0f32; 3];
        aggregate(&mut g, &[upd(0, vec![1.0], 1, 0)]);
    }

    #[test]
    fn dedup_keeps_first_delivery_per_client() {
        let mut ups = vec![
            upd(0, vec![1.0], 10, 0),
            upd(1, vec![2.0], 10, 0),
            upd(0, vec![9.0], 10, 3), // duplicate delivery of client 0
            upd(2, vec![3.0], 10, 0),
            upd(1, vec![8.0], 10, 1),
        ];
        let dropped = dedup_updates(&mut ups);
        assert_eq!(dropped, 2);
        let clients: Vec<usize> = ups.iter().map(|u| u.client).collect();
        assert_eq!(clients, vec![0, 1, 2]);
        assert_eq!(ups[0].delta, vec![1.0], "first delivery wins");
        assert_eq!(ups[1].delta, vec![2.0]);
    }

    #[test]
    fn dedup_noop_on_distinct_clients() {
        let mut ups = vec![upd(0, vec![1.0], 1, 0), upd(1, vec![2.0], 1, 0)];
        assert_eq!(dedup_updates(&mut ups), 0);
        assert_eq!(ups.len(), 2);
    }

    #[test]
    fn zero_sample_updates_still_count_minimally() {
        let mut g = vec![0.0f32];
        let n = aggregate(&mut g, &[upd(0, vec![1.0], 0, 0)]);
        assert_eq!(n, 1);
        assert!((g[0] - 1.0).abs() < 1e-6);
    }
}
