//! Model-update aggregation: synchronous FedAvg and asynchronous
//! FedBuff-style buffered aggregation with staleness discounting.

use serde::{Deserialize, Serialize};

/// One client's contribution awaiting aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingUpdate {
    /// Contributing client.
    pub client: usize,
    /// Parameter delta against the model version the client started from.
    pub delta: Vec<f32>,
    /// Training samples backing the update (FedAvg weighting).
    pub samples: usize,
    /// How many aggregations happened between launch and arrival
    /// (0 for synchronous updates).
    pub staleness: u64,
}

/// Staleness-discounted weighted mean of the pending deltas, in `f64`.
///
/// Synchronous FedAvg: weight by sample count. Asynchronous updates are
/// additionally discounted by `1 / sqrt(1 + staleness)` — the polynomial
/// staleness weighting FedBuff uses. Accumulation runs in update order
/// with `f64` precision, which is the determinism-relevant part: every
/// server optimizer consumes this same mean.
///
/// Returns `None` when the batch is empty or carries no aggregate
/// weight — callers must apply nothing and report zero updates applied.
///
/// # Panics
///
/// Panics if an update's delta length differs from `global_len` —
/// aggregating mismatched models is a programming error, not a runtime
/// condition.
pub fn weighted_mean_delta(global_len: usize, updates: &[PendingUpdate]) -> Option<Vec<f64>> {
    if updates.is_empty() {
        return None;
    }
    let mut total_weight = 0.0f64;
    for u in updates {
        assert_eq!(
            u.delta.len(),
            global_len,
            "client {} delta has wrong length",
            u.client
        );
        total_weight += weight(u);
    }
    if total_weight <= 0.0 {
        return None;
    }
    let mut acc = vec![0.0f64; global_len];
    for u in updates {
        let w = weight(u) / total_weight;
        for (a, &d) in acc.iter_mut().zip(&u.delta) {
            *a += w * f64::from(d);
        }
    }
    Some(acc)
}

/// Weighted-average aggregation of deltas into the global parameters —
/// the plain FedAvg apply: `g += mean_delta`.
///
/// Returns the number of updates actually applied: `updates.len()` when
/// the mean delta was folded in, `0` when the batch was empty or had no
/// aggregate weight (in which case `global` is untouched). The return
/// value is authoritative for ledger/event accounting — callers must not
/// substitute `updates.len()`.
///
/// # Panics
///
/// Panics if an update's delta length differs from `global.len()`.
pub fn aggregate(global: &mut [f32], updates: &[PendingUpdate]) -> usize {
    let Some(acc) = weighted_mean_delta(global.len(), updates) else {
        return 0;
    };
    for (g, a) in global.iter_mut().zip(&acc) {
        *g += *a as f32;
    }
    updates.len()
}

/// FedAvg weight with FedBuff staleness discount.
fn weight(u: &PendingUpdate) -> f64 {
    (u.samples.max(1) as f64) / (1.0 + u.staleness as f64).sqrt()
}

/// Drop all but the first update from each client, preserving arrival
/// order, and return how many duplicates were suppressed.
///
/// A faulty transport can deliver the same client update twice (the
/// fault-injection harness models exactly this); double-counting a
/// client's delta would silently skew the weighted average toward it.
pub fn dedup_updates(updates: &mut Vec<PendingUpdate>) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let before = updates.len();
    updates.retain(|u| seen.insert(u.client));
    (before - updates.len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>, samples: usize, staleness: u64) -> PendingUpdate {
        PendingUpdate {
            client,
            delta,
            samples,
            staleness,
        }
    }

    #[test]
    fn equal_weights_average() {
        let mut g = vec![0.0f32; 2];
        aggregate(
            &mut g,
            &[upd(0, vec![1.0, 0.0], 10, 0), upd(1, vec![0.0, 1.0], 10, 0)],
        );
        assert!((g[0] - 0.5).abs() < 1e-6);
        assert!((g[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sample_weighting_skews_average() {
        let mut g = vec![0.0f32];
        aggregate(
            &mut g,
            &[upd(0, vec![1.0], 30, 0), upd(1, vec![0.0], 10, 0)],
        );
        assert!((g[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn staleness_discounts_contribution() {
        let mut g = vec![0.0f32];
        aggregate(
            &mut g,
            &[upd(0, vec![1.0], 10, 8), upd(1, vec![0.0], 10, 0)],
        );
        // Stale update weight 10/3, fresh 10 → stale share = 1/4.
        assert!((g[0] - 0.25).abs() < 1e-6, "got {}", g[0]);
    }

    #[test]
    fn empty_updates_leave_global() {
        let mut g = vec![3.0f32, 4.0];
        assert_eq!(aggregate(&mut g, &[]), 0);
        assert_eq!(g, vec![3.0, 4.0]);
    }

    #[test]
    fn aggregation_is_incremental() {
        // Applying the mean delta moves the global model, preserving the
        // base: g' = g + mean(delta).
        let mut g = vec![10.0f32];
        aggregate(&mut g, &[upd(0, vec![2.0], 1, 0)]);
        assert!((g[0] - 12.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn mismatched_delta_panics() {
        let mut g = vec![0.0f32; 3];
        aggregate(&mut g, &[upd(0, vec![1.0], 1, 0)]);
    }

    #[test]
    fn dedup_keeps_first_delivery_per_client() {
        let mut ups = vec![
            upd(0, vec![1.0], 10, 0),
            upd(1, vec![2.0], 10, 0),
            upd(0, vec![9.0], 10, 3), // duplicate delivery of client 0
            upd(2, vec![3.0], 10, 0),
            upd(1, vec![8.0], 10, 1),
        ];
        let dropped = dedup_updates(&mut ups);
        assert_eq!(dropped, 2);
        let clients: Vec<usize> = ups.iter().map(|u| u.client).collect();
        assert_eq!(clients, vec![0, 1, 2]);
        assert_eq!(ups[0].delta, vec![1.0], "first delivery wins");
        assert_eq!(ups[1].delta, vec![2.0]);
    }

    #[test]
    fn dedup_noop_on_distinct_clients() {
        let mut ups = vec![upd(0, vec![1.0], 1, 0), upd(1, vec![2.0], 1, 0)];
        assert_eq!(dedup_updates(&mut ups), 0);
        assert_eq!(ups.len(), 2);
    }

    #[test]
    fn zero_sample_updates_still_count_minimally() {
        let mut g = vec![0.0f32];
        let n = aggregate(&mut g, &[upd(0, vec![1.0], 0, 0)]);
        assert_eq!(n, 1);
        assert!((g[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn applied_count_agrees_with_mutation() {
        // The return value is the authoritative "applied" count: it is
        // positive exactly when the mean delta exists and was folded in,
        // and zero exactly when `global` was left untouched.
        let cases: Vec<Vec<PendingUpdate>> = vec![
            vec![],
            vec![upd(0, vec![0.5, -0.5], 4, 0)],
            vec![
                upd(0, vec![1.0, 0.0], 0, u64::MAX),
                upd(1, vec![0.0, 1.0], 0, 0),
            ],
        ];
        for updates in cases {
            let before = vec![1.0f32, -2.0];
            let mut g = before.clone();
            let n = aggregate(&mut g, &updates);
            let mean = weighted_mean_delta(g.len(), &updates);
            match mean {
                None => {
                    assert_eq!(n, 0, "no mean delta must report zero applied");
                    assert_eq!(g, before, "no mean delta must leave global");
                }
                Some(_) => assert_eq!(n, updates.len(), "applied count mismatch"),
            }
        }
    }

    #[test]
    fn weighted_mean_delta_matches_direct_apply() {
        let updates = vec![
            upd(0, vec![1.0, 3.0], 30, 0),
            upd(1, vec![-1.0, 1.0], 10, 2),
        ];
        let mut g = vec![0.25f32, -0.75];
        let expect: Vec<f32> = {
            let mean = weighted_mean_delta(2, &updates).expect("weighted batch");
            g.iter().zip(&mean).map(|(x, m)| *x + *m as f32).collect()
        };
        aggregate(&mut g, &updates);
        assert_eq!(
            g.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
    }
}
