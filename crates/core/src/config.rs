//! Experiment configuration and paper presets.

use serde::{Deserialize, Serialize};

use float_data::federated::FederatedConfig;
use float_data::Task;
use float_models::Architecture;
use float_obs::ObsConfig;
use float_profile::ProfilingConfig;
use float_sim::FaultPlan;
use float_traces::InterferenceModel;

use crate::optim::ServerOptimConfig;

/// Which client-selection algorithm drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorChoice {
    /// Uniform random (FedAvg).
    FedAvg,
    /// Utility-guided (Oort).
    Oort,
    /// Availability-window prediction (REFL).
    Refl,
    /// Asynchronous buffered (FedBuff).
    FedBuff,
    /// Tier-based (TiFL) — an extension baseline beyond the paper's four.
    Tifl,
}

impl SelectorChoice {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SelectorChoice::FedAvg => "fedavg",
            SelectorChoice::Oort => "oort",
            SelectorChoice::Refl => "refl",
            SelectorChoice::FedBuff => "fedbuff",
            SelectorChoice::Tifl => "tifl",
        }
    }

    /// The paper's four baselines (TiFL is an extension and excluded so
    /// figure grids keep the paper's layout).
    pub const ALL: [SelectorChoice; 4] = [
        SelectorChoice::FedAvg,
        SelectorChoice::Oort,
        SelectorChoice::Refl,
        SelectorChoice::FedBuff,
    ];

    /// All selectors including extensions.
    pub const ALL_EXTENDED: [SelectorChoice; 5] = [
        SelectorChoice::FedAvg,
        SelectorChoice::Oort,
        SelectorChoice::Refl,
        SelectorChoice::FedBuff,
        SelectorChoice::Tifl,
    ];
}

/// How acceleration actions are chosen for selected clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccelMode {
    /// No acceleration — the vanilla baseline.
    Off,
    /// A fixed action applied to every client every round (the §4.3
    /// "static optimization" baselines, Fig. 5). The index refers to
    /// [`float_accel::ActionCatalogue::paper`].
    Static(usize),
    /// The §4.4 rule-based heuristic.
    Heuristic,
    /// Q-learning agent without human feedback (FLOAT-RL, Fig. 11).
    Rl,
    /// Full FLOAT: Q-learning with human feedback (FLOAT-RLHF).
    Rlhf,
    /// FLOAT-RLHF over the *extended* action catalogue — the paper's
    /// eight actions plus no-op, lossless compression, and top-k
    /// sparsification (RQ5: "adding a new acceleration technique
    /// increases the actions by one, expanding the exploration space by
    /// S").
    RlhfExtended,
}

impl AccelMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AccelMode::Off => "off",
            AccelMode::Static(_) => "static",
            AccelMode::Heuristic => "heuristic",
            AccelMode::Rl => "float-rl",
            AccelMode::Rlhf => "float-rlhf",
            AccelMode::RlhfExtended => "float-rlhf-ext",
        }
    }
}

/// Full description of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Benchmark task (dataset stand-in).
    pub task: Task,
    /// Dirichlet α controlling label skew (`None` ⇒ IID).
    pub alpha: Option<f64>,
    /// Cost-model architecture (latency/bytes/memory source).
    pub arch: Architecture,
    /// Total number of clients.
    pub num_clients: usize,
    /// Clients sampled per synchronous round.
    pub cohort_size: usize,
    /// Concurrent clients for FedBuff.
    pub async_concurrency: usize,
    /// FedBuff aggregation buffer size.
    pub async_buffer: usize,
    /// Number of training rounds (synchronous) or aggregations (async).
    pub rounds: usize,
    /// Local epochs per client round.
    pub local_epochs: usize,
    /// Local batch size.
    pub batch_size: usize,
    /// Local SGD learning rate.
    pub learning_rate: f32,
    /// Mean training samples per client.
    pub mean_samples: usize,
    /// Round deadline in seconds.
    pub deadline_s: f64,
    /// Interference scenario.
    pub interference: InterferenceModel,
    /// Client-selection algorithm.
    pub selector: SelectorChoice,
    /// Acceleration mode.
    pub accel: AccelMode,
    /// Evaluate per-client accuracy every this many rounds (and always at
    /// the final round).
    pub eval_every: usize,
    /// Weight of the participation-success objective in the RLHF reward
    /// (paper Eq. 2 `w_p`). The §7 "Limitations" knob: in resource-rich
    /// deployments users can shift weight toward accuracy.
    pub reward_w_participation: f64,
    /// Weight of the accuracy-improvement objective (`w_a`).
    pub reward_w_accuracy: f64,
    /// Per-second hazard rate of stochastic mid-round client failures.
    pub failure_hazard_per_s: f64,
    /// Counterfactual switch for the Fig. 3 "no dropouts (ND)" analysis:
    /// every selected, available client is treated as completing
    /// regardless of deadline, memory, or failures.
    pub assume_no_dropouts: bool,
    /// Root seed; every stochastic subsystem derives from it.
    pub seed: u64,
    /// Population seed override for the *data/trace* streams (`0` ⇒ use
    /// `seed`, the historical behaviour bit for bit). When nonzero, the
    /// shard partition and the availability/trace calendar derive from
    /// this seed while every runtime stream (selection, agent, model
    /// init, faults, evaluation sample, candidate pools) stays on `seed`.
    /// This is the seed split a sweep needs: trials keep independent
    /// runtime randomness via `split_seed(root, trial_idx)` yet share one
    /// population — and therefore one shard store and one availability
    /// calendar — keyed by `data_seed`. See `DESIGN.md` §18.
    #[serde(default)]
    pub data_seed: u64,
    /// Worker threads for the parallel attempt phase of each round
    /// (`0` ⇒ one per available CPU core). The `FLOAT_THREADS`
    /// environment variable overrides this at runtime. The thread count
    /// never changes results — see `DESIGN.md` §Two-phase engine.
    #[serde(default)]
    pub num_threads: usize,
    /// Deterministic fault-injection schedule layered on top of the
    /// benign failure model: per-(round, client, attempt) crashes,
    /// network stalls, duplicate deliveries, and corrupt payloads, all
    /// drawn from the root seed. Defaults to no faults; see
    /// [`FaultPlan::chaos`] for the chaos-testing preset and `DESIGN.md`
    /// §Fault model for the semantics.
    #[serde(default)]
    pub fault_plan: FaultPlan,
    /// Telemetry switchboard: off by default (near-zero overhead), or the
    /// deterministic event stream + metrics registry of `float-obs`. Like
    /// the thread count, enabling telemetry never changes results — see
    /// `DESIGN.md` §Telemetry & determinism contract.
    #[serde(default)]
    pub obs: ObsConfig,
    /// How many clients to evaluate global accuracy on (`0` ⇒ the full
    /// population, the historical behaviour). At population scale,
    /// evaluating every client dominates the run; a sample of a few
    /// hundred gives the same curve shape. The sample is drawn once per
    /// experiment from its own seed stream, so `eval_sample ==
    /// num_clients` reproduces the full-population accuracy numbers
    /// bit-for-bit (same clients, same ascending order).
    #[serde(default)]
    pub eval_sample: usize,
    /// Capacity of the lazy shard cache in client shards (`0` ⇒ auto:
    /// scaled to the cohort/concurrency, see
    /// [`ExperimentConfig::resolved_shard_cache`]). Bounds training-data
    /// memory: at 1M clients only this many client datasets are ever
    /// resident.
    #[serde(default)]
    pub shard_cache: usize,
    /// Size of the sampled candidate pool handed to the selector each
    /// round (`0` ⇒ full availability sweep, the historical behaviour —
    /// bit-identical to pre-pool reports). When positive, the plan phase
    /// draws a deterministic uniform sample of this many candidates from
    /// the diurnally-available set (seed stream 8, keyed by round) and
    /// only they are interruption/battery-filtered and scored, making
    /// per-round cost O(pool), independent of the population. See
    /// `DESIGN.md` §Event-driven availability for the determinism
    /// contract and `RoundRecord::eligible` for telemetry semantics.
    #[serde(default)]
    pub candidate_pool: usize,
    /// Server-side aggregation optimizer (the FedOpt family). The
    /// default is plain FedAvg, byte-identical to pre-optimizer reports;
    /// FedAvgM / FedAdam / FedYogi keep moment buffers that advance only
    /// in the sequential commit phase, so every choice honours the
    /// thread-count determinism contract. See `DESIGN.md` §Server
    /// optimizer layer.
    #[serde(default)]
    pub server_optim: ServerOptimConfig,
    /// FedProx proximal coefficient `μ` (`0` ⇒ off, the historical
    /// training path bit for bit). When positive, every local gradient
    /// step is pulled toward the round's global parameters by
    /// `μ·(w − w_global)`, bounding client drift under non-IID data.
    #[serde(default)]
    pub prox_mu: f64,
    /// SCAFFOLD control variates: maintain a server variate `c` and one
    /// per-client variate `c_i`, correct every local gradient by
    /// `c − c_i`, and fold variate updates in at commit time (sequential,
    /// cohort order — deterministic for any thread count). Composable
    /// with [`ExperimentConfig::prox_mu`].
    #[serde(default)]
    pub scaffold: bool,
    /// Pipelined round execution: stream each attempt to the worker pool
    /// the moment it is planned and commit completed attempts in slot
    /// order while later attempts still execute, overlapping the round's
    /// plan/execute/commit phases instead of running them as strict
    /// barriers; round-`r` accuracy evaluation additionally overlaps the
    /// start of round `r+1`. Off by default (the historical three-phase
    /// schedule). Results are byte-identical either way — commits retire
    /// in the same deterministic slot order and evaluation reads a
    /// snapshot of the committed model — see `DESIGN.md` §16 for the
    /// contract and the pinned pipelined-vs-sequential golden tests.
    #[serde(default)]
    pub pipeline_rounds: bool,
    /// Online client profiling: estimate per-client latency, bandwidth,
    /// and reliability from *observed* round outcomes and feed those
    /// estimates — instead of trace oracles — to the selectors and the
    /// accel agent's state features. Off by default (the historical
    /// oracle path, byte-identical to pinned goldens). The profiler is
    /// updated only in the sequential commit phase, so enabling it keeps
    /// every run bit-identical across worker-thread counts. See
    /// `DESIGN.md` §17 for estimator definitions and the cold-start
    /// policy.
    #[serde(default)]
    pub profiling: ProfilingConfig,
}

impl ExperimentConfig {
    /// The paper's end-to-end setup (§6.1) scaled to the proxy substrate:
    /// 200 clients, 30 per round, 5 local epochs, batch 20, Dirichlet 0.1,
    /// dynamic on-device interference, ResNet-34 costs.
    ///
    /// `rounds` is a parameter because the full 300-round runs belong in
    /// benches/examples, while tests use short horizons.
    pub fn paper_e2e(
        task: Task,
        selector: SelectorChoice,
        accel: AccelMode,
        rounds: usize,
    ) -> Self {
        ExperimentConfig {
            task,
            alpha: Some(0.1),
            arch: Architecture::ResNet34,
            num_clients: 200,
            cohort_size: 30,
            async_concurrency: 100,
            async_buffer: 30,
            rounds,
            local_epochs: 5,
            batch_size: 20,
            learning_rate: 0.05,
            mean_samples: 120,
            deadline_s: 1800.0,
            interference: InterferenceModel::paper_dynamic(),
            selector,
            accel,
            eval_every: 10,
            reward_w_participation: 0.5,
            reward_w_accuracy: 0.5,
            failure_hazard_per_s: 2.0e-5,
            assume_no_dropouts: false,
            seed: 20240422,
            data_seed: 0,
            num_threads: 0,
            fault_plan: FaultPlan::none(),
            obs: ObsConfig::off(),
            eval_sample: 0,
            shard_cache: 0,
            candidate_pool: 0,
            server_optim: ServerOptimConfig::default(),
            prox_mu: 0.0,
            scaffold: false,
            pipeline_rounds: false,
            profiling: ProfilingConfig::off(),
        }
    }

    /// A small, fast configuration for tests and the quickstart example.
    pub fn small(selector: SelectorChoice, accel: AccelMode, rounds: usize) -> Self {
        ExperimentConfig {
            task: Task::Cifar10,
            alpha: Some(0.1),
            arch: Architecture::ResNet18,
            num_clients: 40,
            cohort_size: 10,
            async_concurrency: 20,
            async_buffer: 8,
            rounds,
            local_epochs: 2,
            batch_size: 16,
            learning_rate: 0.05,
            mean_samples: 60,
            deadline_s: 1800.0,
            interference: InterferenceModel::paper_dynamic(),
            selector,
            accel,
            eval_every: 5,
            reward_w_participation: 0.5,
            reward_w_accuracy: 0.5,
            failure_hazard_per_s: 2.0e-5,
            assume_no_dropouts: false,
            seed: 7,
            data_seed: 0,
            num_threads: 0,
            fault_plan: FaultPlan::none(),
            obs: ObsConfig::off(),
            eval_sample: 0,
            shard_cache: 0,
            candidate_pool: 0,
            server_optim: ServerOptimConfig::default(),
            prox_mu: 0.0,
            scaffold: false,
            pipeline_rounds: false,
            profiling: ProfilingConfig::off(),
        }
    }

    /// Resolve the worker-thread count for the parallel attempt phase.
    ///
    /// Precedence: the `FLOAT_THREADS` environment variable (when set to a
    /// positive integer), then [`ExperimentConfig::num_threads`], then the
    /// machine's available parallelism. Always at least 1.
    pub fn effective_threads(&self) -> usize {
        if let Ok(v) = std::env::var("FLOAT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        if self.num_threads > 0 {
            return self.num_threads;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Resolve the shard-cache capacity in client shards.
    ///
    /// An explicit [`ExperimentConfig::shard_cache`] wins; `0` picks a
    /// capacity that comfortably covers one round's working set — the
    /// cohort (with slack for retries and staleness) and the async
    /// in-flight set — independent of the population size, so memory
    /// stays O(cohort) at any client count.
    pub fn resolved_shard_cache(&self) -> usize {
        if self.shard_cache > 0 {
            return self.shard_cache;
        }
        self.num_clients
            .min((4 * self.cohort_size).max(self.async_concurrency).max(64))
    }

    /// The seed the data/trace streams actually derive from: the
    /// [`ExperimentConfig::data_seed`] override when set, else the root
    /// seed (the historical single-seed behaviour, bit for bit).
    pub fn population_seed(&self) -> u64 {
        if self.data_seed != 0 {
            self.data_seed
        } else {
            self.seed
        }
    }

    /// A compact, deterministic description of the runtime knobs a sweep
    /// varies — the per-trial label used by trial records, JSONL sink
    /// filenames, and the frontier report. Population knobs (task, client
    /// count, data skew) are deliberately absent: trials in one sweep
    /// share them.
    pub fn knob_label(&self) -> String {
        let mut label = format!(
            "cohort{}-ep{}-lr{}-dl{}s-{}",
            self.cohort_size,
            self.local_epochs,
            self.learning_rate,
            self.deadline_s,
            self.selector.name(),
        );
        if self.server_optim.optimizer != crate::optim::ServerOptimizerChoice::FedAvg {
            label.push('@');
            label.push_str(self.server_optim.optimizer.name());
        }
        if self.accel != AccelMode::Off {
            label.push('+');
            label.push_str(self.accel.name());
        }
        label
    }

    /// Derived federated-dataset configuration.
    pub fn federated_config(&self) -> FederatedConfig {
        FederatedConfig {
            task: self.task,
            num_clients: self.num_clients,
            mean_samples: self.mean_samples,
            alpha: self.alpha,
            test_fraction: 0.25,
        }
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_clients == 0 {
            return Err(format!("num_clients {} must be positive", self.num_clients));
        }
        if self.cohort_size == 0 || self.cohort_size > self.num_clients {
            return Err(format!(
                "cohort_size {} must be in 1..={}",
                self.cohort_size, self.num_clients
            ));
        }
        if self.rounds == 0 {
            return Err(format!("rounds {} must be positive", self.rounds));
        }
        if self.async_buffer == 0 || self.async_buffer > self.async_concurrency {
            return Err(format!(
                "async_buffer {} must be in 1..={}",
                self.async_buffer, self.async_concurrency
            ));
        }
        if self.batch_size == 0 || self.local_epochs == 0 {
            return Err(format!(
                "batch_size {} and local_epochs {} must be positive",
                self.batch_size, self.local_epochs
            ));
        }
        if self.deadline_s <= 0.0 || self.deadline_s.is_nan() {
            return Err(format!("deadline_s {} must be positive", self.deadline_s));
        }
        if let Some(a) = self.alpha {
            if a <= 0.0 || a.is_nan() {
                return Err(format!("alpha {a} must be positive"));
            }
        }
        if self.eval_every == 0 {
            return Err(format!("eval_every {} must be positive", self.eval_every));
        }
        if self.failure_hazard_per_s < 0.0 || self.failure_hazard_per_s.is_nan() {
            return Err(format!(
                "failure_hazard_per_s {} must be non-negative",
                self.failure_hazard_per_s
            ));
        }
        if !(self.reward_w_participation >= 0.0 && self.reward_w_accuracy >= 0.0)
            || self.reward_w_participation + self.reward_w_accuracy <= 0.0
        {
            return Err(format!(
                "reward weights (participation {}, accuracy {}) must be non-negative and not both zero",
                self.reward_w_participation, self.reward_w_accuracy
            ));
        }
        if self.eval_sample > self.num_clients {
            return Err(format!(
                "eval_sample {} must not exceed num_clients {} (0 means full population)",
                self.eval_sample, self.num_clients
            ));
        }
        if self.shard_cache != 0 && self.shard_cache < self.cohort_size {
            return Err(format!(
                "shard_cache {} must be 0 (auto) or at least cohort_size {} so one round's cohort fits",
                self.shard_cache, self.cohort_size
            ));
        }
        if self.candidate_pool != 0 {
            if self.candidate_pool < self.cohort_size {
                return Err(format!(
                    "candidate_pool {} must be 0 (full sweep) or at least cohort_size {} so a full cohort can be drawn",
                    self.candidate_pool, self.cohort_size
                ));
            }
            if self.candidate_pool > self.num_clients {
                return Err(format!(
                    "candidate_pool {} must not exceed num_clients {}",
                    self.candidate_pool, self.num_clients
                ));
            }
            if self.selector == SelectorChoice::FedBuff
                && self.candidate_pool < self.async_concurrency
            {
                return Err(format!(
                    "candidate_pool {} must be at least async_concurrency {} for the FedBuff selector",
                    self.candidate_pool, self.async_concurrency
                ));
            }
        }
        if self.prox_mu < 0.0 || !self.prox_mu.is_finite() {
            return Err(format!(
                "prox_mu {} must be non-negative and finite (0 disables FedProx)",
                self.prox_mu
            ));
        }
        self.server_optim.validate()?;
        self.fault_plan.validate()?;
        self.obs.validate()?;
        self.profiling.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_valid_and_matches_paper_numbers() {
        let c = ExperimentConfig::paper_e2e(
            Task::Femnist,
            SelectorChoice::FedAvg,
            AccelMode::Rlhf,
            300,
        );
        c.validate().expect("paper preset must validate");
        assert_eq!(c.num_clients, 200);
        assert_eq!(c.cohort_size, 30);
        assert_eq!(c.local_epochs, 5);
        assert_eq!(c.batch_size, 20);
        assert_eq!(c.async_concurrency, 100);
        assert_eq!(c.async_buffer, 30);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let base = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 5);
        let mut c = base;
        c.cohort_size = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.cohort_size = c.num_clients + 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.rounds = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.async_buffer = c.async_concurrency + 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.alpha = Some(0.0);
        assert!(c.validate().is_err());
        let mut c = base;
        c.deadline_s = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base;
        c.fault_plan.crash_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = base;
        c.fault_plan = FaultPlan::chaos();
        c.validate().expect("chaos preset must validate");
        let mut c = base;
        c.obs.wall_timers = true; // without enabled
        assert!(c.validate().is_err());
        let mut c = base;
        c.obs = ObsConfig::profiled();
        c.validate().expect("profiled telemetry must validate");
        let mut c = base;
        c.candidate_pool = c.cohort_size - 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.candidate_pool = c.num_clients + 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.selector = SelectorChoice::FedBuff;
        c.candidate_pool = c.async_concurrency - 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.candidate_pool = c.cohort_size;
        c.validate().expect("pool = cohort must validate");
        let mut c = base;
        c.prox_mu = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base;
        c.server_optim.server_lr = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.profiling.cold_only = true; // without enabled
        assert!(c.validate().is_err());
        let mut c = base;
        c.profiling = ProfilingConfig::on();
        c.validate().expect("profiling preset must validate");
        let mut c = base;
        c.server_optim =
            crate::optim::ServerOptimConfig::with(crate::optim::ServerOptimizerChoice::FedYogi);
        c.prox_mu = 0.1;
        c.scaffold = true;
        c.validate()
            .expect("drift corrections compose with any server optimizer");
    }

    #[test]
    fn validation_messages_carry_offending_values() {
        let base = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 5);
        let mut c = base;
        c.cohort_size = 77;
        c.num_clients = 40;
        let err = c.validate().expect_err("bad cohort");
        assert!(err.contains("77") && err.contains("40"), "message: {err}");
        let mut c = base;
        c.deadline_s = -3.5;
        let err = c.validate().expect_err("bad deadline");
        assert!(err.contains("-3.5"), "message: {err}");
        let mut c = base;
        c.fault_plan.stall_backoff_s = -1.0;
        let err = c.validate().expect_err("bad backoff");
        assert!(err.contains("-1"), "message: {err}");
        let mut c = base;
        c.obs.wall_timers = true;
        let err = c.validate().expect_err("bad obs");
        assert!(
            err.contains("wall_timers true") && err.contains("enabled false"),
            "message: {err}"
        );
        let mut c = base;
        c.eval_sample = 41; // num_clients is 40
        let err = c.validate().expect_err("bad eval_sample");
        assert!(err.contains("41") && err.contains("40"), "message: {err}");
        let mut c = base;
        c.shard_cache = 3; // cohort_size is 10
        let err = c.validate().expect_err("bad shard_cache");
        assert!(err.contains("3") && err.contains("10"), "message: {err}");
        let mut c = base;
        c.candidate_pool = 7; // cohort_size is 10
        let err = c.validate().expect_err("bad candidate_pool");
        assert!(err.contains("7") && err.contains("10"), "message: {err}");
        let mut c = base;
        c.selector = SelectorChoice::FedBuff;
        c.candidate_pool = 12; // async_concurrency is 20
        let err = c.validate().expect_err("pool below concurrency");
        assert!(err.contains("12") && err.contains("20"), "message: {err}");
        let mut c = base;
        c.prox_mu = -0.5;
        let err = c.validate().expect_err("bad prox_mu");
        assert!(err.contains("-0.5"), "message: {err}");
        let mut c = base;
        c.server_optim.beta1 = 1.25;
        let err = c.validate().expect_err("bad beta1");
        assert!(err.contains("1.25"), "message: {err}");
        let mut c = base;
        c.profiling = ProfilingConfig::on();
        c.profiling.latency_alpha = 2.5;
        let err = c.validate().expect_err("bad latency_alpha");
        assert!(err.contains("2.5"), "message: {err}");
    }

    #[test]
    fn profiling_defaults_to_off_and_deserializes_from_old_configs() {
        let c = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 5);
        assert!(!c.profiling.enabled, "presets must keep the oracle path");
        // A config serialized before the profiling field existed still
        // deserializes (serde default) to profiling off. The profiling
        // object is flat, so trimming from its key to the next `}` cuts
        // exactly the field an old config would lack.
        let json = serde_json::to_string(&c).expect("serializes");
        let start = json.find(",\"profiling\":{").expect("field serialized");
        let end = json[start..].find('}').expect("flat object") + start;
        let old = format!("{}{}", &json[..start], &json[end + 1..]);
        let back: ExperimentConfig = serde_json::from_str(&old).expect("old config deserializes");
        assert_eq!(back.profiling, ProfilingConfig::off());
    }

    #[test]
    fn server_optim_defaults_keep_fedavg() {
        let c = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 5);
        assert_eq!(
            c.server_optim.optimizer,
            crate::optim::ServerOptimizerChoice::FedAvg,
            "presets must default to the historical FedAvg path"
        );
        assert_eq!(c.prox_mu, 0.0);
        assert!(!c.scaffold);
    }

    #[test]
    fn shard_cache_resolution_covers_round_working_set_and_is_bounded() {
        let small = ExperimentConfig::small(SelectorChoice::FedAvg, AccelMode::Off, 5);
        // Auto capacity never exceeds the population...
        assert!(small.resolved_shard_cache() <= small.num_clients);
        // ...and an explicit capacity wins.
        let mut c = small;
        c.shard_cache = 17;
        assert_eq!(c.resolved_shard_cache(), 17);
        // At population scale the auto capacity is O(cohort), not O(N).
        let mut big = small;
        big.num_clients = 1_000_000;
        assert!(big.resolved_shard_cache() >= big.cohort_size);
        assert!(big.resolved_shard_cache() >= big.async_concurrency);
        assert!(big.resolved_shard_cache() < 1_000);
    }

    #[test]
    fn eval_sample_defaults_to_full_population() {
        let c = ExperimentConfig::paper_e2e(
            Task::Femnist,
            SelectorChoice::FedAvg,
            AccelMode::Rlhf,
            300,
        );
        assert_eq!(c.eval_sample, 0, "default must keep full-population eval");
        assert_eq!(c.shard_cache, 0, "default must keep auto cache sizing");
        c.validate().expect("defaults must validate");
    }

    #[test]
    fn selector_names_unique() {
        let mut names: Vec<_> = SelectorChoice::ALL_EXTENDED
            .iter()
            .map(|s| s.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
