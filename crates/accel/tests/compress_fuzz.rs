//! Property-based fuzzing of the update codecs.
//!
//! The lossless RLE codec and top-k sparsifier sit on the wire path of
//! every simulated round, so they must round-trip *bit patterns* (not just
//! values — NaN payloads and signed zeros included), survive adversarial
//! run lengths around the 255-byte RLE cap, and never panic on arbitrary
//! decoder input.

use float_accel::compress::{compress_f32_update, decompress_f32_update, top_k_sparsify};
use proptest::prelude::*;

/// Bitwise equality for float buffers: `==` would treat NaN != NaN and
/// -0.0 == +0.0, both of which hide codec bugs.
fn same_bits(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_preserves_arbitrary_bit_patterns(
        bits in prop::collection::vec(any::<u32>(), 0..260),
    ) {
        // from_bits covers NaNs (with payloads), infinities, subnormals,
        // and signed zeros — everything a gradient buffer can contain.
        let vals: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let compressed = compress_f32_update(&vals);
        let back = decompress_f32_update(&compressed);
        prop_assert!(back.is_some(), "valid stream failed to decode");
        prop_assert!(same_bits(&back.unwrap(), &vals));
    }

    #[test]
    fn roundtrip_survives_adversarial_run_lengths(
        pattern in any::<u32>(),
        len in 0usize..700,
        break_every in 0usize..300,
    ) {
        // Constant buffers produce byte-plane runs that straddle the
        // encoder's 255-count cap; an optional periodic "break" value
        // exercises run restarts at every phase.
        let mut vals = vec![f32::from_bits(pattern); len];
        if break_every > 0 {
            for (i, v) in vals.iter_mut().enumerate() {
                if i % (break_every + 1) == break_every {
                    *v = f32::from_bits(!pattern);
                }
            }
        }
        let compressed = compress_f32_update(&vals);
        let back = decompress_f32_update(&compressed);
        prop_assert!(back.is_some(), "valid stream failed to decode");
        prop_assert!(same_bits(&back.unwrap(), &vals));
    }

    #[test]
    fn decompress_never_panics_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        // Any outcome is acceptable except a panic; on success the codec
        // must honor its own declared length.
        if let Some(vals) = decompress_f32_update(&data) {
            let declared =
                u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
            prop_assert_eq!(vals.len() * 4, declared);
        }
    }

    #[test]
    fn top_k_keeps_the_contract(
        bits in prop::collection::vec(any::<u32>(), 0..200),
        keep_pct in 1u32..=100,
    ) {
        let vals: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let frac = f64::from(keep_pct) / 100.0;
        let s = top_k_sparsify(&vals, frac);
        prop_assert_eq!(s.dense_len, vals.len());
        prop_assert_eq!(s.indices.len(), s.values.len());
        if !vals.is_empty() {
            let expected_k = (((vals.len() as f64) * frac).round() as usize)
                .max(1)
                .min(vals.len());
            prop_assert_eq!(s.indices.len(), expected_k);
        }
        // Indices strictly ascending (hence unique and in range) and each
        // retained value bitwise equal to its dense source.
        prop_assert!(s.indices.windows(2).all(|w| w[0] < w[1]));
        for (&i, &v) in s.indices.iter().zip(&s.values) {
            prop_assert!((i as usize) < vals.len());
            prop_assert_eq!(v.to_bits(), vals[i as usize].to_bits());
        }
    }

    #[test]
    fn top_k_full_keep_roundtrips_dense(
        bits in prop::collection::vec(any::<u32>(), 1..100),
    ) {
        // keep_fraction = 1.0 must be the identity: every finite value
        // survives to_dense at its original position. (NaNs are excluded
        // here because to_dense rebuilds via `=` and the invariant under
        // test is positional, not bit-level.)
        let vals: Vec<f32> = bits
            .iter()
            .map(|&b| {
                let v = f32::from_bits(b);
                if v.is_nan() {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        let s = top_k_sparsify(&vals, 1.0);
        prop_assert_eq!(s.indices.len(), vals.len());
        prop_assert!(same_bits(&s.to_dense(), &vals));
    }
}
