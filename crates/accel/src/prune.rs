//! Magnitude pruning masks.

/// Ascending (|value|, index) comparator. `total_cmp` keeps this a genuine
/// total order on non-finite data (the `partial_cmp`-with-`Equal`-fallback
/// pattern is intransitive around NaN and panics the std sort); the index
/// tiebreak makes all keys distinct, so any selection of the smallest
/// `drop` keys is unique and therefore deterministic.
fn by_magnitude(values: &[f32]) -> impl Fn(&usize, &usize) -> std::cmp::Ordering + '_ {
    |&a, &b| values[a].abs().total_cmp(&values[b].abs()).then(a.cmp(&b))
}

/// Build a keep-mask retaining the top `(1 - fraction)` of `values` by
/// absolute magnitude. `mask[i] == true` means parameter `i` survives.
///
/// Ties are broken by index (earlier parameters survive), which keeps the
/// mask deterministic. Runs in `O(n)` via quickselect — this executes per
/// cohort attempt on the round hot path, where a full sort showed up in
/// profiles.
///
/// # Panics
///
/// Panics if `fraction` is not in `[0, 1]`.
pub fn magnitude_mask(values: &[f32], fraction: f64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let n = values.len();
    let drop = ((n as f64) * fraction).round() as usize;
    if drop == 0 {
        return vec![true; n];
    }
    if drop >= n {
        return vec![false; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    // Partition so the `drop` smallest-magnitude indices land in front —
    // membership of that set is unique, internal order irrelevant.
    order.select_nth_unstable_by(drop - 1, by_magnitude(values));
    let mut mask = vec![true; n];
    for &i in &order[..drop] {
        mask[i] = false;
    }
    mask
}

/// Like [`magnitude_mask`], but parameters whose `protected` entry is
/// `true` always survive (biases, classifier layers). The drop budget is
/// `fraction` of the *unprotected* parameters, matching how pruning
/// ratios are quoted for real networks.
///
/// # Panics
///
/// Panics if `fraction` is not in `[0, 1]` or lengths differ.
pub fn magnitude_mask_protected(values: &[f32], fraction: f64, protected: &[bool]) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    assert_eq!(values.len(), protected.len(), "protected length mismatch");
    let candidates: Vec<usize> = (0..values.len()).filter(|&i| !protected[i]).collect();
    let drop = ((candidates.len() as f64) * fraction).round() as usize;
    let mut mask = vec![true; values.len()];
    if drop == 0 {
        return mask;
    }
    let mut order = candidates;
    order.select_nth_unstable_by(drop - 1, by_magnitude(values));
    for &i in order.iter().take(drop) {
        mask[i] = false;
    }
    mask
}

/// Apply a keep-mask in place: pruned entries are zeroed.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn apply_mask(values: &mut [f32], mask: &[bool]) {
    assert_eq!(values.len(), mask.len(), "mask length mismatch");
    for (v, &keep) in values.iter_mut().zip(mask) {
        if !keep {
            *v = 0.0;
        }
    }
}

/// Fraction of surviving parameters in a mask.
pub fn density(mask: &[bool]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.iter().filter(|&&k| k).count() as f64 / mask.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_keeps_largest() {
        let vals = [0.1f32, -5.0, 0.01, 3.0, -0.2, 0.0];
        let mask = magnitude_mask(&vals, 0.5);
        assert_eq!(mask.iter().filter(|&&k| k).count(), 3);
        assert!(mask[1] && mask[3]); // |−5| and |3| must survive
        assert!(!mask[2] && !mask[5]); // |0.01| and 0 must go
    }

    #[test]
    fn zero_fraction_keeps_all() {
        let vals = [1.0f32; 7];
        assert!(magnitude_mask(&vals, 0.0).iter().all(|&k| k));
    }

    #[test]
    fn full_fraction_drops_all() {
        let vals = [1.0f32; 7];
        assert!(magnitude_mask(&vals, 1.0).iter().all(|&k| !k));
    }

    #[test]
    fn density_matches_fraction() {
        let vals: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        for &f in &[0.25f64, 0.5, 0.75] {
            let d = density(&magnitude_mask(&vals, f));
            assert!((d - (1.0 - f)).abs() < 0.01, "fraction {f}: density {d}");
        }
    }

    #[test]
    fn apply_mask_zeroes_pruned() {
        let mut vals = [1.0f32, 2.0, 3.0];
        apply_mask(&mut vals, &[true, false, true]);
        assert_eq!(vals, [1.0, 0.0, 3.0]);
    }

    #[test]
    fn deterministic_under_ties() {
        let vals = [1.0f32; 6];
        assert_eq!(magnitude_mask(&vals, 0.5), magnitude_mask(&vals, 0.5));
    }

    #[test]
    #[should_panic(expected = "fraction must be")]
    fn out_of_range_fraction_panics() {
        let _ = magnitude_mask(&[1.0], 1.5);
    }

    #[test]
    fn protected_params_always_survive() {
        let vals = [0.0f32, 0.001, 5.0, 0.002, 0.003, 4.0];
        // Protect indices 0 and 3 despite tiny magnitudes.
        let protected = [true, false, false, true, false, false];
        let mask = magnitude_mask_protected(&vals, 0.5, &protected);
        assert!(mask[0] && mask[3], "protected params were pruned");
        // 50% of the 4 unprotected params (the two smallest) go.
        assert!(!mask[1] && !mask[4]);
        assert!(mask[2] && mask[5]);
    }

    #[test]
    fn protected_mask_budget_counts_unprotected_only() {
        let vals: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let protected: Vec<bool> = (0..100).map(|i| i < 20).collect();
        let mask = magnitude_mask_protected(&vals, 0.5, &protected);
        let pruned = mask.iter().filter(|&&k| !k).count();
        assert_eq!(pruned, 40); // 50% of the 80 unprotected
    }
}
