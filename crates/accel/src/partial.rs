//! Partial-training (parameter freezing) masks.

use rand::seq::SliceRandom;

use float_tensor::seed_rng;

/// Build a frozen-mask freezing `fraction` of `n` parameters, chosen
/// uniformly at random from `seed`. `mask[i] == true` means parameter `i`
/// is frozen (not updated during local training).
///
/// Random selection (rather than freezing whole prefix layers) matches
/// partial-training schemes that drop a subset of filters/rows each round
/// and keeps the frozen set unbiased across layers.
///
/// # Panics
///
/// Panics if `fraction` is not in `[0, 1]`.
pub fn frozen_mask(n: usize, fraction: f64, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let freeze = ((n as f64) * fraction).round() as usize;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut seed_rng(seed));
    let mut mask = vec![false; n];
    for &i in idx.iter().take(freeze) {
        mask[i] = true;
    }
    mask
}

/// Fraction of frozen parameters in a mask.
pub fn frozen_fraction(mask: &[bool]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.iter().filter(|&&f| f).count() as f64 / mask.len() as f64
}

/// Compute-cost multiplier for training with `fraction` of parameters
/// frozen.
///
/// A training step is roughly 1/3 forward + 2/3 backward; the forward pass
/// still runs in full, while backward work scales with the trainable
/// fraction. Hence cost ≈ 1/3 + 2/3·(1−fraction). This is why partial
/// training "primarily alleviates the computational burden" but not the
/// communication burden (paper, RQ3 discussion of Fig. 10c).
pub fn compute_multiplier(fraction: f64) -> f64 {
    (1.0 / 3.0 + 2.0 / 3.0 * (1.0 - fraction)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_freezes_requested_fraction() {
        for &f in &[0.25f64, 0.5, 0.75] {
            let m = frozen_mask(1000, f, 3);
            assert!((frozen_fraction(&m) - f).abs() < 0.01);
        }
    }

    #[test]
    fn mask_is_deterministic_per_seed() {
        assert_eq!(frozen_mask(100, 0.5, 9), frozen_mask(100, 0.5, 9));
        assert_ne!(frozen_mask(100, 0.5, 9), frozen_mask(100, 0.5, 10));
    }

    #[test]
    fn freezing_spreads_across_buffer() {
        // Neither the first nor second half should be all-frozen.
        let m = frozen_mask(1000, 0.5, 4);
        let first = m[..500].iter().filter(|&&f| f).count();
        assert!(first > 150 && first < 350, "first-half frozen {first}");
    }

    #[test]
    fn compute_multiplier_bounds() {
        assert!((compute_multiplier(0.0) - 1.0).abs() < 1e-12);
        let m75 = compute_multiplier(0.75);
        assert!(m75 > 0.3 && m75 < 0.6, "75% partial multiplier {m75}");
        assert!(compute_multiplier(1.0) > 0.3); // forward pass never free
    }

    #[test]
    fn zero_and_full_fractions() {
        assert!(frozen_mask(10, 0.0, 1).iter().all(|&f| !f));
        assert!(frozen_mask(10, 1.0, 1).iter().all(|&f| f));
    }
}
