//! Update compression: a real byte-level lossless codec (RLE over a
//! byte-transposed layout) and lossy top-k sparsification.
//!
//! Lossless compression of raw fp32 gradients barely helps (mantissa bytes
//! are near-random); transposing into byte planes first groups the highly
//! redundant sign/exponent bytes so runs emerge. This mirrors how real
//! gradient codecs get their wins and gives the simulator an *honest*
//! compressed size rather than an assumed ratio — the paper notes lossless
//! compression "reduces communication bandwidth requirements but needs
//! more computation" (§4.3), which is exactly the trade-off produced here.

/// Compress a float buffer with run-length encoding over byte planes.
///
/// Layout: `[orig_bytes: u32]` followed by four planes, each
/// `[tag: u8][payload]` where tag 0 means raw bytes and tag 1 means RLE
/// `(count, byte)` pairs. Planes that RLE would inflate (the near-random
/// mantissa bytes of a gradient) fall back to raw, so compression never
/// more than marginally hurts — exactly how honest gradient codecs behave.
pub fn compress_f32_update(values: &[f32]) -> Vec<u8> {
    let n = values.len();
    let mut out = Vec::with_capacity(2 * n + 8);
    out.extend_from_slice(&((n * 4) as u32).to_le_bytes());
    // Plane bytes are read straight out of the bit patterns (little-endian
    // byte `plane` of value `i` is `bits >> (8 * plane)`), so no transposed
    // copy of the buffer is ever materialized — this codec runs per cohort
    // attempt on the round hot path.
    for plane in 0..4 {
        let shift = 8 * plane;
        let byte_at = |i: usize| (values[i].to_bits() >> shift) as u8;
        let tag_pos = out.len();
        out.push(1);
        let rle_start = out.len();
        let mut i = 0;
        while i < n {
            // RLE can no longer beat raw: abort instead of finishing the
            // encode just to throw it away (mantissa planes take this exit
            // about halfway through).
            if out.len() - rle_start >= n {
                break;
            }
            let b = byte_at(i);
            let mut run = 1usize;
            while i + run < n && run < 255 && byte_at(i + run) == b {
                run += 1;
            }
            out.push(run as u8);
            out.push(b);
            i += run;
        }
        if i < n || out.len() - rle_start >= n {
            // Raw fallback, same decision rule as encoding fully and
            // comparing sizes: RLE wins only when strictly smaller.
            out.truncate(tag_pos);
            out.push(0);
            out.extend((0..n).map(byte_at));
        }
    }
    out
}

/// Decompress a buffer produced by [`compress_f32_update`].
///
/// Returns `None` on malformed input.
pub fn decompress_f32_update(data: &[u8]) -> Option<Vec<f32>> {
    if data.len() < 4 {
        return None;
    }
    let total = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    if !total.is_multiple_of(4) {
        return None;
    }
    let n = total / 4;
    let mut cursor = 4usize;
    let mut planes: Vec<Vec<u8>> = Vec::with_capacity(4);
    for _ in 0..4 {
        let tag = *data.get(cursor)?;
        cursor += 1;
        match tag {
            0 => {
                if cursor + n > data.len() {
                    return None;
                }
                planes.push(data[cursor..cursor + n].to_vec());
                cursor += n;
            }
            1 => {
                let (plane, used) = rle_decode(&data[cursor..], n)?;
                planes.push(plane);
                cursor += used;
            }
            _ => return None,
        }
    }
    let mut out = Vec::with_capacity(n);
    for (((&b0, &b1), &b2), &b3) in planes[0]
        .iter()
        .zip(&planes[1])
        .zip(&planes[2])
        .zip(&planes[3])
    {
        out.push(f32::from_le_bytes([b0, b1, b2, b3]));
    }
    Some(out)
}

/// Decode `expected` bytes of RLE data; returns `(bytes, consumed)`.
fn rle_decode(data: &[u8], expected: usize) -> Option<(Vec<u8>, usize)> {
    let mut out = Vec::with_capacity(expected);
    let mut i = 0;
    while out.len() < expected {
        if i + 1 >= data.len() {
            return None;
        }
        let run = data[i] as usize;
        if run == 0 {
            return None;
        }
        let b = data[i + 1];
        out.extend(std::iter::repeat_n(b, run));
        i += 2;
    }
    if out.len() != expected {
        return None;
    }
    Some((out, i))
}

/// A sparsified update: surviving coordinates and their values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseUpdate {
    /// Indices of retained coordinates, ascending.
    pub indices: Vec<u32>,
    /// Values at those coordinates.
    pub values: Vec<f32>,
    /// Length of the dense vector this was taken from.
    pub dense_len: usize,
}

impl SparseUpdate {
    /// Wire size in bytes: 4 per index + 4 per value + 8 header.
    pub fn wire_bytes(&self) -> usize {
        self.indices.len() * 8 + 8
    }

    /// Reconstruct the dense vector (zeros elsewhere).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if (i as usize) < self.dense_len {
                out[i as usize] = v;
            }
        }
        out
    }
}

/// Keep the `keep_fraction` largest-magnitude coordinates of `values`.
///
/// Magnitudes are ranked with [`f32::total_cmp`], so the comparator is a
/// genuine total order even on non-finite data (a `partial_cmp`-with-
/// `Equal`-fallback comparator is intransitive around NaN and makes the
/// std sort panic). Under `total_cmp`, NaN magnitudes rank above infinity
/// — a poisoned coordinate is always retained rather than silently
/// dropped, matching the runtime's quarantine path which needs to *see*
/// non-finite updates.
///
/// # Panics
///
/// Panics if `keep_fraction` is not in `(0, 1]`.
pub fn top_k_sparsify(values: &[f32], keep_fraction: f64) -> SparseUpdate {
    assert!(
        keep_fraction > 0.0 && keep_fraction <= 1.0,
        "keep_fraction must be in (0,1]"
    );
    let k = (((values.len() as f64) * keep_fraction).round() as usize)
        .max(1)
        .min(values.len());
    let mut order: Vec<usize> = (0..values.len()).collect();
    // Quickselect the k largest-magnitude indices (descending comparator),
    // then sort just those k by position: O(n + k log k), not O(n log n) —
    // this runs per cohort attempt on the round hot path. The index
    // tiebreak makes keys distinct, so the selected *set* is unique even
    // though the partition order is not.
    if k < order.len() {
        order.select_nth_unstable_by(k - 1, |&a, &b| {
            values[b].abs().total_cmp(&values[a].abs()).then(a.cmp(&b))
        });
    }
    order.truncate(k);
    let mut keep = order;
    keep.sort_unstable();
    SparseUpdate {
        indices: keep.iter().map(|&i| i as u32).collect(),
        values: keep.iter().map(|&i| values[i]).collect(),
        dense_len: values.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_roundtrip() {
        let vals: Vec<f32> = (0..300).map(|i| (i % 7) as f32 * 0.001 - 0.003).collect();
        let compressed = compress_f32_update(&vals);
        let back = decompress_f32_update(&compressed).expect("valid stream");
        assert_eq!(back, vals);
    }

    #[test]
    fn redundant_updates_compress() {
        // A sparse update — long zero runs in every byte plane.
        let vals: Vec<f32> = (0..4000)
            .map(|i| {
                if i % 50 == 0 {
                    0.01 + i as f32 * 1e-6
                } else {
                    0.0
                }
            })
            .collect();
        let compressed = compress_f32_update(&vals);
        assert!(
            compressed.len() < vals.len() * 4 / 2,
            "compressed {} of {} raw bytes",
            compressed.len(),
            vals.len() * 4
        );
    }

    #[test]
    fn incompressible_data_does_not_blow_up() {
        // Pseudo-random mantissas: raw fallback keeps overhead tiny.
        let vals: Vec<f32> = (0..2000)
            .map(|i| ((i * 2654435761u64 as usize) % 10_007) as f32 / 313.7 - 15.0)
            .collect();
        let compressed = compress_f32_update(&vals);
        assert!(
            compressed.len() <= vals.len() * 4 + 8,
            "compressed {} exceeds raw {} + header",
            compressed.len(),
            vals.len() * 4
        );
        assert_eq!(decompress_f32_update(&compressed), Some(vals));
    }

    #[test]
    fn empty_roundtrip() {
        let compressed = compress_f32_update(&[]);
        assert_eq!(decompress_f32_update(&compressed), Some(vec![]));
    }

    #[test]
    fn malformed_stream_is_none() {
        assert_eq!(decompress_f32_update(&[1, 2]), None);
        // Header promises bytes that never arrive.
        let bogus = [16u8, 0, 0, 0, 3, 7];
        assert_eq!(decompress_f32_update(&bogus), None);
    }

    #[test]
    fn top_k_keeps_largest() {
        let vals = [0.1f32, -9.0, 0.2, 5.0, -0.05];
        let s = top_k_sparsify(&vals, 0.4);
        assert_eq!(s.indices, vec![1, 3]);
        assert_eq!(s.values, vec![-9.0, 5.0]);
        let dense = s.to_dense();
        assert_eq!(dense, vec![0.0, -9.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn top_k_wire_size_beats_dense_for_small_k() {
        let vals: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let s = top_k_sparsify(&vals, 0.1);
        assert!(s.wire_bytes() < vals.len() * 4 / 2);
    }

    #[test]
    fn top_k_always_keeps_at_least_one() {
        let s = top_k_sparsify(&[0.5f32], 0.01);
        assert_eq!(s.indices.len(), 1);
    }

    #[test]
    #[should_panic(expected = "keep_fraction")]
    fn zero_keep_fraction_panics() {
        let _ = top_k_sparsify(&[1.0], 0.0);
    }

    #[test]
    fn top_k_ranks_nan_above_everything() {
        // NaN magnitudes must survive sparsification (and not panic the
        // sort) so the quarantine path downstream can observe them.
        let vals = [1.0f32, f32::NAN, f32::INFINITY, -2.0];
        let s = top_k_sparsify(&vals, 0.5);
        assert_eq!(s.indices, vec![1, 2]);
        assert!(s.values[0].is_nan());
        assert_eq!(s.values[1], f32::INFINITY);
    }
}
