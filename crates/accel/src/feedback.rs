//! Error feedback (residual accumulation) for lossy update compression.
//!
//! Top-k sparsification drops most of an update's coordinates each round.
//! Without correction, the dropped mass is lost forever and convergence
//! degrades. Error feedback — the standard companion to sparsified SGD —
//! keeps the per-client residual: each round the client compresses
//! `update + residual`, transmits the sparse part, and carries the
//! untransmitted remainder forward. Over time every coordinate's
//! contribution eventually ships, so the *sum* of transmitted updates
//! converges to the sum of raw updates.

use serde::{Deserialize, Serialize};

use crate::compress::top_k_sparsify;

/// Per-client residual memory for error-feedback compression.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// Fresh, empty residual state.
    pub fn new() -> Self {
        ErrorFeedback::default()
    }

    /// Compress `update` with top-k sparsification at `keep_fraction`,
    /// folding in and updating the carried residual. Returns the dense
    /// form of what actually ships this round.
    ///
    /// The residual buffer is lazily sized to the update length; a model
    /// size change resets it.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is not in `(0, 1]` (propagated from the
    /// sparsifier).
    pub fn compress(&mut self, update: &[f32], keep_fraction: f64) -> Vec<f32> {
        if self.residual.len() != update.len() {
            self.residual = vec![0.0; update.len()];
        }
        let corrected: Vec<f32> = update
            .iter()
            .zip(&self.residual)
            .map(|(u, r)| u + r)
            .collect();
        let shipped = top_k_sparsify(&corrected, keep_fraction).to_dense();
        for ((r, &c), &s) in self.residual.iter_mut().zip(&corrected).zip(&shipped) {
            *r = c - s;
        }
        shipped
    }

    /// Squared L2 norm of the carried residual (diagnostics).
    pub fn residual_sq_norm(&self) -> f64 {
        self.residual
            .iter()
            .map(|&r| f64::from(r) * f64::from(r))
            .sum()
    }

    /// Drop the carried residual (e.g. after the client re-syncs with a
    /// fresh global model).
    pub fn reset(&mut self) {
        self.residual.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmitted_mass_converges_to_raw_mass() {
        // The defining property: sum of shipped updates approaches the sum
        // of raw updates as rounds accumulate.
        let mut ef = ErrorFeedback::new();
        let n = 64;
        let rounds = 40;
        let mut raw_sum = vec![0.0f64; n];
        let mut shipped_sum = vec![0.0f64; n];
        for round in 0..rounds {
            let update: Vec<f32> = (0..n)
                .map(|i| (((i * 7 + round * 13) % 11) as f32 - 5.0) / 10.0)
                .collect();
            let shipped = ef.compress(&update, 0.2);
            for i in 0..n {
                raw_sum[i] += f64::from(update[i]);
                shipped_sum[i] += f64::from(shipped[i]);
            }
        }
        // Remaining gap is exactly the residual, which is bounded by one
        // round's worth of mass, not `rounds` worth.
        let gap: f64 = raw_sum
            .iter()
            .zip(&shipped_sum)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let per_round_mass: f64 = (0..n)
            .map(|i| f64::from((((i * 7) % 11) as f32 - 5.0).abs() / 10.0))
            .sum();
        assert!(
            gap < 2.0 * per_round_mass,
            "gap {gap} not bounded by ~one round of mass {per_round_mass}"
        );
    }

    #[test]
    fn residual_holds_exactly_the_untransmitted_part() {
        let mut ef = ErrorFeedback::new();
        let update = vec![1.0f32, -0.5, 0.25, -0.125];
        let shipped = ef.compress(&update, 0.25); // keeps 1 coordinate
        let kept = shipped.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(kept, 1);
        // residual + shipped == update (first round has zero prior residual).
        let total_err = update
            .iter()
            .zip(&shipped)
            .map(|(u, s)| u - s)
            .map(f32::abs)
            .sum::<f32>();
        assert!((ef.residual_sq_norm().sqrt() - f64::from(total_err)) < 1e-6);
    }

    #[test]
    fn small_coordinates_eventually_ship() {
        // A persistently tiny coordinate must accumulate until it wins a
        // top-k slot.
        let mut ef = ErrorFeedback::new();
        let mut shipped_small = 0.0f64;
        for _ in 0..50 {
            let mut update = vec![0.0f32; 10];
            update[0] = 1.0; // always dominant
            update[9] = 0.05; // persistently tiny
            let shipped = ef.compress(&update, 0.1); // keeps 1 of 10
            shipped_small += f64::from(shipped[9]);
        }
        assert!(
            shipped_small > 1.0,
            "small coordinate never shipped: total {shipped_small}"
        );
    }

    #[test]
    fn size_change_resets_residual() {
        let mut ef = ErrorFeedback::new();
        let _ = ef.compress(&[1.0, 2.0], 0.5);
        assert!(ef.residual_sq_norm() > 0.0);
        let _ = ef.compress(&[1.0, 2.0, 3.0, 4.0], 0.5);
        // New size: residual was rebuilt for the new length, not carried.
        let _ = ef.compress(&[0.0, 0.0, 0.0, 0.0], 1.0);
        // With keep=1.0 everything ships, so the residual empties.
        assert!(ef.residual_sq_norm() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut ef = ErrorFeedback::new();
        let _ = ef.compress(&[1.0, 2.0, 3.0, 4.0], 0.25);
        ef.reset();
        assert_eq!(ef.residual_sq_norm(), 0.0);
    }
}
