//! Turning an [`AccelAction`] into an executable round plan: the resource
//! cost transform plus the concrete model-side transforms.

use float_models::{Precision, RoundCost};
use float_tensor::model::TrainOptions;

use crate::action::AccelAction;
use crate::compress::{compress_f32_update, top_k_sparsify};
use crate::partial::{compute_multiplier, frozen_mask};
use crate::prune::{magnitude_mask, magnitude_mask_protected};
use crate::quantize::quantize_dequantize;

/// The executable consequences of choosing an acceleration action for one
/// client round.
#[derive(Debug, Clone)]
pub struct AccelPlan {
    /// The action this plan realizes.
    pub action: AccelAction,
    /// Resource cost of the accelerated round.
    pub cost: RoundCost,
    /// Hooks for the local training loop (prune / frozen masks).
    pub train_options: TrainOptions,
}

/// Build the [`AccelPlan`] for `action`.
///
/// * `base_cost` — the vanilla round cost for this client/model/dataset.
/// * `global_params` — the incoming global model parameters (needed to
///   compute magnitude-pruning masks).
/// * `seed` — determinism for the partial-training frozen subset.
///
/// Pruning prunes every parameter by magnitude; use
/// [`apply_action_protected`] when the model marks parameters (biases,
/// classifier layer) that must survive.
pub fn apply_action(
    action: AccelAction,
    base_cost: RoundCost,
    global_params: &[f32],
    seed: u64,
) -> AccelPlan {
    apply_action_protected(action, base_cost, global_params, seed, None)
}

/// [`apply_action`] with an optional mask of prune-protected parameters.
pub fn apply_action_protected(
    action: AccelAction,
    base_cost: RoundCost,
    global_params: &[f32],
    seed: u64,
    protected: Option<&[bool]>,
) -> AccelPlan {
    let n = global_params.len();
    match action {
        AccelAction::NoOp => AccelPlan {
            action,
            cost: base_cost,
            train_options: TrainOptions::default(),
        },
        AccelAction::Quantize16 | AccelAction::Quantize8 => {
            let precision = if action == AccelAction::Quantize16 {
                Precision::Int16
            } else {
                Precision::Int8
            };
            // Quantization shaves the upload but costs a little extra
            // compute for the quantize/dequantize passes (~2 flops/param).
            let cost = base_cost
                .with_upload_precision(precision)
                .add_flops(2.0 * n as f64);
            AccelPlan {
                action,
                cost,
                train_options: TrainOptions::default(),
            }
        }
        AccelAction::Prune25 | AccelAction::Prune50 | AccelAction::Prune75 => {
            let fraction = match action {
                AccelAction::Prune25 => 0.25,
                AccelAction::Prune50 => 0.50,
                _ => 0.75,
            };
            let mask = match protected {
                Some(p) if p.len() == global_params.len() => {
                    magnitude_mask_protected(global_params, fraction, p)
                }
                _ => magnitude_mask(global_params, fraction),
            };
            // A pruned model trains on, stores, and ships only the
            // surviving parameters — in both directions: the server sends
            // the pruned model down, and the client returns the pruned
            // update.
            let keep = 1.0 - fraction;
            let mut cost = base_cost
                .scale_compute(keep)
                .scale_upload(keep)
                .scale_memory(keep.max(0.25));
            cost.download_bytes *= keep;
            AccelPlan {
                action,
                cost,
                train_options: TrainOptions {
                    prune_mask: Some(mask),
                    frozen: None,
                },
            }
        }
        AccelAction::Partial25 | AccelAction::Partial50 | AccelAction::Partial75 => {
            let fraction = match action {
                AccelAction::Partial25 => 0.25,
                AccelAction::Partial50 => 0.50,
                _ => 0.75,
            };
            let frozen = frozen_mask(n, fraction, seed);
            // Partial training cuts backward-pass compute and gradient
            // memory, but the full model still ships both ways — that is
            // precisely why it underperforms when the *network* is the
            // bottleneck (paper Fig. 10c).
            let cost = base_cost
                .scale_compute(compute_multiplier(fraction))
                .scale_memory(1.0 - fraction / 3.0);
            AccelPlan {
                action,
                cost,
                train_options: TrainOptions {
                    prune_mask: None,
                    frozen: Some(frozen),
                },
            }
        }
        AccelAction::CompressLossless => {
            // Honest ratio: compress the actual global parameters as a
            // stand-in for the update (same byte statistics) and price the
            // upload at the measured ratio, plus compression compute
            // (~30 flops/param for the codec passes).
            let ratio = if n == 0 {
                1.0
            } else {
                let compressed = compress_f32_update(global_params).len() as f64;
                (compressed / (4.0 * n as f64)).min(1.0)
            };
            let cost = base_cost.scale_upload(ratio).add_flops(30.0 * n as f64);
            AccelPlan {
                action,
                cost,
                train_options: TrainOptions::default(),
            }
        }
        AccelAction::TopK10 => {
            let keep = 0.10;
            // indices (4B) + values (4B) per kept coordinate vs 4B dense.
            let wire_ratio = keep * 2.0;
            let cost = base_cost
                .scale_upload(wire_ratio)
                .add_flops((n as f64) * (n as f64).log2().max(1.0) * 0.1);
            AccelPlan {
                action,
                cost,
                train_options: TrainOptions::default(),
            }
        }
    }
}

/// Transform a computed model update (delta) the way the chosen action
/// would before upload: quantization rounds it to the wire grid, top-k
/// sparsifies it, pruning zeroes pruned coordinates. Pass-through for
/// actions that ship the exact update.
pub fn transform_update(action: AccelAction, update: &[f32], plan: &AccelPlan) -> Vec<f32> {
    match action {
        AccelAction::Quantize16 => quantize_dequantize(update, 16),
        AccelAction::Quantize8 => quantize_dequantize(update, 8),
        AccelAction::TopK10 => top_k_sparsify(update, 0.10).to_dense(),
        AccelAction::Prune25 | AccelAction::Prune50 | AccelAction::Prune75 => {
            match &plan.train_options.prune_mask {
                Some(mask) if mask.len() == update.len() => update
                    .iter()
                    .zip(mask)
                    .map(|(&u, &keep)| if keep { u } else { 0.0 })
                    .collect(),
                _ => update.to_vec(),
            }
        }
        _ => update.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use float_models::Architecture;

    fn base() -> RoundCost {
        RoundCost::vanilla(&Architecture::ResNet18.profile(), 100, 5, 20)
    }

    fn params(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) / 10.0)
            .collect()
    }

    #[test]
    fn noop_is_identity() {
        let b = base();
        let plan = apply_action(AccelAction::NoOp, b, &params(100), 0);
        assert_eq!(plan.cost.train_flops, b.train_flops);
        assert_eq!(plan.cost.upload_bytes, b.upload_bytes);
        assert!(plan.train_options.prune_mask.is_none());
        assert!(plan.train_options.frozen.is_none());
    }

    #[test]
    fn quantization_cuts_upload_adds_compute() {
        let b = base();
        let q8 = apply_action(AccelAction::Quantize8, b, &params(100), 0);
        assert!((q8.cost.upload_bytes - b.upload_bytes / 4.0).abs() < 1.0);
        assert!(q8.cost.train_flops > b.train_flops);
        assert_eq!(q8.cost.download_bytes, b.download_bytes);
    }

    #[test]
    fn pruning_cuts_everything() {
        let b = base();
        let p75 = apply_action(AccelAction::Prune75, b, &params(1000), 0);
        assert!((p75.cost.train_flops - b.train_flops * 0.25).abs() < 1.0);
        assert!((p75.cost.upload_bytes - b.upload_bytes * 0.25).abs() < 1.0);
        assert!(p75.cost.memory_bytes < b.memory_bytes);
        let mask = p75.train_options.prune_mask.expect("prune mask");
        let density = mask.iter().filter(|&&k| k).count() as f64 / mask.len() as f64;
        assert!((density - 0.25).abs() < 0.01);
    }

    #[test]
    fn partial_training_does_not_cut_upload() {
        let b = base();
        let p75 = apply_action(AccelAction::Partial75, b, &params(1000), 7);
        assert_eq!(p75.cost.upload_bytes, b.upload_bytes);
        assert!(p75.cost.train_flops < b.train_flops * 0.6);
        let frozen = p75.train_options.frozen.expect("frozen mask");
        let ff = frozen.iter().filter(|&&f| f).count() as f64 / frozen.len() as f64;
        assert!((ff - 0.75).abs() < 0.01);
    }

    #[test]
    fn compression_uses_measured_ratio() {
        let b = base();
        // Highly redundant parameters compress well.
        let redundant = vec![0.125f32; 4096];
        let plan = apply_action(AccelAction::CompressLossless, b, &redundant, 0);
        assert!(
            plan.cost.upload_bytes < b.upload_bytes * 0.2,
            "upload {} vs base {}",
            plan.cost.upload_bytes,
            b.upload_bytes
        );
    }

    #[test]
    fn transform_update_quantizes() {
        let plan = apply_action(AccelAction::Quantize8, base(), &params(64), 0);
        let update = params(64);
        let out = transform_update(AccelAction::Quantize8, &update, &plan);
        assert_eq!(out.len(), update.len());
        assert_ne!(out, update); // grid rounding changed something
    }

    #[test]
    fn transform_update_respects_prune_mask() {
        let p = params(64);
        let plan = apply_action(AccelAction::Prune50, base(), &p, 0);
        let update = vec![1.0f32; 64];
        let out = transform_update(AccelAction::Prune50, &update, &plan);
        let zeros = out.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 32);
    }

    #[test]
    fn aggressive_actions_cost_less_compute_or_upload() {
        let b = base();
        let p = params(512);
        for action in [
            AccelAction::Quantize16,
            AccelAction::Quantize8,
            AccelAction::Prune25,
            AccelAction::Prune75,
            AccelAction::Partial25,
            AccelAction::Partial75,
            AccelAction::TopK10,
        ] {
            let plan = apply_action(action, b, &p, 3);
            let saves_compute = plan.cost.train_flops < b.train_flops;
            let saves_upload = plan.cost.upload_bytes < b.upload_bytes;
            assert!(
                saves_compute || saves_upload,
                "{} saves neither compute nor upload",
                action.name()
            );
        }
    }
}
