//! The acceleration action space.

use serde::{Deserialize, Serialize};

/// One acceleration action the RLHF agent can apply to a client's round.
///
/// The paper's catalogue is eight actions: two quantization levels, three
/// pruning ratios, and three partial-training ratios. [`AccelAction::NoOp`]
/// and the compression actions are extensions available through
/// [`ActionCatalogue::extended`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccelAction {
    /// No acceleration — vanilla local round.
    NoOp,
    /// Quantize the model update to 16 bits.
    Quantize16,
    /// Quantize the model update to 8 bits.
    Quantize8,
    /// Magnitude-prune 25 % of parameters.
    Prune25,
    /// Magnitude-prune 50 % of parameters.
    Prune50,
    /// Magnitude-prune 75 % of parameters.
    Prune75,
    /// Freeze 25 % of parameters during local training.
    Partial25,
    /// Freeze 50 % of parameters during local training.
    Partial50,
    /// Freeze 75 % of parameters during local training.
    Partial75,
    /// Lossless byte-level compression of the fp32 update.
    CompressLossless,
    /// Lossy top-k sparsification keeping 10 % of coordinates.
    TopK10,
}

impl AccelAction {
    /// Short identifier used in logs and figures.
    pub fn name(self) -> &'static str {
        match self {
            AccelAction::NoOp => "noop",
            AccelAction::Quantize16 => "quant16",
            AccelAction::Quantize8 => "quant8",
            AccelAction::Prune25 => "prune25",
            AccelAction::Prune50 => "prune50",
            AccelAction::Prune75 => "prune75",
            AccelAction::Partial25 => "partial25",
            AccelAction::Partial50 => "partial50",
            AccelAction::Partial75 => "partial75",
            AccelAction::CompressLossless => "compress",
            AccelAction::TopK10 => "topk10",
        }
    }

    /// Aggressiveness in `[0, 1]`: how hard the action cuts resource usage
    /// (and, typically, how much accuracy it risks). Used by the heuristic
    /// baseline and by tests.
    pub fn aggressiveness(self) -> f64 {
        match self {
            AccelAction::NoOp => 0.0,
            AccelAction::CompressLossless => 0.1,
            AccelAction::Quantize16 => 0.25,
            AccelAction::Prune25 | AccelAction::Partial25 => 0.25,
            AccelAction::Prune50 | AccelAction::Partial50 => 0.5,
            AccelAction::Quantize8 => 0.6,
            AccelAction::Prune75 | AccelAction::Partial75 => 0.75,
            AccelAction::TopK10 => 0.9,
        }
    }

    /// The technique family of this action (for Fig. 6/11 per-technique
    /// aggregation).
    pub fn family(self) -> &'static str {
        match self {
            AccelAction::NoOp => "none",
            AccelAction::Quantize16 | AccelAction::Quantize8 => "quantization",
            AccelAction::Prune25 | AccelAction::Prune50 | AccelAction::Prune75 => "pruning",
            AccelAction::Partial25 | AccelAction::Partial50 | AccelAction::Partial75 => "partial",
            AccelAction::CompressLossless | AccelAction::TopK10 => "compression",
        }
    }
}

/// An ordered action catalogue (the RL agent indexes actions by position).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionCatalogue {
    actions: Vec<AccelAction>,
}

impl ActionCatalogue {
    /// The paper's eight-action catalogue (Fig. 8: "8 actions").
    pub fn paper() -> Self {
        ActionCatalogue {
            actions: vec![
                AccelAction::Quantize16,
                AccelAction::Quantize8,
                AccelAction::Prune25,
                AccelAction::Prune50,
                AccelAction::Prune75,
                AccelAction::Partial25,
                AccelAction::Partial50,
                AccelAction::Partial75,
            ],
        }
    }

    /// Extended catalogue including no-op and compression actions
    /// (the paper's "adding new acceleration techniques" discussion, RQ5).
    pub fn extended() -> Self {
        ActionCatalogue {
            actions: vec![
                AccelAction::NoOp,
                AccelAction::Quantize16,
                AccelAction::Quantize8,
                AccelAction::Prune25,
                AccelAction::Prune50,
                AccelAction::Prune75,
                AccelAction::Partial25,
                AccelAction::Partial50,
                AccelAction::Partial75,
                AccelAction::CompressLossless,
                AccelAction::TopK10,
            ],
        }
    }

    /// Build a custom catalogue.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty — the agent must always have a move.
    pub fn custom(actions: Vec<AccelAction>) -> Self {
        assert!(!actions.is_empty(), "action catalogue cannot be empty");
        ActionCatalogue { actions }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the catalogue is empty (never true for the constructors).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Action at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn action(&self, index: usize) -> AccelAction {
        self.actions[index]
    }

    /// Index of `action`, if present.
    pub fn index_of(&self, action: AccelAction) -> Option<usize> {
        self.actions.iter().position(|&a| a == action)
    }

    /// Iterate over actions in index order.
    pub fn iter(&self) -> impl Iterator<Item = AccelAction> + '_ {
        self.actions.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalogue_has_eight_actions() {
        assert_eq!(ActionCatalogue::paper().len(), 8);
    }

    #[test]
    fn extended_superset_of_paper() {
        let ext = ActionCatalogue::extended();
        for a in ActionCatalogue::paper().iter() {
            assert!(ext.index_of(a).is_some(), "{} missing", a.name());
        }
    }

    #[test]
    fn index_roundtrip() {
        let cat = ActionCatalogue::paper();
        for i in 0..cat.len() {
            assert_eq!(cat.index_of(cat.action(i)), Some(i));
        }
    }

    #[test]
    fn names_are_unique() {
        let cat = ActionCatalogue::extended();
        let mut names: Vec<_> = cat.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_catalogue_panics() {
        let _ = ActionCatalogue::custom(vec![]);
    }

    #[test]
    fn aggressiveness_orders_prune_levels() {
        assert!(AccelAction::Prune75.aggressiveness() > AccelAction::Prune25.aggressiveness());
        assert!(AccelAction::Quantize8.aggressiveness() > AccelAction::Quantize16.aggressiveness());
    }
}
