//! `float-accel` — acceleration techniques for straggling FL clients.
//!
//! The FLOAT paper's action space (§5, RQ1): model quantization (16- and
//! 8-bit), magnitude pruning (25/50/75 %), and partial training
//! (25/50/75 %), optionally extended with update compression. Each
//! technique is implemented twice over:
//!
//! 1. **As a real model transform** on the proxy model's flat parameters —
//!    quantize/dequantize on a uniform grid, top-magnitude pruning masks,
//!    frozen-parameter masks, top-k sparsification, and a real byte-level
//!    lossless codec — so the *accuracy* consequences of each action are
//!    produced by actual optimization, and
//! 2. **As a [`RoundCost`] transform** — fewer upload bytes, fewer training
//!    FLOPs, less resident memory — so the *resource* consequences drive
//!    the simulator's latency/energy/dropout accounting.
//!
//! The asymmetries the paper leans on are preserved: quantization helps
//! communication but costs a little extra compute; pruning helps compute
//! *and* communication *and* memory; partial training mostly helps compute
//! (the full model still ships both ways).
//!
//! [`RoundCost`]: float_models::RoundCost

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod apply;
pub mod compress;
pub mod feedback;
pub mod partial;
pub mod prune;
pub mod quantize;

pub use action::{AccelAction, ActionCatalogue};
pub use apply::{apply_action, apply_action_protected, AccelPlan};
pub use feedback::ErrorFeedback;
