//! Uniform symmetric quantization of flat parameter / update buffers.

/// Largest absolute value in the buffer, or `None` if any element is
/// non-finite. `f32::max` silently ignores NaN, so a plain fold would let
/// a NaN slip through while an Inf would poison the scale — either way
/// the whole reconstructed buffer becomes garbage. Track finiteness
/// explicitly instead.
fn finite_max_abs(values: &[f32]) -> Option<f32> {
    let mut max_abs = 0.0f32;
    for &v in values {
        if !v.is_finite() {
            return None;
        }
        max_abs = max_abs.max(v.abs());
    }
    Some(max_abs)
}

/// Quantize `values` onto a symmetric uniform grid with `bits` bits and
/// immediately dequantize, returning the values the aggregator would
/// reconstruct. This is what actually happens to a quantized update: the
/// client rounds to the grid, ships integers + a scale, and the server
/// rebuilds floats.
///
/// All-zero and empty inputs pass through unchanged. So do buffers
/// containing any NaN or ±Inf: a non-finite element would make the grid
/// scale non-finite and corrupt every other value in the buffer, so the
/// input is returned untouched and the caller's payload validation (the
/// runtime's quarantine check) is left to reject it.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 16 (8 and 16 are the paper's
/// levels; anything above 16 would be pointless for f32 payloads).
pub fn quantize_dequantize(values: &[f32], bits: u32) -> Vec<f32> {
    assert!((1..=16).contains(&bits), "bits must be in 1..=16");
    let Some(max_abs) = finite_max_abs(values) else {
        return values.to_vec();
    };
    if max_abs == 0.0 {
        return values.to_vec();
    }
    let levels = (1i64 << (bits - 1)) - 1; // symmetric signed grid
    let scale = max_abs / levels as f32;
    values
        .iter()
        .map(|&v| {
            let q = (v / scale).round().clamp(-(levels as f32), levels as f32);
            q * scale
        })
        .collect()
}

/// Worst-case quantization error bound for a buffer: half a grid step.
///
/// Non-finite buffers pass through [`quantize_dequantize`] unchanged, so
/// their bound is 0 — not the non-finite nonsense the naive `max_abs`
/// computation would yield.
pub fn quantization_error_bound(values: &[f32], bits: u32) -> f32 {
    let Some(max_abs) = finite_max_abs(values) else {
        return 0.0;
    };
    let levels = (1i64 << (bits - 1)) - 1;
    if levels == 0 {
        return max_abs;
    }
    max_abs / levels as f32 / 2.0
}

/// Wire size in bytes of a `bits`-bit quantized buffer of `n` values:
/// packed integers plus one f32 scale.
pub fn quantized_bytes(n: usize, bits: u32) -> usize {
    (n * bits as usize).div_ceil(8) + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_bounded() {
        let vals: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 37.0).collect();
        for &bits in &[8u32, 16] {
            let deq = quantize_dequantize(&vals, bits);
            let bound = quantization_error_bound(&vals, bits);
            for (a, b) in vals.iter().zip(&deq) {
                assert!(
                    (a - b).abs() <= bound + 1e-6,
                    "{bits}-bit err {} > bound {bound}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn sixteen_bit_is_finer_than_eight_bit() {
        let vals: Vec<f32> = (0..512)
            .map(|i| ((i * 37) % 101) as f32 / 13.0 - 3.5)
            .collect();
        let err = |bits| -> f32 {
            quantize_dequantize(&vals, bits)
                .iter()
                .zip(&vals)
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(err(16) < err(8) / 10.0);
    }

    #[test]
    fn zeros_pass_through() {
        let vals = vec![0.0f32; 16];
        assert_eq!(quantize_dequantize(&vals, 8), vals);
    }

    #[test]
    fn empty_is_fine() {
        assert!(quantize_dequantize(&[], 8).is_empty());
    }

    #[test]
    fn max_magnitude_is_representable() {
        let vals = vec![-3.0f32, 1.0, 3.0];
        let deq = quantize_dequantize(&vals, 8);
        assert!((deq[2] - 3.0).abs() < 1e-6);
        assert!((deq[0] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn wire_size_shrinks_with_bits() {
        assert_eq!(quantized_bytes(1000, 16), 2004);
        assert_eq!(quantized_bytes(1000, 8), 1004);
        assert!(quantized_bytes(1000, 8) < 4 * 1000);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_panics() {
        let _ = quantize_dequantize(&[1.0], 0);
    }

    #[test]
    fn nan_input_passes_through_unchanged() {
        // Regression: `f32::max` ignores NaN, so the old fold computed a
        // "valid" scale from the finite elements and silently rewrote the
        // NaN slots — and with an Inf present the scale itself went Inf
        // and zeroed every finite element. Both must pass through.
        let vals = vec![1.0f32, f32::NAN, -2.0, 0.5];
        let out = quantize_dequantize(&vals, 8);
        assert_eq!(out.len(), vals.len());
        assert!(out[1].is_nan());
        assert_eq!(out[0], 1.0);
        assert_eq!(out[2], -2.0);
        assert_eq!(out[3], 0.5);
        assert_eq!(quantization_error_bound(&vals, 8), 0.0);
    }

    #[test]
    fn inf_input_passes_through_unchanged() {
        for bad in [f32::INFINITY, f32::NEG_INFINITY] {
            let vals = vec![3.0f32, bad, -1.0];
            let out = quantize_dequantize(&vals, 16);
            assert_eq!(out[0], 3.0);
            assert_eq!(out[1], bad);
            assert_eq!(out[2], -1.0);
            assert_eq!(quantization_error_bound(&vals, 16), 0.0);
        }
    }
}
