//! The common client-selection interface.

use serde::{Deserialize, Serialize};

/// Which baseline a selector implements (for experiment labeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Uniform random synchronous selection.
    FedAvg,
    /// Utility-guided synchronous selection.
    Oort,
    /// Availability-window-predicting synchronous selection.
    Refl,
    /// Asynchronous buffered selection with over-selection.
    FedBuff,
    /// Tier-based selection (TiFL), an extension baseline.
    Tifl,
}

impl SelectorKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::FedAvg => "fedavg",
            SelectorKind::Oort => "oort",
            SelectorKind::Refl => "refl",
            SelectorKind::FedBuff => "fedbuff",
            SelectorKind::Tifl => "tifl",
        }
    }

    /// Whether this selector drives asynchronous aggregation.
    pub fn is_async(self) -> bool {
        matches!(self, SelectorKind::FedBuff)
    }
}

/// Per-client feedback handed to a selector after each round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionFeedback {
    /// Which client this describes.
    pub client: usize,
    /// Whether it completed the round.
    pub completed: bool,
    /// Wall time of its attempt, seconds.
    pub duration_s: f64,
    /// Statistical utility of its update (e.g. loss magnitude); higher
    /// means more informative. Zero for dropped clients.
    pub utility: f64,
    /// Whether the client was reachable when the round started.
    pub was_available: bool,
    /// Whether the client's update reached the server but was quarantined
    /// by payload validation (non-finite deltas). Implies `!completed`.
    /// Distinct from a no-show: the client was fast enough, its payload
    /// was poison — selectors may penalize that more harshly than
    /// slowness.
    #[serde(default)]
    pub quarantined: bool,
}

/// A client-selection strategy.
///
/// Selectors are deliberately ignorant of FLOAT: the runtime wraps any
/// `ClientSelector` and adds acceleration on top, demonstrating the
/// paper's non-intrusive integration claim.
pub trait ClientSelector {
    /// Which baseline this is.
    fn kind(&self) -> SelectorKind;

    /// Choose the clients to task in `round` from the `eligible` pool —
    /// the clients currently checked in as available, mirroring the
    /// FedScale/production model where unavailable devices are never
    /// candidates. `target` is the configured per-round cohort size
    /// (synchronous) or the top-up size (asynchronous). Must return
    /// distinct ids drawn from `eligible`.
    fn select(&mut self, round: usize, eligible: &[usize], target: usize) -> Vec<usize>;

    /// Observe the outcomes of the round's attempts.
    fn feedback(&mut self, round: usize, results: &[SelectionFeedback]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_unique_names() {
        let kinds = [
            SelectorKind::FedAvg,
            SelectorKind::Oort,
            SelectorKind::Refl,
            SelectorKind::FedBuff,
            SelectorKind::Tifl,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn only_fedbuff_is_async() {
        assert!(SelectorKind::FedBuff.is_async());
        assert!(!SelectorKind::FedAvg.is_async());
        assert!(!SelectorKind::Oort.is_async());
        assert!(!SelectorKind::Refl.is_async());
        assert!(!SelectorKind::Tifl.is_async());
    }
}
