//! The common client-selection interface.

use std::cmp::Ordering;

use float_profile::ProfileView;
use serde::{Deserialize, Serialize};

/// Reduce `v` to its top `k` elements under `cmp` (the comparator's
/// `Less`-first order), sorted by `cmp`.
///
/// When `cmp` is a *strict total order* — no two elements compare
/// `Equal`, which selectors guarantee by breaking f64 score ties on the
/// element's input position — this is bit-for-bit equivalent to
/// `v.sort_by(cmp); v.truncate(k)` (the position tiebreak reproduces
/// exactly what the stable sort would have kept), but costs
/// O(n + k log k) instead of O(n log n): at population scale a round
/// selects a ~30-client cohort out of hundreds of thousands of eligible
/// clients, so the full sort dominated selection time.
pub fn top_k_by<T>(v: &mut Vec<T>, k: usize, mut cmp: impl FnMut(&T, &T) -> Ordering) {
    if k == 0 {
        v.clear();
        return;
    }
    if k < v.len() {
        v.select_nth_unstable_by(k - 1, &mut cmp);
        v.truncate(k);
    }
    v.sort_unstable_by(&mut cmp);
}

/// Which baseline a selector implements (for experiment labeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Uniform random synchronous selection.
    FedAvg,
    /// Utility-guided synchronous selection.
    Oort,
    /// Availability-window-predicting synchronous selection.
    Refl,
    /// Asynchronous buffered selection with over-selection.
    FedBuff,
    /// Tier-based selection (TiFL), an extension baseline.
    Tifl,
}

impl SelectorKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::FedAvg => "fedavg",
            SelectorKind::Oort => "oort",
            SelectorKind::Refl => "refl",
            SelectorKind::FedBuff => "fedbuff",
            SelectorKind::Tifl => "tifl",
        }
    }

    /// Whether this selector drives asynchronous aggregation.
    pub fn is_async(self) -> bool {
        matches!(self, SelectorKind::FedBuff)
    }
}

/// Per-client feedback handed to a selector after each round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionFeedback {
    /// Which client this describes.
    pub client: usize,
    /// Whether it completed the round.
    pub completed: bool,
    /// Wall time of its attempt, seconds.
    pub duration_s: f64,
    /// Statistical utility of its update (e.g. loss magnitude); higher
    /// means more informative. Zero for dropped clients.
    pub utility: f64,
    /// Whether the client was reachable when the round started.
    pub was_available: bool,
    /// Whether the client's update reached the server but was quarantined
    /// by payload validation (non-finite deltas). Implies `!completed`.
    /// Distinct from a no-show: the client was fast enough, its payload
    /// was poison — selectors may penalize that more harshly than
    /// slowness.
    #[serde(default)]
    pub quarantined: bool,
}

/// A client-selection strategy.
///
/// Selectors are deliberately ignorant of FLOAT: the runtime wraps any
/// `ClientSelector` and adds acceleration on top, demonstrating the
/// paper's non-intrusive integration claim.
pub trait ClientSelector {
    /// Which baseline this is.
    fn kind(&self) -> SelectorKind;

    /// Choose the clients to task in `round` from the `eligible` pool —
    /// the clients currently checked in as available, mirroring the
    /// FedScale/production model where unavailable devices are never
    /// candidates. `target` is the configured per-round cohort size
    /// (synchronous) or the top-up size (asynchronous). Must write
    /// distinct ids drawn from `eligible` into `cohort`, which is cleared
    /// first — the caller owns the buffer so population-scale loops can
    /// reuse one allocation across thousands of rounds.
    fn select_into(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        cohort: &mut Vec<usize>,
    );

    /// Like [`ClientSelector::select_into`], but with access to online
    /// profiled estimates (FLOAT's observability-as-control-input path,
    /// `ExperimentConfig::profiling`). Selectors that score clients on
    /// oracle-fed internal state (Oort's measured durations, REFL's
    /// reliability, TiFL's latency tiers) override this to read the
    /// [`ProfileView`] instead; a client with no estimate (`None`) goes
    /// through the selector's own cold-start path — Oort's untried
    /// exploration pool, REFL's 0.5 availability prior, TiFL's
    /// unprofiled tier. The default ignores the view, so purely random
    /// baselines (FedAvg, FedBuff) are unchanged by profiling.
    fn select_profiled(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        profiles: &ProfileView<'_>,
        cohort: &mut Vec<usize>,
    ) {
        let _ = profiles;
        self.select_into(round, eligible, target, cohort);
    }

    /// Allocating convenience wrapper around
    /// [`ClientSelector::select_into`].
    fn select(&mut self, round: usize, eligible: &[usize], target: usize) -> Vec<usize> {
        let mut cohort = Vec::new();
        self.select_into(round, eligible, target, &mut cohort);
        cohort
    }

    /// Observe the outcomes of the round's attempts.
    fn feedback(&mut self, round: usize, results: &[SelectionFeedback]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_unique_names() {
        let kinds = [
            SelectorKind::FedAvg,
            SelectorKind::Oort,
            SelectorKind::Refl,
            SelectorKind::FedBuff,
            SelectorKind::Tifl,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn top_k_matches_stable_sort_prefix() {
        // Pseudo-random but deterministic scores with many duplicates.
        let scores: Vec<(f64, usize)> = (0..97usize)
            .map(|i| (((i * 37 + 11) % 10) as f64, i))
            .collect();
        let cmp =
            |a: &(f64, usize), b: &(f64, usize)| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1));
        let mut reference = scores.clone();
        reference.sort_by(cmp);
        for k in [0usize, 1, 5, 30, 96, 97, 200] {
            let mut v = scores.clone();
            top_k_by(&mut v, k, cmp);
            assert_eq!(v, reference[..k.min(scores.len())], "k = {k}");
        }
    }

    #[test]
    fn top_k_zero_clears() {
        let mut v = vec![3, 1, 2];
        top_k_by(&mut v, 0, |a: &i32, b: &i32| a.cmp(b));
        assert!(v.is_empty());
    }

    #[test]
    fn only_fedbuff_is_async() {
        assert!(SelectorKind::FedBuff.is_async());
        assert!(!SelectorKind::FedAvg.is_async());
        assert!(!SelectorKind::Oort.is_async());
        assert!(!SelectorKind::Refl.is_async());
        assert!(!SelectorKind::Tifl.is_async());
    }
}
