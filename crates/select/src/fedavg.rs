//! FedAvg's uniform random client selection.

use rand::seq::SliceRandom;

use float_tensor::rng::{seed_rng, split_seed};

use crate::selector::{ClientSelector, SelectionFeedback, SelectorKind};

/// Uniform random selection without replacement — the FedAvg baseline.
///
/// The paper observes (Fig. 2a) that random selection is actually the
/// *least* biased strategy, which is why FLOAT(FedAvg) ends up among the
/// strongest combinations once FLOAT removes the dropout penalty random
/// selection otherwise pays.
#[derive(Debug, Clone)]
pub struct FedAvgSelector {
    seed: u64,
}

impl FedAvgSelector {
    /// Create a selector with a deterministic selection stream.
    pub fn new(seed: u64) -> Self {
        FedAvgSelector { seed }
    }
}

impl ClientSelector for FedAvgSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::FedAvg
    }

    fn select_into(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        cohort: &mut Vec<usize>,
    ) {
        cohort.clear();
        cohort.extend_from_slice(eligible);
        cohort.shuffle(&mut seed_rng(split_seed(self.seed, round as u64)));
        cohort.truncate(target.min(cohort.len()));
    }

    fn feedback(&mut self, _round: usize, _results: &[SelectionFeedback]) {
        // Random selection is memoryless.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: an eligible pool of the first `n` client ids.
    fn pool(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn selects_distinct_ids_in_range() {
        let mut s = FedAvgSelector::new(1);
        let picks = s.select(0, &pool(100), 20);
        assert_eq!(picks.len(), 20);
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 20);
        assert!(picks.iter().all(|&c| c < 100));
    }

    #[test]
    fn deterministic_per_round() {
        let mut a = FedAvgSelector::new(7);
        let mut b = FedAvgSelector::new(7);
        assert_eq!(a.select(3, &pool(50), 10), b.select(3, &pool(50), 10));
        assert_ne!(a.select(3, &pool(50), 10), a.select(4, &pool(50), 10));
    }

    #[test]
    fn target_larger_than_pool_is_clamped() {
        let mut s = FedAvgSelector::new(1);
        assert_eq!(s.select(0, &pool(5), 20).len(), 5);
    }

    #[test]
    fn selection_is_unbiased_over_rounds() {
        // Every client should be picked roughly equally often — the
        // Fig. 2a property.
        let mut s = FedAvgSelector::new(3);
        let mut counts = vec![0usize; 50];
        for r in 0..1000 {
            for c in s.select(r, &pool(50), 10) {
                counts[c] += 1;
            }
        }
        let expected = 1000.0 * 10.0 / 50.0;
        for (c, &n) in counts.iter().enumerate() {
            assert!(
                (n as f64 - expected).abs() < expected * 0.3,
                "client {c} selected {n} times (expected ~{expected})"
            );
        }
    }
}
