//! `float-select` — client-selection algorithms and the heuristic
//! acceleration baseline.
//!
//! The paper compares FLOAT against four client-selection strategies and a
//! rule-based acceleration heuristic:
//!
//! - [`FedAvgSelector`] — uniform random selection (McMahan et al.).
//! - [`OortSelector`] — guided participant selection combining statistical
//!   utility with a system-speed penalty (Lai et al., OSDI '21).
//! - [`ReflSelector`] — availability-window prediction preferring clients
//!   whose predicted window fits the round (Abdelmoniem et al.,
//!   EuroSys '23); its fixed-window assumption is exactly what the paper
//!   criticizes.
//! - [`FedBuffSelector`] — asynchronous buffered aggregation with
//!   concurrent over-selection (Nguyen et al.).
//! - [`HeuristicPolicy`] — the paper's §4.4 rule-based acceleration
//!   chooser, the non-learning straw-man FLOAT beats by ~20 % accuracy.
//! - [`TiflSelector`] — tier-based selection (Chai et al., HPDC '20), an
//!   extension baseline from the paper's related work.
//!
//! All selectors implement the [`ClientSelector`] trait so the FLOAT
//! runtime in `float-core` can wrap any of them non-intrusively — the
//! paper's headline integration property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fedavg;
pub mod fedbuff;
pub mod heuristic;
pub mod oort;
pub mod refl;
pub mod selector;
pub mod tifl;

pub use fedavg::FedAvgSelector;
pub use fedbuff::FedBuffSelector;
pub use heuristic::HeuristicPolicy;
pub use oort::OortSelector;
pub use refl::ReflSelector;
pub use selector::{top_k_by, ClientSelector, SelectionFeedback, SelectorKind};
pub use tifl::TiflSelector;
