//! REFL-style availability-window prediction (Abdelmoniem et al.,
//! EuroSys '23), re-implemented from the published algorithm description.
//!
//! REFL predicts each client's future availability from its history and
//! prefers clients that are (a) predicted available for the whole round
//! and (b) fast enough to finish inside the predicted window. The FLOAT
//! paper's critique, which our motivation experiments reproduce, is that
//! the *fixed linear window* assumption collapses under dynamic resource
//! interference: predictions go stale, dropouts rise, and selection skews
//! hard toward historically fast clients (Fig. 2a shows REFL excluding
//! ~50 % of clients).

use std::collections::HashMap;

use rand::seq::SliceRandom;

use float_profile::{ClientEstimate, ProfileView};
use float_tensor::rng::{seed_rng, split_seed};

use crate::selector::{top_k_by, ClientSelector, SelectionFeedback, SelectorKind};

/// How many past rounds of availability history to keep per client.
const HISTORY: usize = 64;

/// Per-client availability history and speed estimate.
#[derive(Debug, Clone, Default)]
struct ClientHistory {
    /// Ring buffer of observed availability (most recent last).
    available: Vec<bool>,
    /// Last observed round duration, seconds.
    last_duration_s: f64,
    selected: u64,
    completed: u64,
}

impl ClientHistory {
    /// Predicted probability of being available next round: the empirical
    /// availability frequency over the history window — REFL's linear
    /// window model.
    fn predicted_availability(&self) -> f64 {
        if self.available.is_empty() {
            return 0.5; // uninformative prior
        }
        self.available.iter().filter(|&&a| a).count() as f64 / self.available.len() as f64
    }
}

/// Availability-window-predicting selector.
#[derive(Debug, Clone)]
pub struct ReflSelector {
    seed: u64,
    /// Per-client history, keyed sparsely by client id so state stays
    /// O(touched clients) under candidate pooling at population scale. An
    /// absent entry scores exactly like `ClientHistory::default()` (the
    /// 0.5 uninformative prior), matching the dense resize-with-default
    /// this replaces.
    histories: HashMap<usize, ClientHistory>,
    /// One past the highest client id any `select_into` eligible slice has
    /// covered. The dense implementation silently dropped feedback for
    /// clients beyond its vector (`f.client >= histories.len()`); this
    /// watermark reproduces that guard exactly.
    ensured: usize,
    /// Round deadline the predicted window must cover.
    deadline_s: f64,
    /// Scratch: shuffled candidate ids, reused across rounds.
    ids: Vec<usize>,
    /// Scratch: (score, position-in-`ids`) pairs, reused across rounds.
    scored: Vec<(f64, usize)>,
}

impl ReflSelector {
    /// Create a selector that plans against `deadline_s`-second rounds.
    pub fn new(seed: u64, deadline_s: f64) -> Self {
        ReflSelector {
            seed,
            histories: HashMap::new(),
            ensured: 0,
            deadline_s,
            ids: Vec::new(),
            scored: Vec::new(),
        }
    }

    fn ensure(&mut self, num_clients: usize) {
        self.ensured = self.ensured.max(num_clients);
    }

    /// REFL's selection score from internal records only.
    #[cfg(test)]
    fn score(&self, c: usize) -> f64 {
        self.score_with(c, None)
    }

    /// REFL's selection score: predicted availability, discounted when the
    /// client's observed speed would overflow the window. When a profiled
    /// estimate is supplied, the *measured* quantities — duration and the
    /// completion track record — come from it; the availability ring stays
    /// internal (it is REFL's own windowed prediction model, fed by
    /// check-in observations, not a trace oracle).
    fn score_with(&self, c: usize, est: Option<&ClientEstimate>) -> f64 {
        let Some(h) = self.histories.get(&c) else {
            // Never observed: the uninformative prior, with no speed
            // discount and no track record — exactly what a default
            // history scores.
            return 0.5;
        };
        let mut s = h.predicted_availability();
        let duration_s = est.and_then(|e| e.latency_s).unwrap_or(h.last_duration_s);
        if duration_s > self.deadline_s && duration_s > 0.0 {
            // Predicted to overflow its window: heavily discounted. This is
            // the "prefers faster clients" bias.
            s *= self.deadline_s / duration_s;
        }
        // Completion track record sharpens the prediction.
        match est {
            Some(e) => s *= e.reliability,
            None => {
                if h.selected > 0 {
                    s *= (h.completed as f64 + 1.0) / (h.selected as f64 + 1.0);
                }
            }
        }
        s
    }

    fn select_impl(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        profiles: Option<&ProfileView<'_>>,
        cohort: &mut Vec<usize>,
    ) {
        cohort.clear();
        let max_id = eligible.iter().copied().max().map_or(0, |m| m + 1);
        self.ensure(max_id);
        let target = target.min(eligible.len());
        let mut ids = std::mem::take(&mut self.ids);
        ids.clear();
        ids.extend_from_slice(eligible);
        // Shuffle first so ties break randomly rather than by id.
        ids.shuffle(&mut seed_rng(split_seed(self.seed, round as u64)));
        // Scores are computed once per client (the sort comparator used to
        // call `score()` twice per comparison), and the descending full
        // sort is a top-k select. The comparator is a strict total order —
        // `total_cmp` on the score, position in the shuffle as tiebreak —
        // so equal scores keep their shuffled order exactly as the stable
        // sort this replaces did.
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        scored.extend(ids.iter().enumerate().map(|(pos, &c)| {
            let est = profiles.and_then(|v| v.estimate(c));
            (self.score_with(c, est.as_ref()), pos)
        }));
        top_k_by(&mut scored, target, |a, b| {
            b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1))
        });
        for &(_, pos) in scored.iter() {
            let c = ids[pos];
            cohort.push(c);
            self.histories.entry(c).or_default().selected += 1;
        }
        self.scored = scored;
        self.ids = ids;
    }
}

impl ClientSelector for ReflSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::Refl
    }

    fn select_into(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        cohort: &mut Vec<usize>,
    ) {
        self.select_impl(round, eligible, target, None, cohort);
    }

    fn select_profiled(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        profiles: &ProfileView<'_>,
        cohort: &mut Vec<usize>,
    ) {
        self.select_impl(round, eligible, target, Some(profiles), cohort);
    }

    fn feedback(&mut self, _round: usize, results: &[SelectionFeedback]) {
        for f in results {
            if f.client >= self.ensured {
                continue;
            }
            let h = self.histories.entry(f.client).or_default();
            h.available.push(f.was_available);
            if h.available.len() > HISTORY {
                h.available.remove(0);
            }
            if f.completed {
                h.completed += 1;
                h.last_duration_s = f.duration_s;
            } else if !f.quarantined && f.duration_s > 0.0 {
                // A quarantined attempt's duration is not a speed
                // measurement (the payload was rejected); only genuine
                // dropouts teach REFL the client overflows its window.
                h.last_duration_s = f.duration_s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: an eligible pool of the first `n` client ids.
    fn pool(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn fb(client: usize, completed: bool, duration: f64, available: bool) -> SelectionFeedback {
        SelectionFeedback {
            client,
            completed,
            duration_s: duration,
            utility: 1.0,
            was_available: available,
            quarantined: false,
        }
    }

    #[test]
    fn prefers_predictably_available_clients() {
        let mut s = ReflSelector::new(1, 100.0);
        // Client 0: always available and fast. Client 1: never available.
        for round in 0..30 {
            s.feedback(round, &[fb(0, true, 50.0, true), fb(1, false, 0.0, false)]);
            let _ = s.select(round, &pool(5), 2);
        }
        assert!(s.score(0) > s.score(1) * 2.0);
    }

    #[test]
    fn slow_clients_are_discounted() {
        let mut s = ReflSelector::new(2, 100.0);
        for round in 0..20 {
            s.feedback(round, &[fb(0, true, 50.0, true), fb(1, true, 500.0, true)]);
            let _ = s.select(round, &pool(5), 2);
        }
        assert!(
            s.score(0) > s.score(1),
            "fast {} vs slow {}",
            s.score(0),
            s.score(1)
        );
    }

    #[test]
    fn selection_excludes_low_scorers_creating_bias() {
        // The Fig. 2a phenomenon: with stable histories REFL repeatedly
        // excludes the same clients.
        let mut s = ReflSelector::new(3, 100.0);
        let mut counts = [0usize; 10];
        for round in 0..200 {
            let picks = s.select(round, &pool(10), 3);
            for &c in &picks {
                counts[c] += 1;
            }
            let results: Vec<SelectionFeedback> = (0..10)
                .map(|c| {
                    // Clients 0..3 are reliable; 7..10 are flaky and slow.
                    if c < 3 {
                        fb(c, true, 40.0, true)
                    } else if c >= 7 {
                        fb(c, false, 300.0, round % 3 == 0)
                    } else {
                        fb(c, true, 90.0, round % 2 == 0)
                    }
                })
                .collect();
            s.feedback(round, &results);
        }
        let reliable: usize = counts[..3].iter().sum();
        let flaky: usize = counts[7..].iter().sum();
        assert!(
            reliable > flaky * 3,
            "reliable {reliable} vs flaky {flaky}: bias not reproduced"
        );
    }

    #[test]
    fn unknown_clients_get_prior() {
        // Both a never-touched client (no map entry) and an explicitly
        // defaulted history must score the uninformative prior.
        let mut s = ReflSelector::new(0, 100.0);
        assert!((s.score(7) - 0.5).abs() < 1e-9, "absent entry");
        s.histories.insert(0, ClientHistory::default());
        assert!((s.score(0) - 0.5).abs() < 1e-9, "default entry");
    }

    #[test]
    fn feedback_beyond_watermark_is_dropped() {
        // The dense implementation ignored feedback for clients its vector
        // had never grown to cover; the sparse watermark must match.
        let mut s = ReflSelector::new(0, 100.0);
        let _ = s.select(0, &pool(4), 2);
        s.feedback(0, &[fb(2, true, 10.0, true), fb(9, true, 10.0, true)]);
        assert!(s.histories.contains_key(&2), "in-range feedback recorded");
        assert!(!s.histories.contains_key(&9), "beyond watermark dropped");
    }

    #[test]
    fn quarantine_never_updates_measured_duration() {
        // Regression: a quarantined attempt's duration used to land in
        // `last_duration_s` through the dropout arm, discounting the
        // client as slow when its payload was merely rejected.
        let mut s = ReflSelector::new(5, 100.0);
        let _ = s.select(0, &pool(2), 2);
        s.feedback(0, &[fb(0, true, 50.0, true)]);
        let mut q = fb(0, false, 900.0, true);
        q.quarantined = true;
        s.feedback(1, &[q]);
        assert_eq!(
            s.histories[&0].last_duration_s, 50.0,
            "quarantined duration leaked into the latency record"
        );
        // A genuine dropout still updates it.
        s.feedback(2, &[fb(0, false, 900.0, true)]);
        assert_eq!(s.histories[&0].last_duration_s, 900.0);
    }

    #[test]
    fn profiled_estimates_drive_the_measured_terms() {
        use float_profile::{ClientProfiler, Observation, ObservedOutcome, ProfilingConfig};
        let mut s = ReflSelector::new(6, 100.0);
        let _ = s.select(0, &pool(2), 2);
        // Identical internal histories...
        s.feedback(0, &[fb(0, true, 50.0, true), fb(1, true, 50.0, true)]);
        assert_eq!(s.score(0), s.score(1));
        // ...but observations say client 1 overflows the window 5x.
        let mut p = ClientProfiler::new(ProfilingConfig::on(), 8);
        p.observe(0, &Observation::replay(0, ObservedOutcome::Completed, 50.0));
        p.observe(
            1,
            &Observation::replay(0, ObservedOutcome::Completed, 500.0),
        );
        let view = p.view();
        let (e0, e1) = (view.estimate(0), view.estimate(1));
        assert!(s.score_with(0, e0.as_ref()) > s.score_with(1, e1.as_ref()));
        let mut cohort = Vec::new();
        s.select_profiled(1, &pool(2), 1, &view, &mut cohort);
        assert_eq!(cohort, vec![0]);
    }

    #[test]
    fn distinct_ids_in_range() {
        let mut s = ReflSelector::new(4, 100.0);
        let picks = s.select(0, &pool(12), 6);
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 6);
        assert!(picks.iter().all(|&c| c < 12));
    }
}
