//! Oort-style guided participant selection (Lai et al., OSDI '21),
//! re-implemented from the published algorithm description.
//!
//! Each client's selection priority combines *statistical utility* (how
//! informative its updates have been, proxied by training-loss magnitude)
//! with a *system utility* penalty for clients slower than the developer's
//! preferred round duration. An exploration fraction admits never-tried
//! clients. The paper's critique — and what our motivation experiments
//! reproduce — is that this preference for efficient clients biases
//! selection when resource conditions fluctuate.

use std::collections::{HashMap, HashSet};

use rand::seq::SliceRandom;
use rand::Rng;

use float_profile::{ClientEstimate, ProfileView};
use float_tensor::rng::{seed_rng, split_seed};

use crate::selector::{top_k_by, ClientSelector, SelectionFeedback, SelectorKind};

/// Per-client rolling statistics maintained by Oort.
#[derive(Debug, Clone, Copy, Default)]
struct ClientRecord {
    /// Exponential moving average of statistical utility.
    stat_utility: f64,
    /// Last observed round duration in seconds.
    last_duration_s: f64,
    /// How many times the client has been selected.
    selected: u64,
    /// How many times it completed.
    completed: u64,
    /// Last round the client was selected (for staleness bonus).
    last_selected_round: usize,
}

/// How many rounds the pacer aggregates before deciding whether to relax
/// the preferred duration.
const PACER_WINDOW: usize = 10;

/// Guided participant selection.
#[derive(Debug, Clone)]
pub struct OortSelector {
    seed: u64,
    /// Per-client statistics, keyed sparsely by client id: only clients
    /// that have actually been selected or fed back carry an entry, so
    /// state is O(touched clients), not O(population). An absent entry is
    /// exactly a `ClientRecord::default()` — which is what the dense
    /// resize-with-default this replaces produced for untouched ids.
    records: HashMap<usize, ClientRecord>,
    /// Preferred round duration `T`; slower clients are penalized by
    /// `(T / t)^alpha`.
    preferred_duration_s: f64,
    /// The initial `T`, used as the pacer's step size.
    pacer_step_s: f64,
    /// Penalty exponent.
    alpha: f64,
    /// Fraction of each cohort reserved for exploring untried clients.
    exploration_fraction: f64,
    /// Aggregate utility observed per round (pacer input).
    round_utilities: Vec<f64>,
    /// Scratch: (priority, position-in-eligible) pairs, reused across
    /// rounds so selection allocates nothing at steady state.
    scored: Vec<(f64, usize)>,
    /// Scratch: shuffled exploration candidates.
    rest: Vec<usize>,
    /// Scratch: (times-selected, position-in-`rest`) exploration keys.
    explore_keys: Vec<(u64, usize)>,
    /// Scratch membership set over client ids; empty between calls
    /// (cleared by walking the cohort, not the population).
    mask: HashSet<usize>,
}

impl OortSelector {
    /// Create a selector with Oort's default knobs.
    pub fn new(seed: u64, preferred_duration_s: f64) -> Self {
        OortSelector {
            seed,
            records: HashMap::new(),
            preferred_duration_s,
            pacer_step_s: preferred_duration_s * 0.25,
            alpha: 2.0,
            exploration_fraction: 0.2,
            round_utilities: Vec::new(),
            scored: Vec::new(),
            rest: Vec::new(),
            explore_keys: Vec::new(),
            mask: HashSet::new(),
        }
    }

    /// Current preferred round duration (moves as the pacer relaxes it).
    pub fn preferred_duration_s(&self) -> f64 {
        self.preferred_duration_s
    }

    /// Oort's pacer: when the aggregate statistical utility of the last
    /// window is no better than the window before it, the developer's
    /// speed preference is costing information — relax `T` by one step so
    /// slower-but-informative clients regain priority.
    fn run_pacer(&mut self) {
        let n = self.round_utilities.len();
        if n < 2 * PACER_WINDOW || !n.is_multiple_of(PACER_WINDOW) {
            return;
        }
        let recent: f64 = self.round_utilities[n - PACER_WINDOW..].iter().sum();
        let previous: f64 = self.round_utilities[n - 2 * PACER_WINDOW..n - PACER_WINDOW]
            .iter()
            .sum();
        if recent <= previous {
            self.preferred_duration_s += self.pacer_step_s;
        }
    }

    /// Priority score of client `c` at `round` from internal records only.
    #[cfg(test)]
    fn priority(&self, c: usize, round: usize) -> f64 {
        self.priority_with(c, round, None)
    }

    /// Priority score of client `c` at `round`. When a profiled estimate
    /// is supplied, the *system* terms — measured duration and completion
    /// reliability — come from it instead of the selector's own feedback
    /// records; statistical utility, exploration, and staleness remain
    /// internal (they are defined by selection history, not resources).
    fn priority_with(&self, c: usize, round: usize, est: Option<&ClientEstimate>) -> f64 {
        let r = self.records.get(&c).copied().unwrap_or_default();
        if r.selected == 0 {
            return 0.0; // untried clients go through the exploration pool
        }
        let mut util = r.stat_utility;
        // System utility: penalize clients slower than the target.
        let duration_s = est.and_then(|e| e.latency_s).unwrap_or(r.last_duration_s);
        if duration_s > self.preferred_duration_s && duration_s > 0.0 {
            util *= (self.preferred_duration_s / duration_s).powf(self.alpha);
        }
        // Reliability: clients that keep dropping lose priority.
        let reliability = est.map_or_else(
            || (r.completed as f64 + 1.0) / (r.selected as f64 + 2.0),
            |e| e.reliability,
        );
        util *= reliability;
        // Staleness bonus keeps long-unselected clients from starving
        // entirely (Oort's temporal uncertainty term).
        let staleness = ((round - r.last_selected_round) as f64).sqrt() * 0.01;
        util + staleness
    }

    /// Deduplicate a tentative pick list in place (order-preserving,
    /// across *all* elements — `Vec::dedup` only removes adjacent
    /// repeats) and then bump the per-client counters, so a double-picked
    /// id is counted once. Counting before deduplication used to inflate
    /// `selected`, silently depressing the reliability term of
    /// [`Self::priority`]. Uses the reusable membership set rather than
    /// allocating an O(population) seen-vector per round.
    fn commit_selection_into(&mut self, picked: &mut Vec<usize>, round: usize) {
        let mask = &mut self.mask;
        picked.retain(|&c| mask.insert(c));
        for &c in picked.iter() {
            self.mask.remove(&c);
            let r = self.records.entry(c).or_default();
            r.selected += 1;
            r.last_selected_round = round;
        }
    }
}

impl ClientSelector for OortSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::Oort
    }

    fn select_into(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        cohort: &mut Vec<usize>,
    ) {
        self.select_impl(round, eligible, target, None, cohort);
    }

    fn select_profiled(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        profiles: &ProfileView<'_>,
        cohort: &mut Vec<usize>,
    ) {
        self.select_impl(round, eligible, target, Some(profiles), cohort);
    }

    fn feedback(&mut self, _round: usize, results: &[SelectionFeedback]) {
        let mut round_utility = 0.0;
        for f in results {
            let r = self.records.entry(f.client).or_default();
            if f.completed {
                r.completed += 1;
                r.stat_utility = 0.7 * r.stat_utility + 0.3 * f.utility;
                r.last_duration_s = f.duration_s;
                round_utility += f.utility;
            } else if f.quarantined {
                // A quarantined payload is worse than slowness: the client
                // consumed a slot and shipped poison. Decay its utility
                // harder than an ordinary dropout — but say nothing about
                // its speed: the payload was rejected, so its duration is
                // not a measurement of this client's pace and must not
                // feed the system-utility penalty.
                r.stat_utility *= 0.5;
            } else {
                // A dropout tells Oort the client is slow/unreliable.
                r.last_duration_s = r.last_duration_s.max(f.duration_s);
                r.stat_utility *= 0.8;
            }
        }
        self.round_utilities.push(round_utility);
        self.run_pacer();
    }
}

impl OortSelector {
    fn select_impl(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        profiles: Option<&ProfileView<'_>>,
        cohort: &mut Vec<usize>,
    ) {
        cohort.clear();
        let target = target.min(eligible.len());
        let mut rng = seed_rng(split_seed(self.seed, round as u64));
        let explore_n = ((target as f64) * self.exploration_fraction).round() as usize;
        let exploit_n = target - explore_n;

        // Exploitation: top-k eligible clients by priority. Priorities are
        // computed once per call into a reusable scratch vector (the
        // comparator used to call `priority()` twice per comparison), and
        // the descending full sort is a top-k select. The comparator is a
        // strict total order — `total_cmp` on the priority, position in
        // `eligible` as tiebreak — so duplicated priorities resolve to the
        // earliest eligible position, exactly what the stable sort this
        // replaces produced, and a NaN priority (unreachable from
        // `priority()`) would order deterministically instead of
        // scrambling the comparison.
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        scored.extend(eligible.iter().enumerate().map(|(pos, &c)| {
            let est = profiles.and_then(|v| v.estimate(c));
            (self.priority_with(c, round, est.as_ref()), pos)
        }));
        top_k_by(&mut scored, exploit_n, |a, b| {
            b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1))
        });
        for &(_, pos) in scored.iter() {
            let c = eligible[pos];
            self.mask.insert(c);
            cohort.push(c);
        }
        self.scored = scored;

        // Exploration: random among the rest, preferring untried clients —
        // take untried first but keep some randomness among equals. The
        // (times-selected, position-in-shuffle) key is again a strict
        // total order reproducing the stable `sort_by_key` it replaces.
        let mut rest = std::mem::take(&mut self.rest);
        rest.clear();
        rest.extend(eligible.iter().copied().filter(|c| !self.mask.contains(c)));
        rest.shuffle(&mut rng);
        let mut keys = std::mem::take(&mut self.explore_keys);
        keys.clear();
        keys.extend(
            rest.iter()
                .enumerate()
                .map(|(pos, &c)| (self.records.get(&c).map_or(0, |r| r.selected), pos)),
        );
        top_k_by(&mut keys, explore_n, |a, b| {
            a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1))
        });
        for &(_, pos) in keys.iter() {
            cohort.push(rest[pos]);
        }
        for c in cohort.iter() {
            self.mask.remove(c);
        }
        self.explore_keys = keys;
        self.rest = rest;

        self.commit_selection_into(cohort, round);
        let _ = rng.gen::<u64>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: an eligible pool of the first `n` client ids.
    fn pool(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn feedback(client: usize, completed: bool, duration: f64, utility: f64) -> SelectionFeedback {
        SelectionFeedback {
            client,
            completed,
            duration_s: duration,
            utility,
            was_available: true,
            quarantined: false,
        }
    }

    #[test]
    fn prefers_high_utility_fast_clients() {
        let mut s = OortSelector::new(1, 60.0);
        // Round 0: everyone untried — exploration only.
        let picks0 = s.select(0, &pool(3), 3);
        assert_eq!(picks0.len(), 3);
        // Teach it: client 0 fast + informative; client 1 slow; client 2
        // drops out. Select the whole pool each round so the staleness
        // bonus stays identical across clients.
        for round in 1..20 {
            s.feedback(
                round,
                &[
                    feedback(0, true, 30.0, 1.0),
                    feedback(1, true, 600.0, 1.0),
                    feedback(2, false, 600.0, 0.0),
                ],
            );
            let _ = s.select(round, &pool(3), 3);
        }
        assert!(s.priority(0, 20) > s.priority(1, 20));
        assert!(s.priority(1, 20) > s.priority(2, 20));
    }

    #[test]
    fn selection_is_biased_toward_efficient_clients() {
        // The Fig. 2a phenomenon: with stable utilities, Oort concentrates
        // selection on fast clients far above the uniform rate.
        let mut s = OortSelector::new(2, 60.0);
        let mut counts = [0usize; 20];
        for round in 0..300 {
            let picks = s.select(round, &pool(20), 5);
            for &c in &picks {
                counts[c] += 1;
            }
            let fb: Vec<SelectionFeedback> = picks
                .iter()
                .map(|&c| {
                    // Clients 0..5 are fast, the rest are 10x slower.
                    let fast = c < 5;
                    feedback(c, true, if fast { 20.0 } else { 200.0 }, 1.0)
                })
                .collect();
            s.feedback(round, &fb);
        }
        let fast_total: usize = counts[..5].iter().sum();
        let slow_total: usize = counts[5..].iter().sum();
        // Fast clients are 25% of the pool but should take well over half
        // the selections.
        assert!(
            fast_total as f64 > slow_total as f64,
            "fast {fast_total} vs slow {slow_total}"
        );
    }

    #[test]
    fn exploration_reaches_untried_clients() {
        let mut s = OortSelector::new(3, 60.0);
        let mut seen = [false; 30];
        for round in 0..60 {
            for c in s.select(round, &pool(30), 6) {
                seen[c] = true;
            }
        }
        let coverage = seen.iter().filter(|&&x| x).count();
        assert!(coverage > 25, "only {coverage}/30 clients ever selected");
    }

    #[test]
    fn pacer_relaxes_preference_when_utility_stalls() {
        let mut s = OortSelector::new(7, 100.0);
        let t0 = s.preferred_duration_s();
        // Feed a stagnant utility stream long enough for two pacer windows.
        for round in 0..20 {
            s.feedback(round, &[feedback(0, true, 50.0, 1.0)]);
        }
        assert!(
            s.preferred_duration_s() > t0,
            "pacer never relaxed: {} vs {}",
            s.preferred_duration_s(),
            t0
        );
    }

    #[test]
    fn pacer_holds_when_utility_grows() {
        let mut s = OortSelector::new(7, 100.0);
        let t0 = s.preferred_duration_s();
        // Strictly growing utility: the preference is paying off.
        for round in 0..20 {
            s.feedback(round, &[feedback(0, true, 50.0, (round + 1) as f64)]);
        }
        assert_eq!(
            s.preferred_duration_s(),
            t0,
            "pacer relaxed despite improving utility"
        );
    }

    #[test]
    fn double_selected_id_is_counted_once() {
        // Regression: counters used to be bumped before the defensive
        // dedup (which, being Vec::dedup, also missed non-adjacent
        // repeats), so a double-picked id double-counted `selected`.
        let mut s = OortSelector::new(5, 60.0);
        let mut picked = vec![3, 1, 3, 2, 1];
        s.commit_selection_into(&mut picked, 7);
        assert_eq!(picked, vec![3, 1, 2], "order-preserving dedup");
        assert_eq!(
            s.records[&3].selected, 1,
            "non-adjacent duplicate counted once"
        );
        assert_eq!(s.records[&1].selected, 1);
        assert_eq!(s.records[&2].selected, 1);
        assert_eq!(s.records[&3].last_selected_round, 7);
    }

    #[test]
    fn quarantined_clients_lose_utility_faster_than_dropouts() {
        let mut slow = OortSelector::new(6, 60.0);
        let mut poison = OortSelector::new(6, 60.0);
        // Build up identical utility first.
        for s in [&mut slow, &mut poison] {
            s.feedback(0, &[feedback(0, true, 30.0, 1.0)]);
        }
        slow.feedback(1, &[feedback(0, false, 600.0, 0.0)]);
        let mut q = feedback(0, false, 30.0, 0.0);
        q.quarantined = true;
        poison.feedback(1, &[q]);
        assert!(
            poison.records[&0].stat_utility < slow.records[&0].stat_utility,
            "quarantine decay {} !< dropout decay {}",
            poison.records[&0].stat_utility,
            slow.records[&0].stat_utility
        );
    }

    #[test]
    fn tied_priorities_break_by_eligible_position() {
        // Regression for the tie-handling fix: duplicated priorities used
        // to fall through `partial_cmp(..).unwrap_or(Equal)` inside a
        // stable sort; the top-k path must keep that exact order — the
        // earlier position in `eligible` wins the tie.
        let mut s = OortSelector::new(9, 60.0);
        let eligible = pool(10);
        // Round 0 selects the whole pool so everyone has selected == 1,
        // then identical feedback to four clients gives them identical
        // (duplicated) positive priorities; the rest tie at the pure
        // staleness bonus.
        let _ = s.select(0, &eligible, 10);
        let fb_dup: Vec<SelectionFeedback> = [2usize, 5, 7, 8]
            .iter()
            .map(|&c| feedback(c, true, 30.0, 1.0))
            .collect();
        s.feedback(0, &fb_dup);
        let round = 1;
        assert_eq!(s.priority(2, round), s.priority(5, round), "ties exist");
        assert_eq!(s.priority(0, round), s.priority(9, round), "ties exist");

        // Reference: the original stable-sort implementation, evaluated on
        // the same pre-selection state.
        let target = 6usize;
        let explore_n = ((target as f64) * s.exploration_fraction).round() as usize;
        let exploit_n = target - explore_n;
        let mut scored: Vec<(f64, usize)> = eligible
            .iter()
            .map(|&c| (s.priority(c, round), c))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut expected: Vec<usize> = scored.into_iter().take(exploit_n).map(|(_, c)| c).collect();
        let mut rest: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|c| !expected.contains(c))
            .collect();
        rest.shuffle(&mut seed_rng(split_seed(9, round as u64)));
        rest.sort_by_key(|&c| s.records.get(&c).map_or(0, |r| r.selected));
        expected.extend(rest.into_iter().take(explore_n));

        let picked = s.select(round, &eligible, target);
        assert_eq!(picked, expected);
    }

    #[test]
    fn quarantine_never_updates_measured_duration() {
        // Regression: the quarantined branch used to max-update
        // `last_duration_s`, so a poisoned payload taught Oort the client
        // was *slow* — but a rejected payload says nothing about pace.
        let mut s = OortSelector::new(6, 60.0);
        s.feedback(0, &[feedback(0, true, 30.0, 1.0)]);
        let mut q = feedback(0, false, 900.0, 0.0);
        q.quarantined = true;
        s.feedback(1, &[q]);
        assert_eq!(
            s.records[&0].last_duration_s, 30.0,
            "quarantined duration leaked into the latency record"
        );
        // An ordinary dropout still widens the duration estimate.
        s.feedback(2, &[feedback(0, false, 900.0, 0.0)]);
        assert_eq!(s.records[&0].last_duration_s, 900.0);
    }

    #[test]
    fn profiled_estimates_drive_the_system_terms() {
        use float_profile::{ClientProfiler, Observation, ObservedOutcome, ProfilingConfig};
        let mut s = OortSelector::new(8, 60.0);
        // Internal records say both clients are identical...
        let _ = s.select(0, &pool(2), 2);
        s.feedback(
            0,
            &[feedback(0, true, 30.0, 1.0), feedback(1, true, 30.0, 1.0)],
        );
        assert_eq!(s.priority(0, 1), s.priority(1, 1));
        // ...but the profiler observed client 1 running 20x slower.
        let mut p = ClientProfiler::new(ProfilingConfig::on(), 8);
        p.observe(0, &Observation::replay(0, ObservedOutcome::Completed, 30.0));
        p.observe(
            1,
            &Observation::replay(0, ObservedOutcome::Completed, 600.0),
        );
        let view = p.view();
        let (est0, est1) = (view.estimate(0), view.estimate(1));
        assert!(s.priority_with(0, 1, est0.as_ref()) > s.priority_with(1, 1, est1.as_ref()));
        // select_profiled ranks accordingly: the single exploit slot goes
        // to the observed-fast client.
        let mut cohort = Vec::new();
        s.select_profiled(1, &pool(2), 1, &view, &mut cohort);
        assert_eq!(cohort, vec![0]);
    }

    #[test]
    fn distinct_ids() {
        let mut s = OortSelector::new(4, 60.0);
        for round in 0..10 {
            let picks = s.select(round, &pool(15), 8);
            let mut uniq = picks.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), picks.len());
        }
    }
}
