//! The paper's §4.4 rule-based acceleration heuristic — the non-learning
//! baseline FLOAT is compared against in Fig. 6.
//!
//! Rules (verbatim from the paper, translated to the Table-1 levels):
//!
//! 1. If the client's CPU *and* network availability are both below
//!    "Moderate", apply an extreme optimization: 75 % pruning, 75 %
//!    partial training, or 8-bit quantization — picked at random.
//! 2. Otherwise apply a mild optimization: 16-bit quantization, 25 %
//!    partial training, or 25 % pruning — picked at random.
//!
//! The *configuration* is chosen intelligently by the rules; the
//! *technique* is random — exactly the structure the paper describes, and
//! exactly the weakness (no awareness of which resource is the bottleneck)
//! that lets FLOAT beat it by ~20 % accuracy.

use rand::seq::SliceRandom;

use float_accel::AccelAction;
use float_tensor::rng::{seed_rng, split_seed};

/// Rule-based acceleration chooser.
#[derive(Debug, Clone)]
pub struct HeuristicPolicy {
    seed: u64,
    decisions: u64,
}

/// Extreme optimizations for constrained clients (rule 1).
const EXTREME: [AccelAction; 3] = [
    AccelAction::Prune75,
    AccelAction::Partial75,
    AccelAction::Quantize8,
];

/// Mild optimizations for resource-rich clients (rule 2).
const MILD: [AccelAction; 3] = [
    AccelAction::Quantize16,
    AccelAction::Partial25,
    AccelAction::Prune25,
];

impl HeuristicPolicy {
    /// Create a policy with a deterministic random stream.
    pub fn new(seed: u64) -> Self {
        HeuristicPolicy { seed, decisions: 0 }
    }

    /// Choose an action for a client with the given CPU and network
    /// availability fractions (`[0, 1]`).
    ///
    /// "Below Moderate" in Table 1 terms means ≤ 20 % availability.
    pub fn choose(&mut self, cpu_fraction: f64, net_fraction: f64) -> AccelAction {
        self.decisions += 1;
        let mut rng = seed_rng(split_seed(self.seed, self.decisions));
        let constrained = cpu_fraction <= 0.20 && net_fraction <= 0.20;
        let pool: &[AccelAction] = if constrained { &EXTREME } else { &MILD };
        *pool
            .choose(&mut rng)
            .expect("pools are non-empty constants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constrained_clients_get_extreme_actions() {
        let mut p = HeuristicPolicy::new(1);
        for _ in 0..50 {
            let a = p.choose(0.1, 0.05);
            assert!(EXTREME.contains(&a), "{} not an extreme action", a.name());
        }
    }

    #[test]
    fn rich_clients_get_mild_actions() {
        let mut p = HeuristicPolicy::new(2);
        for _ in 0..50 {
            let a = p.choose(0.8, 0.9);
            assert!(MILD.contains(&a), "{} not a mild action", a.name());
        }
    }

    #[test]
    fn mixed_resources_count_as_rich() {
        // Rule 1 requires BOTH cpu and network below moderate.
        let mut p = HeuristicPolicy::new(3);
        let a = p.choose(0.1, 0.9);
        assert!(MILD.contains(&a));
        let b = p.choose(0.9, 0.1);
        assert!(MILD.contains(&b));
    }

    #[test]
    fn technique_choice_is_random_within_pool() {
        let mut p = HeuristicPolicy::new(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(p.choose(0.05, 0.05));
        }
        assert_eq!(seen.len(), 3, "all three extreme techniques should occur");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = HeuristicPolicy::new(9);
        let mut b = HeuristicPolicy::new(9);
        for _ in 0..20 {
            assert_eq!(a.choose(0.1, 0.1), b.choose(0.1, 0.1));
        }
    }
}
