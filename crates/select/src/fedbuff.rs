//! FedBuff-style asynchronous buffered selection (Nguyen et al., 2021),
//! re-implemented from the published algorithm description.
//!
//! FedBuff keeps up to `concurrency` clients training at all times and
//! aggregates whenever `buffer_size` updates have arrived. In our
//! round-quantized simulator the selector is called every round to *top
//! up* the in-flight set; completions and failures free slots. The FLOAT
//! paper's observations: FedBuff is fast in wall-clock and resilient to
//! dropouts (over-selection is a buffer against losses) but 4.5–7× more
//! resource-hungry, and it still skews toward faster clients because slow
//! clients occupy slots across many aggregations while contributing few
//! updates.

use rand::seq::SliceRandom;

use float_tensor::rng::{seed_rng, split_seed};

use crate::selector::{ClientSelector, SelectionFeedback, SelectorKind};

/// Asynchronous over-selecting selector.
#[derive(Debug, Clone)]
pub struct FedBuffSelector {
    seed: u64,
    /// Maximum clients training concurrently (paper setup: 100).
    concurrency: usize,
    /// Updates buffered per aggregation (paper setup: 30).
    buffer_size: usize,
    /// Clients currently holding a slot.
    in_flight: Vec<usize>,
    /// Scratch: id-indexed membership mask for `in_flight`, sized lazily
    /// to the largest id ever launched and wiped O(slots) after each
    /// call. The async engine tops up once per completion event, so this
    /// filter runs once per *eligible* client per top-up — on the
    /// full-sweep path that is hundreds of thousands of probes per call,
    /// and the O(1) indexed load beats any sorted/hashed lookup. Memory
    /// is one byte per client id actually seen in flight (≤10 MiB even
    /// at the 10M preset, and only ~pool-sized ids under pooling).
    taken: Vec<bool>,
}

impl FedBuffSelector {
    /// Create a FedBuff selector with the paper's concurrency/buffer
    /// configuration.
    pub fn new(seed: u64, concurrency: usize, buffer_size: usize) -> Self {
        FedBuffSelector {
            seed,
            concurrency,
            buffer_size,
            in_flight: Vec::new(),
            taken: Vec::new(),
        }
    }

    /// The aggregation buffer size `K`.
    pub fn buffer_size(&self) -> usize {
        self.buffer_size
    }

    /// Clients currently in flight.
    pub fn in_flight(&self) -> &[usize] {
        &self.in_flight
    }
}

impl ClientSelector for FedBuffSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::FedBuff
    }

    /// Top up the in-flight set to `concurrency` from the eligible pool
    /// (ignoring `target`, which synchronous baselines use) and write the
    /// *newly launched* clients into `cohort`.
    fn select_into(
        &mut self,
        round: usize,
        eligible: &[usize],
        _target: usize,
        cohort: &mut Vec<usize>,
    ) {
        cohort.clear();
        let want = self.concurrency;
        if self.in_flight.len() >= want {
            return;
        }
        let mut taken = std::mem::take(&mut self.taken);
        if let Some(&max) = self.in_flight.iter().max() {
            if taken.len() <= max {
                taken.resize(max + 1, false);
            }
        }
        for &c in &self.in_flight {
            taken[c] = true;
        }
        cohort.extend(
            eligible
                .iter()
                .copied()
                .filter(|&c| !taken.get(c).copied().unwrap_or(false)),
        );
        for &c in &self.in_flight {
            taken[c] = false;
        }
        self.taken = taken;
        cohort.shuffle(&mut seed_rng(split_seed(self.seed, round as u64)));
        cohort.truncate(want - self.in_flight.len());
        self.in_flight.extend_from_slice(cohort);
    }

    /// Completions and failures free their slots.
    fn feedback(&mut self, _round: usize, results: &[SelectionFeedback]) {
        for f in results {
            if let Some(pos) = self.in_flight.iter().position(|&c| c == f.client) {
                self.in_flight.swap_remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: an eligible pool of the first `n` client ids.
    fn pool(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn done(client: usize) -> SelectionFeedback {
        SelectionFeedback {
            client,
            completed: true,
            duration_s: 50.0,
            utility: 1.0,
            was_available: true,
            quarantined: false,
        }
    }

    #[test]
    fn first_round_launches_full_concurrency() {
        let mut s = FedBuffSelector::new(1, 100, 30);
        let launched = s.select(0, &pool(200), 30);
        assert_eq!(launched.len(), 100);
        assert_eq!(s.in_flight().len(), 100);
    }

    #[test]
    fn slots_free_on_feedback() {
        let mut s = FedBuffSelector::new(1, 10, 3);
        let launched = s.select(0, &pool(50), 0);
        assert_eq!(launched.len(), 10);
        s.feedback(0, &[done(launched[0]), done(launched[1])]);
        assert_eq!(s.in_flight().len(), 8);
        let topped = s.select(1, &pool(50), 0);
        assert_eq!(topped.len(), 2);
        assert_eq!(s.in_flight().len(), 10);
    }

    #[test]
    fn no_duplicate_in_flight() {
        let mut s = FedBuffSelector::new(2, 20, 5);
        let _ = s.select(0, &pool(30), 0);
        let again = s.select(1, &pool(30), 0);
        assert!(again.is_empty());
        let mut all = s.in_flight().to_vec();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn concurrency_clamped_to_pool() {
        let mut s = FedBuffSelector::new(3, 100, 30);
        let launched = s.select(0, &pool(40), 0);
        assert_eq!(launched.len(), 40);
    }

    #[test]
    fn over_selection_ratio_matches_paper_setup() {
        // 100 concurrent with a 30-update buffer ≈ the paper's "up to 5x
        // over-selection" relative to synchronous cohorts of 20-30.
        let s = FedBuffSelector::new(4, 100, 30);
        assert!(s.concurrency as f64 / s.buffer_size() as f64 > 3.0);
    }
}
