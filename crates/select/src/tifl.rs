//! TiFL-style tier-based client selection (Chai et al., HPDC '20),
//! re-implemented from the published algorithm description as an
//! extension baseline beyond the paper's four.
//!
//! TiFL profiles clients into latency tiers and selects each round's
//! cohort from a *single* tier, so the round's wall time is bounded by
//! that tier's speed instead of the global straggler. An adaptive
//! scheduler spends more rounds on tiers whose data the model has not yet
//! absorbed (here: tiers with the higher recent statistical utility),
//! subject to per-tier credits that stop any tier from being ignored.

use std::collections::HashMap;

use float_profile::ProfileView;
use float_tensor::rng::{seed_rng, split_seed};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::selector::{top_k_by, ClientSelector, SelectionFeedback, SelectorKind};

/// Number of latency tiers TiFL maintains.
const NUM_TIERS: usize = 5;

/// Re-profile clients into tiers every this many rounds.
const RETIER_EVERY: usize = 10;

/// Per-client profiling state.
#[derive(Debug, Clone, Copy)]
struct ClientProfile {
    /// EMA of observed round latency, seconds. `None` until first observed.
    latency_s: Option<f64>,
    /// EMA of statistical utility.
    utility: f64,
    /// Assigned tier (0 = fastest).
    tier: usize,
}

impl Default for ClientProfile {
    fn default() -> Self {
        ClientProfile {
            latency_s: None,
            utility: 1.0, // optimistic prior so new tiers get scheduled
            tier: 0,
        }
    }
}

/// Tier-based selector.
#[derive(Debug, Clone)]
pub struct TiflSelector {
    seed: u64,
    /// Per-client profiles, keyed sparsely by client id so state stays
    /// O(touched clients) at population scale. Only clients that have
    /// received feedback carry an entry; everyone else's tier follows the
    /// watermark rule in [`Self::effective_tier`].
    profiles: HashMap<usize, ClientProfile>,
    /// One past the highest client id ever covered by an eligible slice or
    /// feedback batch — the length the dense profile vector would have.
    ensured: usize,
    /// Value of `ensured` at the last *applied* re-tiering. The dense
    /// implementation sent every profiled-but-latency-free client to the
    /// middle tier at retier time, while clients first seen afterwards sat
    /// in tier 0 until the next retier; this watermark reproduces that
    /// split without materializing entries.
    retiered: usize,
    /// Remaining selection credits per tier; refilled when exhausted.
    credits: Vec<u64>,
    rounds_seen: usize,
    /// Scratch: eligible members of the chosen tier, reused across rounds.
    pool: Vec<usize>,
    /// Scratch: (tier-distance, position-in-eligible) top-up keys.
    rest: Vec<(usize, usize)>,
}

impl TiflSelector {
    /// Create a TiFL selector.
    pub fn new(seed: u64) -> Self {
        TiflSelector {
            seed,
            profiles: HashMap::new(),
            ensured: 0,
            retiered: 0,
            credits: vec![INITIAL_CREDITS; NUM_TIERS],
            rounds_seen: 0,
            pool: Vec::new(),
            rest: Vec::new(),
        }
    }

    fn ensure(&mut self, n: usize) {
        self.ensured = self.ensured.max(n);
    }

    /// Tier of a client with no stored profile: the middle tier if the
    /// client was already covered when the tiers were last recomputed
    /// (re-tiering sends every latency-free client there), tier 0 — the
    /// default profile — otherwise.
    fn unprofiled_tier(&self, c: usize) -> usize {
        if c < self.retiered {
            NUM_TIERS / 2
        } else {
            0
        }
    }

    /// Tier assignment of `c`, whether or not it has a stored profile.
    fn effective_tier(&self, c: usize) -> usize {
        self.profiles
            .get(&c)
            .map_or_else(|| self.unprofiled_tier(c), |p| p.tier)
    }

    /// Recompute tier boundaries by latency quantiles over profiled
    /// clients; unprofiled clients go to the middle tier. When a
    /// [`ProfileView`] is supplied, a client's latency comes from its
    /// online estimate (observed completions) in preference to the
    /// selector's own feedback EMA — TiFL's tiers then reflect measured
    /// behaviour rather than whatever the feedback channel reported.
    fn retier(&mut self, profiles: Option<&ProfileView<'_>>) {
        let lat = |c: usize, p: &ClientProfile| -> Option<f64> {
            profiles
                .and_then(|v| v.estimate(c).and_then(|e| e.latency_s))
                .or(p.latency_s)
        };
        // Quarantine-style degradation: a non-finite latency sample (a
        // poisoned EMA, a simulated sensor glitch) is excluded from the
        // quantile computation instead of panicking the whole run, and
        // `total_cmp` gives the sort a total order — identical to the old
        // comparator on all-finite data. HashMap iteration order feeds a
        // sort, so the cuts are order-independent and deterministic.
        let mut latencies: Vec<f64> = self
            .profiles
            .iter()
            .filter_map(|(&c, p)| lat(c, p))
            .filter(|l| l.is_finite())
            .collect();
        if latencies.len() < NUM_TIERS {
            return;
        }
        latencies.sort_by(f64::total_cmp);
        let boundary = |q: f64| -> f64 {
            let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
            latencies[idx.min(latencies.len() - 1)]
        };
        let cuts: Vec<f64> = (1..NUM_TIERS)
            .map(|i| boundary(i as f64 / NUM_TIERS as f64))
            .collect();
        for (&c, p) in self.profiles.iter_mut() {
            p.tier = match lat(c, p) {
                Some(l) if l.is_finite() => cuts
                    .iter()
                    .position(|&cut| l <= cut)
                    .unwrap_or(NUM_TIERS - 1),
                // No usable latency (never observed, or quarantined as
                // non-finite): the middle tier, like any unprofiled client.
                _ => NUM_TIERS / 2,
            };
        }
        self.retiered = self.ensured;
    }

    /// Pick the tier for this round: among tiers with credits and eligible
    /// clients, weight by recent mean utility (data the model still needs)
    /// with a floor so no tier starves.
    fn choose_tier<R: Rng>(&self, eligible: &[usize], rng: &mut R) -> usize {
        let mut weight = [0.0f64; NUM_TIERS];
        let mut count = [0usize; NUM_TIERS];
        for &c in eligible {
            let (tier, utility) = self
                .profiles
                .get(&c)
                .map_or_else(|| (self.unprofiled_tier(c), 1.0), |p| (p.tier, p.utility));
            weight[tier] += utility;
            count[tier] += 1;
        }
        let mut total = 0.0;
        for t in 0..NUM_TIERS {
            if count[t] == 0 || self.credits[t] == 0 {
                weight[t] = 0.0;
            } else {
                weight[t] = (weight[t] / count[t] as f64).max(0.05);
                total += weight[t];
            }
        }
        if total <= 0.0 {
            // All credits spent or no eligible tiers: fastest non-empty.
            return count.iter().position(|&c| c > 0).unwrap_or(0);
        }
        let mut draw = rng.gen::<f64>() * total;
        for (t, &w) in weight.iter().enumerate() {
            draw -= w;
            if w > 0.0 && draw <= 0.0 {
                return t;
            }
        }
        NUM_TIERS - 1
    }

    /// Tier assignment of a client (for tests). `None` for clients beyond
    /// anything the selector has ever been shown.
    pub fn tier_of(&self, client: usize) -> Option<usize> {
        (client < self.ensured).then(|| self.effective_tier(client))
    }
}

/// Credits issued to each tier per refill.
const INITIAL_CREDITS: u64 = 20;

impl ClientSelector for TiflSelector {
    fn kind(&self) -> SelectorKind {
        SelectorKind::Tifl
    }

    fn select_into(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        cohort: &mut Vec<usize>,
    ) {
        self.select_impl(round, eligible, target, None, cohort);
    }

    fn select_profiled(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        profiles: &ProfileView<'_>,
        cohort: &mut Vec<usize>,
    ) {
        self.select_impl(round, eligible, target, Some(profiles), cohort);
    }

    fn feedback(&mut self, _round: usize, results: &[SelectionFeedback]) {
        if let Some(max_id) = results.iter().map(|f| f.client).max() {
            self.ensure(max_id + 1);
        }
        for f in results {
            // Materialize with the tier the client *currently* holds (per
            // the watermark rule), not the raw default — tiers only move
            // at retier time.
            let tier = self.unprofiled_tier(f.client);
            let p = self.profiles.entry(f.client).or_insert(ClientProfile {
                tier,
                ..ClientProfile::default()
            });
            // Quarantine non-finite samples at the source: folding a NaN
            // or infinite duration into the EMA would poison the latency
            // profile for every future re-tiering. A quarantined payload
            // says nothing about the client's pace either — it updates
            // utility only, never the latency EMA.
            if !f.quarantined && f.duration_s > 0.0 && f.duration_s.is_finite() {
                p.latency_s = Some(match p.latency_s {
                    Some(l) => 0.7 * l + 0.3 * f.duration_s,
                    None => f.duration_s,
                });
            }
            if f.completed {
                p.utility = 0.7 * p.utility + 0.3 * f.utility;
            } else {
                p.utility *= 0.9;
            }
        }
    }
}

impl TiflSelector {
    fn select_impl(
        &mut self,
        round: usize,
        eligible: &[usize],
        target: usize,
        profiles: Option<&ProfileView<'_>>,
        cohort: &mut Vec<usize>,
    ) {
        cohort.clear();
        let max_id = eligible.iter().copied().max().map_or(0, |m| m + 1);
        self.ensure(max_id);
        self.rounds_seen += 1;
        if self.rounds_seen.is_multiple_of(RETIER_EVERY) {
            self.retier(profiles);
        }
        if self.credits.iter().all(|&c| c == 0) {
            self.credits = vec![INITIAL_CREDITS; NUM_TIERS];
        }
        let mut rng = seed_rng(split_seed(self.seed, round as u64));
        let tier = self.choose_tier(eligible, &mut rng);
        self.credits[tier] = self.credits[tier].saturating_sub(1);
        let need = target.min(eligible.len());
        let mut pool = std::mem::take(&mut self.pool);
        pool.clear();
        pool.extend(
            eligible
                .iter()
                .copied()
                .filter(|&c| self.effective_tier(c) == tier),
        );
        pool.shuffle(&mut rng);
        cohort.extend_from_slice(&pool[..need.min(pool.len())]);
        self.pool = pool;
        // Top up from neighbouring tiers if the chosen tier is too small
        // (TiFL merges adjacent tiers when underpopulated). The full
        // distance sort is a top-k select keyed on (tier distance,
        // position in `eligible`) — a strict total order matching exactly
        // where the stable `sort_by_key` left tied elements.
        if cohort.len() < need {
            let want = need - cohort.len();
            let mut rest = std::mem::take(&mut self.rest);
            rest.clear();
            rest.extend(
                eligible
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| self.effective_tier(c) != tier)
                    .map(|(pos, &c)| {
                        let dist = (self.effective_tier(c) as isize - tier as isize).unsigned_abs();
                        (dist, pos)
                    }),
            );
            top_k_by(&mut rest, want, |a, b| {
                a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1))
            });
            for &(_, pos) in rest.iter() {
                cohort.push(eligible[pos]);
            }
            self.rest = rest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: an eligible pool of the first `n` client ids.
    fn pool(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn fb(client: usize, duration: f64, utility: f64) -> SelectionFeedback {
        SelectionFeedback {
            client,
            completed: true,
            duration_s: duration,
            utility,
            was_available: true,
            quarantined: false,
        }
    }

    /// Drive enough feedback + rounds for a re-tiering to happen.
    fn profile_clients(s: &mut TiflSelector, n: usize) {
        for round in 0..RETIER_EVERY + 1 {
            let results: Vec<SelectionFeedback> = (0..n)
                // Latency grows with id: low ids are the fast tier.
                .map(|c| fb(c, 10.0 + c as f64 * 10.0, 1.0))
                .collect();
            s.feedback(round, &results);
            let _ = s.select(round, &pool(n), 4);
        }
    }

    #[test]
    fn tiers_order_by_latency() {
        let mut s = TiflSelector::new(1);
        profile_clients(&mut s, 50);
        let fast = s.tier_of(0).expect("profiled");
        let slow = s.tier_of(49).expect("profiled");
        assert!(fast < slow, "fast tier {fast} !< slow tier {slow}");
        // Tiers are monotone in latency.
        for c in 1..50 {
            assert!(
                s.tier_of(c - 1).expect("profiled") <= s.tier_of(c).expect("profiled"),
                "tier order violated at {c}"
            );
        }
    }

    #[test]
    fn cohort_comes_from_one_tier_once_profiled() {
        let mut s = TiflSelector::new(2);
        profile_clients(&mut s, 50);
        for round in 20..40 {
            let picks = s.select(round, &pool(50), 5);
            assert_eq!(picks.len(), 5);
            let tiers: std::collections::HashSet<usize> = picks
                .iter()
                .map(|&c| s.tier_of(c).expect("profiled"))
                .collect();
            assert_eq!(tiers.len(), 1, "round {round} mixed tiers {tiers:?}");
        }
    }

    #[test]
    fn all_tiers_eventually_get_rounds() {
        let mut s = TiflSelector::new(3);
        profile_clients(&mut s, 50);
        let mut seen = std::collections::HashSet::new();
        for round in 20..200 {
            let picks = s.select(round, &pool(50), 5);
            if let Some(&c) = picks.first() {
                seen.insert(s.tier_of(c).expect("profiled"));
            }
        }
        assert!(seen.len() >= 4, "only tiers {seen:?} were ever scheduled");
    }

    #[test]
    fn small_tier_tops_up_from_neighbours() {
        let mut s = TiflSelector::new(4);
        profile_clients(&mut s, 10);
        // Ask for more clients than any single 2-client tier holds.
        let picks = s.select(50, &pool(10), 6);
        assert_eq!(picks.len(), 6);
    }

    #[test]
    fn unprofiled_clients_still_selectable() {
        let mut s = TiflSelector::new(5);
        let picks = s.select(0, &pool(20), 8);
        assert_eq!(picks.len(), 8);
    }

    #[test]
    fn non_finite_durations_are_quarantined_not_fatal() {
        let mut s = TiflSelector::new(6);
        // Clients report a mix of honest, NaN, and infinite durations;
        // none of the poisoned samples may enter the latency EMAs.
        for round in 0..RETIER_EVERY + 1 {
            let results: Vec<SelectionFeedback> = (0..50)
                .map(|c| {
                    let d = match c % 3 {
                        0 => 10.0 + c as f64,
                        1 => f64::NAN,
                        _ => f64::INFINITY,
                    };
                    fb(c, d, 1.0)
                })
                .collect();
            s.feedback(round, &results);
            let _ = s.select(round, &pool(50), 4);
        }
        for c in 0..50 {
            if let Some(p) = s.profiles.get(&c) {
                if let Some(l) = p.latency_s {
                    assert!(l.is_finite(), "client {c} EMA poisoned to {l}");
                }
            }
        }
        // Selection still produces full cohorts after the poisoned rounds.
        assert_eq!(s.select(99, &pool(50), 8).len(), 8);
    }

    #[test]
    fn quarantine_never_updates_the_latency_ema() {
        // Regression: quarantined feedback used to fold its duration into
        // the latency EMA, re-tiering the client as slow because its
        // payload was rejected.
        let mut s = TiflSelector::new(8);
        s.feedback(0, &[fb(0, 20.0, 1.0)]);
        let mut q = fb(0, 800.0, 0.0);
        q.completed = false;
        q.quarantined = true;
        s.feedback(1, &[q]);
        assert_eq!(
            s.profiles[&0].latency_s,
            Some(20.0),
            "quarantined duration leaked into the latency EMA"
        );
        // A genuine dropout still moves it.
        let mut d = fb(0, 800.0, 0.0);
        d.completed = false;
        s.feedback(2, &[d]);
        assert_eq!(s.profiles[&0].latency_s, Some(0.7 * 20.0 + 0.3 * 800.0));
    }

    #[test]
    fn profiled_latencies_drive_retiering() {
        use float_profile::{ClientProfiler, Observation, ObservedOutcome, ProfilingConfig};
        // Internal EMAs say latency grows with id, but the profiler has
        // observed the opposite ordering; with the view supplied, tiers
        // must follow the observations.
        let mut s = TiflSelector::new(9);
        let mut p = ClientProfiler::new(ProfilingConfig::on(), 64);
        for round in 0..RETIER_EVERY {
            let results: Vec<SelectionFeedback> = (0..20)
                .map(|c| fb(c, 10.0 + c as f64 * 10.0, 1.0))
                .collect();
            s.feedback(round, &results);
            for c in 0..20usize {
                let observed = 10.0 + (19 - c) as f64 * 10.0;
                p.observe(
                    c,
                    &Observation::replay(round as u64, ObservedOutcome::Completed, observed),
                );
            }
            let mut cohort = Vec::new();
            s.select_profiled(round, &pool(20), 4, &p.view(), &mut cohort);
        }
        let fast = s.tier_of(19).expect("profiled");
        let slow = s.tier_of(0).expect("profiled");
        assert!(
            fast < slow,
            "observed-fast client tier {fast} !< observed-slow tier {slow}"
        );
    }

    #[test]
    fn poisoned_latency_profile_degrades_to_middle_tier() {
        // Simulate an EMA that was already poisoned (e.g. by state written
        // before the quarantine guard existed): re-tiering must exclude it
        // from the quantiles and park the client in the middle tier
        // instead of panicking on the sort comparator.
        let mut s = TiflSelector::new(7);
        profile_clients(&mut s, 50);
        s.profiles.get_mut(&3).expect("profiled").latency_s = Some(f64::NAN);
        s.profiles.get_mut(&4).expect("profiled").latency_s = Some(f64::INFINITY);
        for round in 20..20 + RETIER_EVERY {
            let _ = s.select(round, &pool(50), 4);
        }
        assert_eq!(s.tier_of(3), Some(NUM_TIERS / 2));
        assert_eq!(s.tier_of(4), Some(NUM_TIERS / 2));
        // Finite clients keep a monotone latency→tier mapping.
        let fast = s.tier_of(0).expect("profiled");
        let slow = s.tier_of(49).expect("profiled");
        assert!(fast < slow, "fast tier {fast} !< slow tier {slow}");
    }
}
