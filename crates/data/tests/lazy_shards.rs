//! Property tests pinning the lazy-shard determinism contract: for any
//! population, seed, cache capacity, and access order, shards served by
//! [`ShardSpec`]/[`ShardCache`] are bit-identical to eager
//! [`FederatedDataset::generate`] output.

use proptest::prelude::*;

use float_data::federated::FederatedConfig;
use float_data::{FederatedDataset, ShardCache, ShardSpec, Task};

fn config(num_clients: usize, alpha: Option<f64>) -> FederatedConfig {
    FederatedConfig {
        task: Task::Cifar10,
        num_clients,
        mean_samples: 30,
        alpha,
        test_fraction: 0.25,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary (client, access-order) sequences through an arbitrary-
    /// capacity cache return exactly the shards eager generation builds.
    #[test]
    fn lazy_matches_eager_for_arbitrary_access_orders(
        seed in any::<u64>(),
        num_clients in 2usize..16,
        capacity in 1usize..9,
        alpha_pick in 0usize..3,
        accesses in prop::collection::vec(0usize..1024, 1..48),
    ) {
        let alpha = [None, Some(0.1), Some(1.0)][alpha_pick];
        let cfg = config(num_clients, alpha);
        let eager = FederatedDataset::generate(cfg, seed);
        let mut cache = ShardCache::new(ShardSpec::new(cfg, seed), capacity);
        for a in accesses {
            let c = a % num_clients;
            let (train, test) = cache.get(c);
            prop_assert_eq!(train.labels(), eager.train_shard(c).labels());
            prop_assert_eq!(
                train.features().data(),
                eager.train_shard(c).features().data()
            );
            prop_assert_eq!(test.labels(), eager.test_shard(c).labels());
            prop_assert_eq!(
                test.features().data(),
                eager.test_shard(c).features().data()
            );
            let stats = cache.stats();
            prop_assert!(stats.resident <= capacity);
            prop_assert!(stats.peak_resident <= capacity);
        }
    }

    /// The cache's hit/miss/eviction accounting is internally consistent
    /// for any access sequence.
    #[test]
    fn cache_accounting_is_consistent(
        seed in any::<u64>(),
        capacity in 1usize..6,
        accesses in prop::collection::vec(0usize..10, 1..64),
    ) {
        let cfg = config(10, Some(0.1));
        let mut cache = ShardCache::new(ShardSpec::new(cfg, seed), capacity);
        let total = accesses.len() as u64;
        for &c in &accesses {
            let _ = cache.get(c);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, total);
        prop_assert_eq!(s.misses, s.evictions + s.resident as u64);
        prop_assert!(s.resident <= s.peak_resident);
    }
}
