//! Dirichlet and IID client partitioning of label distributions.
//!
//! Follows the label-skew scheme of Hsu et al. (2019), the same scheme
//! FedScale and the FLOAT paper use: each client draws a class-proportion
//! vector `p ~ Dir(α·1)` and its local samples follow `p`. Small `α`
//! (0.01–0.1 in the paper) produces extreme label skew.

use rand::Rng;
use serde::{Deserialize, Serialize};

use float_tensor::rng::{seed_rng, split_seed};

/// How to split sample counts across clients and classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Number of clients.
    pub num_clients: usize,
    /// Mean samples per client.
    pub mean_samples: usize,
    /// Dirichlet concentration α; `None` means IID.
    pub alpha: Option<f64>,
}

/// Sample one Dirichlet(α·1_k) proportion vector using the Gamma–Dirichlet
/// construction with Marsaglia–Tsang gamma sampling (with the standard
/// boost for shape < 1).
fn dirichlet_proportions<R: Rng>(alpha: f64, k: usize, rng: &mut R) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= f64::MIN_POSITIVE {
        // All-zero draws (possible for tiny α): degenerate to a one-hot on a
        // random class, which is the correct α→0 limit.
        let hot = rng.gen_range(0..k);
        draws = vec![0.0; k];
        draws[hot] = 1.0;
        return draws;
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Marsaglia–Tsang sampler for Gamma(shape, 1).
fn gamma_sample<R: Rng>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Produce per-client per-class sample counts under Dirichlet(α) label
/// skew with the default ±50 % quantity skew.
///
/// Returns a `num_clients × num_classes` matrix of counts. Every client
/// receives at least one sample (a dropless client dataset would be
/// meaningless to the simulator).
pub fn dirichlet_partition(
    num_clients: usize,
    num_classes: usize,
    mean_samples: usize,
    alpha: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    dirichlet_partition_with_quantity_skew(num_clients, num_classes, mean_samples, alpha, 0.5, seed)
}

/// [`dirichlet_partition`] with explicit control over *quantity* skew:
/// each client's dataset size is drawn uniformly from
/// `mean_samples · [1 − skew, 1 + skew]`. `skew = 0` gives equal-sized
/// shards (isolating label skew), `skew → 1` gives extreme size
/// heterogeneity.
///
/// # Panics
///
/// Panics if `alpha <= 0` or `quantity_skew` is not in `[0, 1)`.
pub fn dirichlet_partition_with_quantity_skew(
    num_clients: usize,
    num_classes: usize,
    mean_samples: usize,
    alpha: f64,
    quantity_skew: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(alpha > 0.0, "Dirichlet alpha must be positive");
    assert!(
        (0.0..1.0).contains(&quantity_skew),
        "quantity skew must be in [0, 1)"
    );
    (0..num_clients)
        .map(|c| dirichlet_client_counts(c, num_classes, mean_samples, alpha, quantity_skew, seed))
        .collect()
}

/// Per-class sample counts for a *single* client under Dirichlet(α) label
/// skew — row `client` of [`dirichlet_partition_with_quantity_skew`],
/// bit-identical to the full matrix by construction.
///
/// Each client draws from its own RNG stream (`split_seed(seed, client)`),
/// so one client's counts never depend on another's — this is what makes
/// lazy shard derivation possible at population scale.
///
/// # Panics
///
/// Panics if `alpha <= 0` or `quantity_skew` is not in `[0, 1)`.
pub fn dirichlet_client_counts(
    client: usize,
    num_classes: usize,
    mean_samples: usize,
    alpha: f64,
    quantity_skew: f64,
    seed: u64,
) -> Vec<usize> {
    assert!(alpha > 0.0, "Dirichlet alpha must be positive");
    assert!(
        (0.0..1.0).contains(&quantity_skew),
        "quantity skew must be in [0, 1)"
    );
    let mut rng = seed_rng(split_seed(seed, client as u64));
    let props = dirichlet_proportions(alpha, num_classes, &mut rng);
    let factor = if quantity_skew == 0.0 {
        // Consume the draw regardless so shard contents are identical
        // across skew settings.
        let _ = rng.gen_range(0.0f64..1.0);
        1.0
    } else {
        rng.gen_range(1.0 - quantity_skew..1.0 + quantity_skew)
    };
    let size = ((mean_samples as f64) * factor).round().max(1.0) as usize;
    let mut counts: Vec<usize> = props
        .iter()
        .map(|&p| (p * size as f64).round() as usize)
        .collect();
    if counts.iter().sum::<usize>() == 0 {
        let hot = props
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        counts[hot] = 1;
    }
    counts
}

/// Produce per-client per-class counts under an IID split: every client
/// gets (approximately) uniform class proportions.
pub fn iid_partition(
    num_clients: usize,
    num_classes: usize,
    mean_samples: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    (0..num_clients)
        .map(|c| iid_client_counts(c, num_classes, mean_samples, seed))
        .collect()
}

/// Per-class sample counts for a *single* client under the IID split —
/// row `client` of [`iid_partition`], bit-identical to the full matrix by
/// construction (per-client RNG streams, like
/// [`dirichlet_client_counts`]).
pub fn iid_client_counts(
    client: usize,
    num_classes: usize,
    mean_samples: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = seed_rng(split_seed(seed, client as u64));
    let size = ((mean_samples as f64) * rng.gen_range(0.8f64..1.2))
        .round()
        .max(1.0) as usize;
    let base = size / num_classes;
    let mut counts = vec![base; num_classes];
    for _ in 0..(size - base * num_classes) {
        let i = rng.gen_range(0..num_classes);
        counts[i] += 1;
    }
    counts
}

/// Effective label-distribution skew of a partition: mean total-variation
/// distance between each client's label distribution and the global one.
/// Useful for tests and for reporting how non-IID a configuration is.
pub fn partition_skew(counts: &[Vec<usize>]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let num_classes = counts[0].len();
    let mut global = vec![0.0f64; num_classes];
    for client in counts {
        for (g, &c) in global.iter_mut().zip(client) {
            *g += c as f64;
        }
    }
    let gtotal: f64 = global.iter().sum();
    if gtotal == 0.0 {
        return 0.0;
    }
    for g in &mut global {
        *g /= gtotal;
    }
    let mut acc = 0.0;
    let mut n = 0;
    for client in counts {
        let total: f64 = client.iter().map(|&c| c as f64).sum();
        if total == 0.0 {
            continue;
        }
        let tv: f64 = client
            .iter()
            .zip(&global)
            .map(|(&c, &g)| (c as f64 / total - g).abs())
            .sum::<f64>()
            / 2.0;
        acc += tv;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirichlet_every_client_nonempty() {
        let parts = dirichlet_partition(50, 10, 100, 0.05, 1);
        assert_eq!(parts.len(), 50);
        for p in &parts {
            assert!(p.iter().sum::<usize>() >= 1);
        }
    }

    #[test]
    fn low_alpha_is_more_skewed_than_high_alpha() {
        let low = dirichlet_partition(100, 10, 200, 0.05, 7);
        let high = dirichlet_partition(100, 10, 200, 100.0, 7);
        assert!(
            partition_skew(&low) > partition_skew(&high) + 0.2,
            "low {} high {}",
            partition_skew(&low),
            partition_skew(&high)
        );
    }

    #[test]
    fn iid_partition_is_near_uniform() {
        let parts = iid_partition(20, 10, 500, 3);
        assert!(partition_skew(&parts) < 0.05);
    }

    #[test]
    fn partitions_are_deterministic() {
        assert_eq!(
            dirichlet_partition(10, 5, 50, 0.1, 42),
            dirichlet_partition(10, 5, 50, 0.1, 42)
        );
        assert_ne!(
            dirichlet_partition(10, 5, 50, 0.1, 42),
            dirichlet_partition(10, 5, 50, 0.1, 43)
        );
    }

    #[test]
    fn gamma_sampler_mean() {
        let mut rng = float_tensor::seed_rng(11);
        let n = 20_000;
        for &shape in &[0.3f64, 1.0, 4.0] {
            let mean: f64 = (0..n).map(|_| gamma_sample(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(0.5),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_proportions_sum_to_one() {
        let mut rng = float_tensor::seed_rng(9);
        for &a in &[0.01f64, 0.1, 1.0, 10.0] {
            let p = dirichlet_proportions(a, 8, &mut rng);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "alpha {a}: sum {s}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_panics() {
        let _ = dirichlet_partition(2, 2, 10, 0.0, 0);
    }

    #[test]
    fn zero_quantity_skew_equalizes_sizes() {
        let parts = dirichlet_partition_with_quantity_skew(30, 5, 100, 1.0, 0.0, 5);
        for p in &parts {
            let total: usize = p.iter().sum();
            // Rounding of per-class proportions can move the total by a
            // couple of samples, never by the ±50% of the default skew.
            assert!(
                (total as i64 - 100).abs() <= 3,
                "equal-size shard came out as {total}"
            );
        }
    }

    #[test]
    fn higher_quantity_skew_spreads_sizes() {
        let spread = |skew: f64| -> usize {
            let parts = dirichlet_partition_with_quantity_skew(60, 5, 100, 1.0, skew, 5);
            let sizes: Vec<usize> = parts.iter().map(|p| p.iter().sum()).collect();
            sizes.iter().max().unwrap() - sizes.iter().min().unwrap()
        };
        assert!(spread(0.8) > spread(0.1));
    }

    #[test]
    #[should_panic(expected = "quantity skew")]
    fn out_of_range_quantity_skew_panics() {
        let _ = dirichlet_partition_with_quantity_skew(2, 2, 10, 1.0, 1.5, 0);
    }

    #[test]
    fn per_client_counts_match_matrix_rows() {
        let matrix = dirichlet_partition_with_quantity_skew(25, 7, 80, 0.1, 0.5, 99);
        for (c, row) in matrix.iter().enumerate() {
            assert_eq!(row, &dirichlet_client_counts(c, 7, 80, 0.1, 0.5, 99));
        }
        let iid = iid_partition(25, 7, 80, 99);
        for (c, row) in iid.iter().enumerate() {
            assert_eq!(row, &iid_client_counts(c, 7, 80, 99));
        }
        // Rows can be derived in any order without changing bits.
        assert_eq!(dirichlet_client_counts(24, 7, 80, 0.1, 0.5, 99), matrix[24]);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn per_client_zero_alpha_panics() {
        let _ = dirichlet_client_counts(0, 2, 10, 0.0, 0.5, 0);
    }
}
