//! Lazy, population-scale shard derivation.
//!
//! [`FederatedDataset::generate`] materializes every client's train and
//! test shard up front — fine at 200 clients, ruinous at 1M. This module
//! provides the O(cohort)-memory alternative the population-scale runtime
//! uses:
//!
//! - [`ShardSpec`] makes each client's shard a *pure function* of
//!   `(config, seed, client)`. This works because every random quantity in
//!   shard construction already lives on a per-client RNG stream: the
//!   partition row comes from `split_seed(partition_seed, client)` (see
//!   [`dirichlet_client_counts`]), and the train/test sample draws come
//!   from `split_seed(seed, 1000 + client)` / `split_seed(seed, 2000 +
//!   client)`. No client's stream ever feeds another's, so deriving one
//!   shard in isolation is bit-identical to generating the whole
//!   population eagerly — a property pinned by the `lazy_shards` proptest.
//! - [`ShardCache`] serves `Arc`-shared shard pairs through a bounded LRU
//!   keyed by a strictly increasing access clock, so resident
//!   training-data memory is bounded by the configured capacity no matter
//!   how large the population is. Eviction picks the unique minimum
//!   last-use stamp, so cache behaviour is a deterministic function of the
//!   access sequence alone.
//!
//! [`FederatedDataset::generate`]: crate::FederatedDataset::generate
//! [`dirichlet_client_counts`]: crate::partition::dirichlet_client_counts

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use float_tensor::rng::split_seed;
use float_tensor::Dataset;

use crate::federated::FederatedConfig;
use crate::partition::{dirichlet_client_counts, iid_client_counts};
use crate::synthetic::SyntheticTaskConfig;

/// The ±50% quantity skew [`crate::partition::dirichlet_partition`]
/// applies by default; `ShardSpec` must match it exactly to stay
/// bit-identical with the eager path.
const DEFAULT_QUANTITY_SKEW: f64 = 0.5;

/// Pure per-client shard derivation: each client's train/test shard is a
/// function of `(config, seed, client)` and nothing else.
///
/// The seed schedule matches [`crate::FederatedDataset::generate`]
/// exactly: centroids from `seed`, partition rows from `split_seed(seed,
/// 1)`, train samples from `split_seed(seed, 1000 + client)`, test
/// samples from `split_seed(seed, 2000 + client)`.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    config: FederatedConfig,
    synth: SyntheticTaskConfig,
    /// Class centroids, shared by every client's sampler. O(classes × dim)
    /// — the only population-independent state worth keeping resident.
    centroids: Vec<Vec<f32>>,
    seed: u64,
}

impl ShardSpec {
    /// Build the spec (derives task parameters and class centroids; no
    /// per-client work).
    pub fn new(config: FederatedConfig, seed: u64) -> Self {
        let synth = config.task.synthetic_config();
        let centroids = synth.centroids(seed);
        ShardSpec {
            config,
            synth,
            centroids,
            seed,
        }
    }

    /// Construction parameters.
    pub fn config(&self) -> &FederatedConfig {
        &self.config
    }

    /// The synthetic task parameters (class count, dimensionality).
    pub fn synthetic(&self) -> &SyntheticTaskConfig {
        &self.synth
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.config.num_clients
    }

    /// Per-class sample counts of client `client` (train + test combined)
    /// — row `client` of the partition matrix, derived in isolation.
    pub fn client_counts(&self, client: usize) -> Vec<usize> {
        let part_seed = split_seed(self.seed, 1);
        match self.config.alpha {
            Some(a) => dirichlet_client_counts(
                client,
                self.synth.num_classes,
                self.config.mean_samples,
                a,
                DEFAULT_QUANTITY_SKEW,
                part_seed,
            ),
            None => iid_client_counts(
                client,
                self.synth.num_classes,
                self.config.mean_samples,
                part_seed,
            ),
        }
    }

    /// Split a client's combined counts into `(train, test)` counts using
    /// the config's test fraction — the same arithmetic as the eager path.
    fn split_counts(&self, counts: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let tf = self.config.test_fraction.clamp(0.0, 0.9);
        let train: Vec<usize> = counts
            .iter()
            .map(|&c| ((c as f64) * (1.0 - tf)).round() as usize)
            .collect();
        let test: Vec<usize> = counts
            .iter()
            .zip(&train)
            .map(|(&c, &t)| c.saturating_sub(t))
            .collect();
        (train, test)
    }

    /// Training shard of client `client`, derived on the spot.
    pub fn train_shard(&self, client: usize) -> Dataset {
        let (train_counts, _) = self.split_counts(&self.client_counts(client));
        self.synth.sample(
            &self.centroids,
            &train_counts,
            split_seed(self.seed, 1000 + client as u64),
        )
    }

    /// Test shard of client `client`, derived on the spot.
    pub fn test_shard(&self, client: usize) -> Dataset {
        let (_, test_counts) = self.split_counts(&self.client_counts(client));
        self.synth.sample(
            &self.centroids,
            &test_counts,
            split_seed(self.seed, 2000 + client as u64),
        )
    }

    /// Both shards of client `client`, sharing one partition-row
    /// derivation (cheaper than two separate calls).
    pub fn shard_pair(&self, client: usize) -> (Dataset, Dataset) {
        let (train_counts, test_counts) = self.split_counts(&self.client_counts(client));
        let train = self.synth.sample(
            &self.centroids,
            &train_counts,
            split_seed(self.seed, 1000 + client as u64),
        );
        let test = self.synth.sample(
            &self.centroids,
            &test_counts,
            split_seed(self.seed, 2000 + client as u64),
        );
        (train, test)
    }
}

/// Counters describing a [`ShardCache`]'s behaviour. All values are
/// deterministic functions of the access sequence (the cache's interior
/// state never depends on wall-clock time or thread scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCacheStats {
    /// Accesses served from a resident entry.
    pub hits: u64,
    /// Accesses that derived the shard pair on the spot.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Client shard pairs currently resident.
    pub resident: usize,
    /// The largest `resident` ever observed — the memory high-water mark,
    /// always `<= capacity`.
    pub peak_resident: usize,
    /// Configured bound on resident entries.
    pub capacity: usize,
}

/// One resident cache entry: the client's shard pair plus its last-use
/// stamp from the access clock.
struct CacheEntry {
    train: Arc<Dataset>,
    test: Arc<Dataset>,
    last_used: u64,
}

/// A bounded, deterministic LRU cache over [`ShardSpec`] derivations.
///
/// `get` returns `Arc` handles, so evicting an entry only drops the
/// cache's reference — callers that captured the shards (e.g. in-flight
/// attempt tasks) keep them alive until they finish. Least-recently-used
/// eviction uses a strictly increasing access clock, so the victim is
/// always unique and the cache's contents are a pure function of the
/// access sequence — no iteration-order or timing dependence.
pub struct ShardCache {
    spec: ShardSpec,
    entries: HashMap<usize, CacheEntry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    peak_resident: usize,
}

impl ShardCache {
    /// Wrap `spec` in a cache bounded to `capacity` resident clients.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a cache that can hold nothing cannot
    /// hand out entries).
    pub fn new(spec: ShardSpec, capacity: usize) -> Self {
        assert!(capacity > 0, "shard cache capacity must be positive");
        ShardCache {
            spec,
            entries: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            peak_resident: 0,
        }
    }

    /// The underlying pure derivation (for cache-free access paths, e.g.
    /// parallel evaluation workers that each derive shards into their own
    /// scratch).
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.spec.num_clients()
    }

    /// Behaviour counters (see [`ShardCacheStats`]).
    pub fn stats(&self) -> ShardCacheStats {
        ShardCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident: self.entries.len(),
            peak_resident: self.peak_resident,
            capacity: self.capacity,
        }
    }

    /// The `(train, test)` shard pair of `client`, from cache or derived
    /// on the spot.
    pub fn get(&mut self, client: usize) -> (Arc<Dataset>, Arc<Dataset>) {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&client) {
            e.last_used = self.clock;
            self.hits += 1;
            return (Arc::clone(&e.train), Arc::clone(&e.test));
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry. Stamps are unique
            // (strictly increasing clock), so the minimum is unique and
            // the choice is independent of HashMap iteration order.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&c, _)| c)
                .expect("capacity > 0 and cache full implies an entry");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        let (train, test) = self.spec.shard_pair(client);
        let entry = CacheEntry {
            train: Arc::new(train),
            test: Arc::new(test),
            last_used: self.clock,
        };
        let out = (Arc::clone(&entry.train), Arc::clone(&entry.test));
        self.entries.insert(client, entry);
        self.peak_resident = self.peak_resident.max(self.entries.len());
        out
    }
}

/// A client's derived train/eval pair as stored by [`SharedShardCache`].
type SharedShardEntry = (Arc<Dataset>, Arc<Dataset>);

/// A sweep-wide shard store shared read-only across concurrent trials.
///
/// Where [`ShardCache`] is a per-run bounded LRU behind `&mut self`, this
/// store is an `Arc<ShardSpec>`-backed map behind `&self`: many trials of
/// a sweep — running simultaneously on different worker threads — request
/// shards through one instance, and each client's pair is derived exactly
/// once for the whole sweep (the deriving thread holds the lock, so a
/// concurrent request for the same client waits and then hits).
///
/// Sharing is value-transparent: shard contents are pure functions of
/// `(spec, client)`, so a trial served from this store sees bit-identical
/// data to one deriving through its own private cache. Only the hit/miss
/// counters depend on trial interleaving, and those never feed any
/// trial's report.
pub struct SharedShardCache {
    spec: Arc<ShardSpec>,
    entries: Mutex<HashMap<usize, SharedShardEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    peak_resident: AtomicU64,
}

impl SharedShardCache {
    /// Wrap `spec` in a shared store. Capacity is the whole population:
    /// a sweep amortizes derivations, so evicting would only re-pay them.
    pub fn new(spec: ShardSpec) -> Self {
        SharedShardCache {
            spec: Arc::new(spec),
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        }
    }

    /// The underlying pure derivation.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The `Arc` spec handle (for eval paths that derive shards directly).
    pub fn spec_arc(&self) -> Arc<ShardSpec> {
        Arc::clone(&self.spec)
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.spec.num_clients()
    }

    /// The `(train, test)` shard pair of `client`, derived at most once
    /// across every trial sharing this store.
    pub fn get(&self, client: usize) -> (Arc<Dataset>, Arc<Dataset>) {
        let mut entries = self.entries.lock().expect("shard store lock poisoned");
        if let Some((train, test)) = entries.get(&client) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(train), Arc::clone(test));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Derive under the lock: the point of the store is exactly-once
        // derivation, so a racing request for the same client should wait
        // for this one rather than duplicate the work.
        let (train, test) = self.spec.shard_pair(client);
        let pair = (Arc::new(train), Arc::new(test));
        entries.insert(client, (Arc::clone(&pair.0), Arc::clone(&pair.1)));
        self.peak_resident
            .fetch_max(entries.len() as u64, Ordering::Relaxed);
        pair
    }

    /// Behaviour counters in [`ShardCacheStats`] form. `misses` is the
    /// number of derivations actually paid (at most one per client for
    /// the whole sweep); `evictions` is always zero.
    pub fn stats(&self) -> ShardCacheStats {
        let resident = self
            .entries
            .lock()
            .expect("shard store lock poisoned")
            .len();
        ShardCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: 0,
            resident,
            peak_resident: self.peak_resident.load(Ordering::Relaxed) as usize,
            capacity: self.spec.num_clients(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federated::FederatedDataset;
    use crate::task::Task;

    fn cfg(num_clients: usize) -> FederatedConfig {
        FederatedConfig {
            task: Task::Cifar10,
            num_clients,
            mean_samples: 40,
            alpha: Some(0.1),
            test_fraction: 0.25,
        }
    }

    #[test]
    fn spec_matches_eager_generation() {
        let c = cfg(10);
        let eager = FederatedDataset::generate(c, 17);
        let spec = ShardSpec::new(c, 17);
        // Access in a scrambled order: derivations are independent.
        for i in [7usize, 0, 9, 3, 3, 1, 8] {
            let (train, test) = spec.shard_pair(i);
            assert_eq!(train.labels(), eager.train_shard(i).labels());
            assert_eq!(
                train.features().data(),
                eager.train_shard(i).features().data()
            );
            assert_eq!(test.labels(), eager.test_shard(i).labels());
            assert_eq!(
                test.features().data(),
                eager.test_shard(i).features().data()
            );
            assert_eq!(spec.train_shard(i).labels(), train.labels());
            assert_eq!(spec.test_shard(i).labels(), test.labels());
        }
    }

    #[test]
    fn iid_spec_matches_eager_generation() {
        let mut c = cfg(6);
        c.alpha = None;
        let eager = FederatedDataset::generate(c, 3);
        let spec = ShardSpec::new(c, 3);
        for i in (0..6).rev() {
            let (train, test) = spec.shard_pair(i);
            assert_eq!(
                train.features().data(),
                eager.train_shard(i).features().data()
            );
            assert_eq!(
                test.features().data(),
                eager.test_shard(i).features().data()
            );
        }
    }

    #[test]
    fn cache_bounds_residency_and_counts_events() {
        let mut cache = ShardCache::new(ShardSpec::new(cfg(12), 5), 3);
        for i in 0..12 {
            let _ = cache.get(i);
            assert!(cache.stats().resident <= 3);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 12);
        assert_eq!(s.hits, 0);
        assert_eq!(s.evictions, 9);
        assert_eq!(s.resident, 3);
        assert_eq!(s.peak_resident, 3);
        assert_eq!(s.capacity, 3);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = ShardCache::new(ShardSpec::new(cfg(6), 5), 2);
        let _ = cache.get(0);
        let _ = cache.get(1);
        let _ = cache.get(0); // refresh 0; LRU is now 1
        let _ = cache.get(2); // evicts 1
        let before = cache.stats().misses;
        let _ = cache.get(0); // still resident
        assert_eq!(cache.stats().misses, before, "0 should have been a hit");
        let _ = cache.get(1); // was evicted → miss
        assert_eq!(cache.stats().misses, before + 1);
    }

    #[test]
    fn cached_shards_equal_direct_derivation() {
        let spec = ShardSpec::new(cfg(8), 11);
        let mut cache = ShardCache::new(spec.clone(), 2);
        // Thrash the cache; every returned pair must still be the pure
        // derivation, bit for bit.
        for i in [5usize, 2, 7, 5, 0, 2, 5, 1, 6] {
            let (train, test) = cache.get(i);
            let (dt, de) = spec.shard_pair(i);
            assert_eq!(train.features().data(), dt.features().data());
            assert_eq!(train.labels(), dt.labels());
            assert_eq!(test.features().data(), de.features().data());
            assert_eq!(test.labels(), de.labels());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ShardCache::new(ShardSpec::new(cfg(2), 1), 0);
    }

    #[test]
    fn shared_store_derives_each_client_once() {
        let store = SharedShardCache::new(ShardSpec::new(cfg(6), 9));
        for i in [3usize, 1, 3, 5, 1, 3, 0, 5] {
            let _ = store.get(i);
        }
        let s = store.stats();
        assert_eq!(s.misses, 4, "one derivation per distinct client");
        assert_eq!(s.hits, 4);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.resident, 4);
        assert_eq!(s.peak_resident, 4);
        assert_eq!(s.capacity, 6);
    }

    #[test]
    fn shared_store_matches_pure_derivation_across_threads() {
        let spec = ShardSpec::new(cfg(8), 21);
        let store = SharedShardCache::new(spec.clone());
        // Hammer the store from several threads in scrambled orders; every
        // returned pair must be the pure derivation, bit for bit.
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let store = &store;
                let spec = &spec;
                scope.spawn(move || {
                    for k in 0..8usize {
                        let i = (k * 3 + t) % 8;
                        let (train, test) = store.get(i);
                        let (dt, de) = spec.shard_pair(i);
                        assert_eq!(train.features().data(), dt.features().data());
                        assert_eq!(train.labels(), dt.labels());
                        assert_eq!(test.features().data(), de.features().data());
                        assert_eq!(test.labels(), de.labels());
                    }
                });
            }
        });
        let s = store.stats();
        assert_eq!(s.misses, 8, "each client derived exactly once");
        assert_eq!(s.hits + s.misses, 32);
    }
}
