//! Federated dataset: per-client train shards plus per-client test shards.

use serde::{Deserialize, Serialize};

use float_tensor::Dataset;

use crate::lazy::ShardSpec;
use crate::synthetic::SyntheticTaskConfig;
use crate::task::Task;

/// Federated dataset construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederatedConfig {
    /// Benchmark task (class count, difficulty).
    pub task: Task,
    /// Number of clients to shard over.
    pub num_clients: usize,
    /// Mean training samples per client.
    pub mean_samples: usize,
    /// Dirichlet α; `None` ⇒ IID.
    pub alpha: Option<f64>,
    /// Fraction of each client's data held out for local evaluation
    /// (the paper evaluates accuracy on clients' non-IID local data, §6.1).
    pub test_fraction: f64,
}

impl FederatedConfig {
    /// A paper-standard configuration: 200 clients, Dirichlet α.
    pub fn paper_default(task: Task, alpha: f64) -> Self {
        FederatedConfig {
            task,
            num_clients: 200,
            mean_samples: 120,
            alpha: Some(alpha),
            test_fraction: 0.25,
        }
    }
}

/// A fully materialized federated dataset: one train and one test shard per
/// client, all drawn from shared class-conditional distributions.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    config: FederatedConfig,
    train: Vec<Dataset>,
    test: Vec<Dataset>,
    synth: SyntheticTaskConfig,
}

impl FederatedDataset {
    /// Generate a federated dataset deterministically from `(config, seed)`.
    ///
    /// Delegates per-client work to [`ShardSpec`], the lazy derivation the
    /// population-scale runtime uses — eager generation is just "derive
    /// every client now", so the two paths are bit-identical by
    /// construction (pinned by the `lazy_shards` proptest).
    pub fn generate(config: FederatedConfig, seed: u64) -> Self {
        let spec = ShardSpec::new(config, seed);
        let mut train = Vec::with_capacity(config.num_clients);
        let mut test = Vec::with_capacity(config.num_clients);
        for i in 0..config.num_clients {
            let (tr, te) = spec.shard_pair(i);
            train.push(tr);
            test.push(te);
        }
        FederatedDataset {
            config,
            train,
            test,
            synth: *spec.synthetic(),
        }
    }

    /// Construction parameters.
    pub fn config(&self) -> &FederatedConfig {
        &self.config
    }

    /// The synthetic task parameters (class count, dimensionality).
    pub fn synthetic(&self) -> &SyntheticTaskConfig {
        &self.synth
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.train.len()
    }

    /// Training shard of client `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn train_shard(&self, i: usize) -> &Dataset {
        &self.train[i]
    }

    /// Test shard of client `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn test_shard(&self, i: usize) -> &Dataset {
        &self.test[i]
    }

    /// Total training samples across all clients.
    pub fn total_train_samples(&self) -> usize {
        self.train.iter().map(Dataset::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FederatedConfig {
        FederatedConfig {
            task: Task::Cifar10,
            num_clients: 8,
            mean_samples: 40,
            alpha: Some(0.1),
            test_fraction: 0.25,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FederatedDataset::generate(small(), 5);
        let b = FederatedDataset::generate(small(), 5);
        assert_eq!(a.num_clients(), b.num_clients());
        for i in 0..a.num_clients() {
            assert_eq!(a.train_shard(i).labels(), b.train_shard(i).labels());
            assert_eq!(
                a.train_shard(i).features().data(),
                b.train_shard(i).features().data()
            );
        }
    }

    #[test]
    fn every_client_has_train_and_test_data() {
        let d = FederatedDataset::generate(small(), 2);
        for i in 0..d.num_clients() {
            assert!(!d.train_shard(i).is_empty(), "client {i} train empty");
            assert!(!d.test_shard(i).is_empty(), "client {i} test empty");
        }
    }

    #[test]
    fn shards_share_feature_dim() {
        let d = FederatedDataset::generate(small(), 2);
        let dim = d.synthetic().feature_dim;
        for i in 0..d.num_clients() {
            assert_eq!(d.train_shard(i).dim(), dim);
            assert_eq!(d.test_shard(i).dim(), dim);
        }
    }

    #[test]
    fn iid_config_reduces_label_skew() {
        use crate::partition::partition_skew;
        let mut cfg = small();
        cfg.alpha = None;
        cfg.num_clients = 30;
        cfg.mean_samples = 200;
        let iid = FederatedDataset::generate(cfg, 3);
        cfg.alpha = Some(0.05);
        let skewed = FederatedDataset::generate(cfg, 3);
        let hist = |d: &FederatedDataset| -> Vec<Vec<usize>> {
            (0..d.num_clients())
                .map(|i| d.train_shard(i).label_histogram())
                .collect()
        };
        assert!(partition_skew(&hist(&iid)) + 0.2 < partition_skew(&hist(&skewed)));
    }
}
