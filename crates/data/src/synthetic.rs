//! Gaussian-mixture synthetic classification task generator.

use rand::Rng;
use rand_distr_shim::StandardNormalShim;
use serde::{Deserialize, Serialize};

use float_tensor::rng::{seed_rng, split_seed};
use float_tensor::Dataset;

/// Configuration of a synthetic classification task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticTaskConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Distance scale between class centroids (higher ⇒ easier).
    pub class_sep: f32,
    /// Per-feature Gaussian noise standard deviation.
    pub noise: f32,
}

impl SyntheticTaskConfig {
    /// Deterministically generate the class centroids for this task.
    ///
    /// Centroids depend only on `(config, seed)`, so every client samples
    /// from the *same* underlying class-conditional distributions — the
    /// federated setting's shared concept.
    pub fn centroids(&self, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = seed_rng(split_seed(seed, 0xC3A7));
        (0..self.num_classes)
            .map(|_| {
                (0..self.feature_dim)
                    .map(|_| self.class_sep * rng.sample::<f32, _>(StandardNormalShim))
                    .collect()
            })
            .collect()
    }

    /// Sample `counts[c]` points of each class `c` around the shared
    /// centroids, returning a [`Dataset`].
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != num_classes`.
    pub fn sample(&self, centroids: &[Vec<f32>], counts: &[usize], seed: u64) -> Dataset {
        assert_eq!(counts.len(), self.num_classes, "counts/class mismatch");
        let mut rng = seed_rng(split_seed(seed, 0xDA7A));
        let total: usize = counts.iter().sum();
        let mut rows = Vec::with_capacity(total.max(1));
        let mut labels = Vec::with_capacity(total.max(1));
        for (c, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                let row: Vec<f32> = centroids[c]
                    .iter()
                    .map(|&m| m + self.noise * rng.sample::<f32, _>(StandardNormalShim))
                    .collect();
                rows.push(row);
                labels.push(c);
            }
        }
        if rows.is_empty() {
            // Guarantee a non-empty dataset: one sample of class 0 at its
            // centroid. Empty shards otherwise poison Dataset construction.
            rows.push(centroids[0].clone());
            labels.push(0);
        }
        Dataset::from_rows(&rows, &labels, self.num_classes)
            .expect("synthetic rows are rectangular and labels in range by construction")
    }
}

/// A tiny internal shim providing standard-normal sampling from `rand`'s
/// uniform source (Box–Muller), avoiding a dependency on `rand_distr`.
mod rand_distr_shim {
    use rand::distributions::Distribution;
    use rand::Rng;

    /// Standard normal distribution via the Box–Muller transform.
    #[derive(Debug, Clone, Copy)]
    pub struct StandardNormalShim;

    impl Distribution<f32> for StandardNormalShim {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // Draw u1 in (0, 1] to keep ln finite.
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        }
    }
}

pub use rand_distr_shim::StandardNormalShim as StandardNormal;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SyntheticTaskConfig {
        SyntheticTaskConfig {
            num_classes: 4,
            feature_dim: 8,
            class_sep: 2.0,
            noise: 0.5,
        }
    }

    #[test]
    fn centroids_are_deterministic() {
        let c = cfg();
        assert_eq!(c.centroids(7), c.centroids(7));
        assert_ne!(c.centroids(7), c.centroids(8));
    }

    #[test]
    fn sample_respects_counts() {
        let c = cfg();
        let cents = c.centroids(1);
        let d = c.sample(&cents, &[3, 0, 2, 1], 9);
        assert_eq!(d.len(), 6);
        assert_eq!(d.label_histogram(), vec![3, 0, 2, 1]);
    }

    #[test]
    fn empty_counts_yield_singleton() {
        let c = cfg();
        let cents = c.centroids(1);
        let d = c.sample(&cents, &[0, 0, 0, 0], 9);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn samples_cluster_near_centroids() {
        let c = SyntheticTaskConfig {
            num_classes: 2,
            feature_dim: 4,
            class_sep: 10.0,
            noise: 0.1,
        };
        let cents = c.centroids(3);
        let d = c.sample(&cents, &[50, 50], 4);
        // Each sample should be far closer to its own centroid.
        for i in 0..d.len() {
            let y = d.labels()[i];
            let row = d.features().row(i);
            let dist = |c: &[f32]| -> f32 { row.iter().zip(c).map(|(a, b)| (a - b).powi(2)).sum() };
            let own = dist(&cents[y]);
            let other = dist(&cents[1 - y]);
            assert!(own < other, "sample {i} nearer to wrong centroid");
        }
    }

    #[test]
    fn normal_shim_moments() {
        use rand::Rng;
        let mut rng = float_tensor::seed_rng(2);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.sample(StandardNormal)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
