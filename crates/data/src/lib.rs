//! `float-data` — synthetic federated datasets and non-IID partitioning.
//!
//! The paper evaluates on FEMNIST, CIFAR-10, OpenImage, and Google Speech
//! Commands, partitioned across clients with a Dirichlet distribution.
//! Those datasets are not available offline, so this crate builds the
//! closest synthetic equivalent: each *task* is a Gaussian-mixture
//! classification problem with the same class count as the real dataset and
//! a difficulty knob calibrated so that relative convergence behaviour
//! (Speech converges fast, OpenImage is hard) is preserved. Partitioning
//! uses the standard Dirichlet(α) label-skew scheme from Hsu et al., which
//! is exactly what FedScale and the paper use — so the per-client label
//! statistics that drive FLOAT's accuracy phenomena are faithful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod federated;
pub mod lazy;
pub mod partition;
pub mod synthetic;
pub mod task;

pub use federated::FederatedDataset;
pub use lazy::{ShardCache, ShardCacheStats, ShardSpec, SharedShardCache};
pub use partition::{
    dirichlet_client_counts, dirichlet_partition, dirichlet_partition_with_quantity_skew,
    iid_client_counts, iid_partition, PartitionSpec,
};
pub use synthetic::SyntheticTaskConfig;
pub use task::Task;
