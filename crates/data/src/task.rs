//! Task registry mirroring the paper's benchmark datasets.

use serde::{Deserialize, Serialize};

use crate::synthetic::SyntheticTaskConfig;

/// The benchmark tasks used in the paper's evaluation, each mapped to a
/// synthetic stand-in with matching class structure and calibrated
/// difficulty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// EMNIST (motivation experiments, §4): 47-class handwritten characters.
    Emnist,
    /// FEMNIST: 62-class federated handwritten characters.
    Femnist,
    /// CIFAR-10: 10-class natural images.
    Cifar10,
    /// OpenImage: large-scale image classification (596 trainable classes in
    /// FedScale's split; we model a 64-class hard task to keep the proxy
    /// tractable while preserving "hardest task" ordering).
    OpenImage,
    /// Google Speech Commands: 35 keywords; converges fast, low resource
    /// footprint.
    Speech,
}

impl Task {
    /// Every benchmark task.
    pub const ALL: [Task; 5] = [
        Task::Emnist,
        Task::Femnist,
        Task::Cifar10,
        Task::OpenImage,
        Task::Speech,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Task::Emnist => "emnist",
            Task::Femnist => "femnist",
            Task::Cifar10 => "cifar10",
            Task::OpenImage => "openimage",
            Task::Speech => "speech",
        }
    }

    /// The synthetic generator configuration for this task.
    ///
    /// `class_sep` controls how far apart class centroids are (higher ⇒
    /// easier task ⇒ faster convergence); the values are calibrated so the
    /// relative orderings reported in the paper hold: Speech converges
    /// fastest, OpenImage is hardest, FEMNIST/CIFAR-10 sit in between.
    pub fn synthetic_config(self) -> SyntheticTaskConfig {
        match self {
            Task::Emnist => SyntheticTaskConfig {
                num_classes: 47,
                feature_dim: 32,
                class_sep: 1.05,
                noise: 1.0,
            },
            Task::Femnist => SyntheticTaskConfig {
                num_classes: 62,
                feature_dim: 32,
                class_sep: 1.0,
                noise: 1.0,
            },
            Task::Cifar10 => SyntheticTaskConfig {
                num_classes: 10,
                feature_dim: 24,
                class_sep: 0.85,
                noise: 1.0,
            },
            Task::OpenImage => SyntheticTaskConfig {
                num_classes: 64,
                feature_dim: 40,
                class_sep: 0.75,
                noise: 1.2,
            },
            Task::Speech => SyntheticTaskConfig {
                num_classes: 35,
                feature_dim: 20,
                class_sep: 1.6,
                noise: 0.8,
            },
        }
    }

    /// Relative per-sample compute weight of this task (Speech is cheap,
    /// OpenImage is expensive), used when sizing local datasets.
    pub fn sample_weight(self) -> f64 {
        match self {
            Task::Emnist | Task::Femnist => 1.0,
            Task::Cifar10 => 1.2,
            Task::OpenImage => 2.0,
            Task::Speech => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_real_datasets() {
        assert_eq!(Task::Femnist.synthetic_config().num_classes, 62);
        assert_eq!(Task::Cifar10.synthetic_config().num_classes, 10);
        assert_eq!(Task::Speech.synthetic_config().num_classes, 35);
        assert_eq!(Task::Emnist.synthetic_config().num_classes, 47);
    }

    #[test]
    fn speech_is_easiest_openimage_hardest() {
        let sep = |t: Task| t.synthetic_config().class_sep;
        for t in Task::ALL {
            if t != Task::Speech {
                assert!(sep(Task::Speech) > sep(t), "{}", t.name());
            }
            if t != Task::OpenImage {
                assert!(sep(Task::OpenImage) < sep(t), "{}", t.name());
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Task::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Task::ALL.len());
    }
}
