//! Execution of one client's local round against its resource snapshot.

use rand::Rng;
use serde::{Deserialize, Serialize};

use float_models::RoundCost;
use float_tensor::rng::{seed_rng, split_seed};
use float_traces::compute::DeviceProfile;
use float_traces::ResourceSnapshot;

/// Why a client failed to contribute its update this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Client was unavailable when the round started (diurnal off-period,
    /// interruption, or depleted battery).
    Unavailable,
    /// Training memory requirement exceeded available device memory.
    OutOfMemory,
    /// The round exceeded the deadline (synchronous) or staleness bound
    /// (asynchronous).
    DeadlineMiss,
    /// The device went away mid-round (user activity, network loss,
    /// battery death during the round).
    MidRoundFailure,
    /// Fault injection: the device crashed mid-round after finishing its
    /// local work ([`crate::fault::FaultKind::MidRoundCrash`]).
    InjectedCrash,
    /// Fault injection: the upload stalled past the server's timeout
    /// ([`crate::fault::FaultKind::NetworkStall`]).
    NetworkStall,
    /// The update arrived but server-side validation rejected it: the
    /// payload carried non-finite values (corrupt wire bytes or diverged
    /// training). Quarantined updates never reach aggregation.
    Quarantined,
}

/// Fixed parameters of a round execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundParams {
    /// Deadline in seconds for the full download→train→upload pipeline.
    pub deadline_s: f64,
    /// Per-second hazard rate of a mid-round failure when the device is
    /// under load (scaled by round duration).
    pub failure_hazard_per_s: f64,
}

impl RoundParams {
    /// Paper-like defaults: a few-minute deadline per round, and a small
    /// per-second failure hazard so multi-minute rounds on flaky devices
    /// fail noticeably often while sub-minute rounds rarely do.
    pub fn paper_default() -> Self {
        RoundParams {
            deadline_s: 240.0,
            failure_hazard_per_s: 4.0e-4,
        }
    }
}

/// Outcome of attempting one client round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientRoundOutcome {
    /// `None` if the client completed; `Some(reason)` if it dropped.
    pub dropped: Option<DropReason>,
    /// Time spent downloading the global model, seconds.
    pub download_s: f64,
    /// Time spent training, seconds.
    pub train_s: f64,
    /// Time spent uploading the update, seconds.
    pub upload_s: f64,
    /// Peak training memory used, bytes.
    pub memory_bytes: f64,
    /// Energy drawn from the battery, joules.
    pub energy_j: f64,
    /// How far past the deadline the client ran, as a fraction of the
    /// deadline (0 if it finished in time). This is the paper's
    /// "deadline difference" human-feedback signal (Table 1).
    pub deadline_overrun: f64,
}

impl ClientRoundOutcome {
    /// Total wall time of the attempt, seconds.
    pub fn total_s(&self) -> f64 {
        self.download_s + self.train_s + self.upload_s
    }

    /// Whether the client completed and contributed its update.
    pub fn completed(&self) -> bool {
        self.dropped.is_none()
    }
}

/// Estimate the wall time of a round with `cost` under `snapshot`, without
/// executing it. Used by FLOAT's human-feedback signal: the deadline
/// difference a client would incur on a *vanilla* round reveals its
/// underlying capability even in rounds where acceleration rescued it.
pub fn estimate_round_time_s(snapshot: &ResourceSnapshot, cost: &RoundCost) -> f64 {
    let mbps = snapshot.effective_mbps.max(1e-3);
    let gflops = snapshot.effective_gflops.max(1e-4);
    (cost.download_bytes + cost.upload_bytes) * 8.0 / (mbps * 1e6)
        + cost.train_flops / (gflops * 1e9)
}

/// Execute one client round.
///
/// The client downloads the global model, trains, and uploads its update;
/// each phase's latency comes from dividing the [`RoundCost`] quantities by
/// the snapshot's effective throughput/bandwidth. Failure modes are
/// evaluated in order: availability → memory admission → deadline →
/// stochastic mid-round failure. Even a dropped client consumes the
/// resources it spent up to the failure point — that waste is exactly what
/// the paper's inefficiency metrics count.
pub fn execute_client_round(
    snapshot: &ResourceSnapshot,
    profile: &DeviceProfile,
    cost: &RoundCost,
    params: &RoundParams,
    seed: u64,
) -> ClientRoundOutcome {
    // Phase latencies. Guard all denominators: a fully interfered client
    // has epsilon resources, not zero, but stay defensive.
    let mbps = snapshot.effective_mbps.max(1e-3);
    let gflops = snapshot.effective_gflops.max(1e-4);
    let download_s = cost.download_bytes * 8.0 / (mbps * 1e6);
    let train_s = cost.train_flops / (gflops * 1e9);
    let upload_s = cost.upload_bytes * 8.0 / (mbps * 1e6);
    let total_s = download_s + train_s + upload_s;

    let energy_j = cost.train_flops / 1e12 * profile.compute_j_per_tflop
        + (cost.download_bytes + cost.upload_bytes) / 1e6 * profile.net_j_per_mb;

    let mut outcome = ClientRoundOutcome {
        dropped: None,
        download_s,
        train_s,
        upload_s,
        memory_bytes: cost.memory_bytes,
        energy_j,
        deadline_overrun: ((total_s - params.deadline_s) / params.deadline_s).max(0.0),
    };

    if !snapshot.available {
        // Never started: no resources burned.
        outcome.dropped = Some(DropReason::Unavailable);
        outcome.download_s = 0.0;
        outcome.train_s = 0.0;
        outcome.upload_s = 0.0;
        outcome.memory_bytes = 0.0;
        outcome.energy_j = 0.0;
        return outcome;
    }

    if cost.memory_bytes > snapshot.effective_memory_bytes {
        // Admission failure: the download happened, training never did.
        outcome.dropped = Some(DropReason::OutOfMemory);
        outcome.train_s = 0.0;
        outcome.upload_s = 0.0;
        outcome.energy_j = cost.download_bytes / 1e6 * profile.net_j_per_mb;
        return outcome;
    }

    if total_s > params.deadline_s {
        // Straggler: it worked the full deadline (the server cuts it off)
        // and all of that work is wasted.
        outcome.dropped = Some(DropReason::DeadlineMiss);
        return outcome;
    }

    // Stochastic mid-round failure with hazard proportional to duration.
    let p_fail = 1.0 - (-params.failure_hazard_per_s * total_s).exp();
    let mut rng = seed_rng(split_seed(seed, 0xF41));
    if rng.gen::<f64>() < p_fail {
        outcome.dropped = Some(DropReason::MidRoundFailure);
        return outcome;
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use float_models::Architecture;
    use float_traces::{InterferenceModel, ResourceSampler};

    fn fast_snapshot() -> ResourceSnapshot {
        ResourceSnapshot {
            available: true,
            effective_gflops: 50.0,
            effective_mbps: 100.0,
            effective_memory_bytes: 1e10,
            cpu_fraction: 1.0,
            mem_fraction: 1.0,
            net_fraction: 1.0,
            battery_fraction: 1.0,
        }
    }

    fn profile() -> DeviceProfile {
        let mut s = ResourceSampler::new(1, InterferenceModel::None, 1);
        s.client(0).profile
    }

    fn small_cost() -> RoundCost {
        RoundCost::vanilla(&Architecture::ShuffleNetV2.profile(), 50, 1, 16)
    }

    #[test]
    fn fast_client_completes() {
        let out = execute_client_round(
            &fast_snapshot(),
            &profile(),
            &small_cost(),
            &RoundParams::paper_default(),
            3,
        );
        assert!(out.completed(), "dropped: {:?}", out.dropped);
        assert!(out.total_s() > 0.0);
        assert_eq!(out.deadline_overrun, 0.0);
    }

    #[test]
    fn unavailable_client_burns_nothing() {
        let mut snap = fast_snapshot();
        snap.available = false;
        let out = execute_client_round(
            &snap,
            &profile(),
            &small_cost(),
            &RoundParams::paper_default(),
            3,
        );
        assert_eq!(out.dropped, Some(DropReason::Unavailable));
        assert_eq!(out.total_s(), 0.0);
        assert_eq!(out.energy_j, 0.0);
    }

    #[test]
    fn memory_pressure_drops_client() {
        let mut snap = fast_snapshot();
        snap.effective_memory_bytes = 1.0; // nothing fits
        let out = execute_client_round(
            &snap,
            &profile(),
            &small_cost(),
            &RoundParams::paper_default(),
            3,
        );
        assert_eq!(out.dropped, Some(DropReason::OutOfMemory));
        assert_eq!(out.train_s, 0.0);
    }

    #[test]
    fn slow_client_misses_deadline() {
        let mut snap = fast_snapshot();
        snap.effective_gflops = 0.001;
        let out = execute_client_round(
            &snap,
            &profile(),
            &small_cost(),
            &RoundParams::paper_default(),
            3,
        );
        assert_eq!(out.dropped, Some(DropReason::DeadlineMiss));
        assert!(out.deadline_overrun > 0.0);
    }

    #[test]
    fn deadline_overrun_scales_with_slowness() {
        let params = RoundParams::paper_default();
        let mut slow = fast_snapshot();
        slow.effective_gflops = 0.01;
        let mut slower = fast_snapshot();
        slower.effective_gflops = 0.005;
        let a = execute_client_round(&slow, &profile(), &small_cost(), &params, 3);
        let b = execute_client_round(&slower, &profile(), &small_cost(), &params, 3);
        assert!(b.deadline_overrun > a.deadline_overrun);
    }

    #[test]
    fn acceleration_rescues_straggler() {
        // A client that misses the deadline vanilla completes with 75%
        // pruning — FLOAT's core mechanism at the single-round level.
        let mut snap = fast_snapshot();
        snap.effective_gflops = 11.0; // vanilla ≈ 300 s train, over deadline
        snap.effective_mbps = 100.0;
        let params = RoundParams::paper_default();
        let vanilla = RoundCost::vanilla(&Architecture::ResNet34.profile(), 60, 5, 20);
        let out_v = execute_client_round(&snap, &profile(), &vanilla, &params, 3);
        assert_eq!(out_v.dropped, Some(DropReason::DeadlineMiss));
        let pruned = vanilla
            .scale_compute(0.25)
            .scale_upload(0.25)
            .scale_memory(0.25);
        let out_p = execute_client_round(&snap, &profile(), &pruned, &params, 3);
        assert!(
            out_p.completed(),
            "pruned client still dropped: {:?}",
            out_p.dropped
        );
    }

    #[test]
    fn mid_round_failure_is_deterministic_per_seed() {
        let snap = fast_snapshot();
        let params = RoundParams {
            deadline_s: 1e9,
            failure_hazard_per_s: 0.5, // huge hazard so failures happen
        };
        let cost = RoundCost::vanilla(&Architecture::ResNet34.profile(), 200, 5, 20);
        let a = execute_client_round(&snap, &profile(), &cost, &params, 7);
        let b = execute_client_round(&snap, &profile(), &cost, &params, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn energy_scales_with_work() {
        let snap = fast_snapshot();
        let params = RoundParams {
            deadline_s: 1e9,
            failure_hazard_per_s: 0.0,
        };
        let c1 = small_cost();
        let c5 = RoundCost::vanilla(&Architecture::ShuffleNetV2.profile(), 50, 5, 16);
        let e1 = execute_client_round(&snap, &profile(), &c1, &params, 3).energy_j;
        let e5 = execute_client_round(&snap, &profile(), &c5, &params, 3).energy_j;
        assert!(e5 > e1);
    }
}
