//! Virtual time for the simulator.

use serde::{Deserialize, Serialize};

/// A monotonically advancing virtual clock, in seconds.
///
/// Synchronous FL advances it by the per-round wall time (the slowest
/// completing client or the round deadline, whichever is smaller);
/// asynchronous FL advances it by the inter-arrival times of buffered
/// updates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now_s: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Current virtual time in hours.
    pub fn now_hours(&self) -> f64 {
        self.now_s / 3600.0
    }

    /// Advance by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite — time never flows
    /// backwards in the simulator, and a NaN here would silently corrupt
    /// every downstream metric.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "clock advance {dt} invalid");
        self.now_s += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_accumulate() {
        let mut c = SimClock::new();
        c.advance(10.0);
        c.advance(3600.0);
        assert!((c.now_s() - 3610.0).abs() < 1e-9);
        assert!((c.now_hours() - 3610.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn nan_advance_panics() {
        SimClock::new().advance(f64::NAN);
    }
}
