//! Resource accounting: the paper's compute / communication / memory
//! (in)efficiency metrics.

use serde::{Deserialize, Serialize};

use crate::round::ClientRoundOutcome;

/// Accumulated resource usage, split into useful (completed rounds) and
/// wasted (dropped clients) work.
///
/// The paper reports "resource inefficiency" as the total computation and
/// communication *time in hours* and memory *in terabytes* consumed by
/// clients that dropped out (§6.1 Metrics, §6.2): that is exactly the
/// `wasted_*` side of this ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LedgerTotals {
    /// Training time of completed rounds, hours.
    pub useful_compute_h: f64,
    /// Transfer time of completed rounds, hours.
    pub useful_comm_h: f64,
    /// Memory held by completed rounds, terabytes (byte·rounds / 1e12).
    pub useful_memory_tb: f64,
    /// Training time of dropped clients, hours (wasted).
    pub wasted_compute_h: f64,
    /// Transfer time of dropped clients, hours (wasted).
    pub wasted_comm_h: f64,
    /// Memory held by dropped clients, terabytes (wasted).
    pub wasted_memory_tb: f64,
    /// Energy drawn by completed rounds, joules.
    pub useful_energy_j: f64,
    /// Energy drawn by dropped clients, joules (wasted).
    pub wasted_energy_j: f64,
    /// Completed client-rounds.
    pub completions: u64,
    /// Dropped client-rounds.
    pub dropouts: u64,
    /// Dropped client-rounds whose update reached the server but was
    /// quarantined by payload validation (non-finite deltas). Always a
    /// subset of `dropouts`.
    #[serde(default)]
    pub quarantined: u64,
}

impl LedgerTotals {
    /// Total compute hours (useful + wasted).
    pub fn total_compute_h(&self) -> f64 {
        self.useful_compute_h + self.wasted_compute_h
    }

    /// Total communication hours (useful + wasted).
    pub fn total_comm_h(&self) -> f64 {
        self.useful_comm_h + self.wasted_comm_h
    }

    /// Total memory terabytes (useful + wasted).
    pub fn total_memory_tb(&self) -> f64 {
        self.useful_memory_tb + self.wasted_memory_tb
    }

    /// Fraction of compute hours that were wasted.
    pub fn compute_waste_fraction(&self) -> f64 {
        let t = self.total_compute_h();
        if t == 0.0 {
            0.0
        } else {
            self.wasted_compute_h / t
        }
    }

    /// Whether every total is finite and non-negative and the quarantine
    /// count stays within the dropout count — the physicality invariant
    /// chaos runs and property tests assert.
    #[must_use = "is_physical reports an invariant check; ignoring it hides ledger corruption"]
    pub fn is_physical(&self) -> bool {
        [
            self.useful_compute_h,
            self.useful_comm_h,
            self.useful_memory_tb,
            self.wasted_compute_h,
            self.wasted_comm_h,
            self.wasted_memory_tb,
            self.useful_energy_j,
            self.wasted_energy_j,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
            && self.quarantined <= self.dropouts
    }
}

/// Mutable accumulator over client-round outcomes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResourceLedger {
    totals: LedgerTotals,
}

impl ResourceLedger {
    /// Fresh empty ledger.
    pub fn new() -> Self {
        ResourceLedger::default()
    }

    /// Record one client-round outcome.
    pub fn record(&mut self, outcome: &ClientRoundOutcome) {
        let compute_h = outcome.train_s / 3600.0;
        let comm_h = (outcome.download_s + outcome.upload_s) / 3600.0;
        let memory_tb = outcome.memory_bytes / 1e12;
        if outcome.completed() {
            self.totals.useful_compute_h += compute_h;
            self.totals.useful_comm_h += comm_h;
            self.totals.useful_memory_tb += memory_tb;
            self.totals.useful_energy_j += outcome.energy_j;
            self.totals.completions += 1;
        } else {
            self.totals.wasted_compute_h += compute_h;
            self.totals.wasted_comm_h += comm_h;
            self.totals.wasted_memory_tb += memory_tb;
            self.totals.wasted_energy_j += outcome.energy_j;
            self.totals.dropouts += 1;
            if outcome.dropped == Some(crate::round::DropReason::Quarantined) {
                self.totals.quarantined += 1;
            }
        }
    }

    /// Current totals.
    pub fn totals(&self) -> LedgerTotals {
        self.totals
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &ResourceLedger) {
        let o = other.totals;
        let t = &mut self.totals;
        t.useful_compute_h += o.useful_compute_h;
        t.useful_comm_h += o.useful_comm_h;
        t.useful_memory_tb += o.useful_memory_tb;
        t.wasted_compute_h += o.wasted_compute_h;
        t.wasted_comm_h += o.wasted_comm_h;
        t.wasted_memory_tb += o.wasted_memory_tb;
        t.useful_energy_j += o.useful_energy_j;
        t.wasted_energy_j += o.wasted_energy_j;
        t.completions += o.completions;
        t.dropouts += o.dropouts;
        t.quarantined += o.quarantined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::DropReason;

    fn outcome(completed: bool, train_s: f64, comm_s: f64, mem: f64) -> ClientRoundOutcome {
        ClientRoundOutcome {
            dropped: if completed {
                None
            } else {
                Some(DropReason::DeadlineMiss)
            },
            download_s: comm_s / 2.0,
            train_s,
            upload_s: comm_s / 2.0,
            memory_bytes: mem,
            energy_j: 5.0,
            deadline_overrun: 0.0,
        }
    }

    #[test]
    fn useful_and_wasted_split() {
        let mut l = ResourceLedger::new();
        l.record(&outcome(true, 3600.0, 1800.0, 1e12));
        l.record(&outcome(false, 7200.0, 3600.0, 2e12));
        let t = l.totals();
        assert!((t.useful_compute_h - 1.0).abs() < 1e-9);
        assert!((t.wasted_compute_h - 2.0).abs() < 1e-9);
        assert!((t.useful_comm_h - 0.5).abs() < 1e-9);
        assert!((t.wasted_memory_tb - 2.0).abs() < 1e-9);
        assert_eq!(t.completions, 1);
        assert_eq!(t.dropouts, 1);
    }

    #[test]
    fn waste_fraction() {
        let mut l = ResourceLedger::new();
        l.record(&outcome(true, 3600.0, 0.0, 0.0));
        l.record(&outcome(false, 3600.0, 0.0, 0.0));
        assert!((l.totals().compute_waste_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_has_zero_fractions() {
        let l = ResourceLedger::new();
        assert_eq!(l.totals().compute_waste_fraction(), 0.0);
        assert_eq!(l.totals().total_compute_h(), 0.0);
    }

    #[test]
    fn quarantined_outcomes_are_counted_as_dropouts_and_quarantines() {
        let mut l = ResourceLedger::new();
        let mut o = outcome(false, 100.0, 50.0, 1e9);
        o.dropped = Some(DropReason::Quarantined);
        l.record(&o);
        l.record(&outcome(false, 100.0, 50.0, 1e9)); // plain deadline miss
        let t = l.totals();
        assert_eq!(t.dropouts, 2);
        assert_eq!(t.quarantined, 1);
        assert!(t.is_physical());
    }

    #[test]
    fn merge_carries_quarantine_counts() {
        let mut a = ResourceLedger::new();
        let mut b = ResourceLedger::new();
        let mut o = outcome(false, 1.0, 1.0, 1.0);
        o.dropped = Some(DropReason::Quarantined);
        a.record(&o);
        b.record(&o);
        a.merge(&b);
        assert_eq!(a.totals().quarantined, 2);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ResourceLedger::new();
        a.record(&outcome(true, 3600.0, 3600.0, 1e12));
        let mut b = ResourceLedger::new();
        b.record(&outcome(false, 3600.0, 3600.0, 1e12));
        a.merge(&b);
        let t = a.totals();
        assert_eq!(t.completions, 1);
        assert_eq!(t.dropouts, 1);
        assert!((t.total_compute_h() - 2.0).abs() < 1e-9);
    }
}
