//! Deterministic fault injection: seeded schedules of adversarial
//! per-client round perturbations.
//!
//! FLOAT's pitch is surviving hostile client conditions, yet a benign
//! simulator only ever exercises the deadline-miss path. This module adds
//! the failure modes real FL deployments see — mid-round crashes, network
//! stalls past the server timeout, duplicate update delivery, and corrupt
//! (non-finite) payloads — as a *deterministic* schedule: whether a fault
//! hits client `c` in round `r` is a pure function of `(seed, r, c,
//! attempt)`, drawn through the same [`split_seed`] stream discipline as
//! every other stochastic subsystem. That purity is what lets the runtime
//! keep its bit-identical-across-thread-counts guarantee with faults
//! enabled, and what makes every chaos run reproducible from its seed.

use rand::Rng;
use serde::{Deserialize, Serialize};

use float_tensor::rng::{seed_rng, split_seed};

use crate::round::{ClientRoundOutcome, DropReason, RoundParams};

/// Stream tag separating fault draws from every other consumer of the
/// experiment seed.
const FAULT_STREAM: u64 = 0xFA17;

/// How far past the deadline a stalled upload runs, as a fraction of the
/// deadline. The server notices the stall only when the timeout fires, so
/// the stalled client burns at least this much extra wall time.
const STALL_OVERRUN: f64 = 0.25;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device dies mid-round after completing its work locally; the
    /// update never leaves the device.
    MidRoundCrash,
    /// The upload stalls past the server's deadline. Unlike a crash the
    /// client is still alive, so the sync engine may retry it (bounded,
    /// with backoff).
    NetworkStall,
    /// The update arrives twice (an at-least-once transport retransmits).
    /// The payload is valid; the server must not double-count it.
    DuplicateDelivery,
    /// The payload arrives corrupted: the delta carries non-finite values
    /// (NaN / ±Inf). Server-side validation must quarantine it before it
    /// poisons the global model.
    CorruptPayload,
}

impl FaultKind {
    /// Stable display name, used by telemetry events and digests.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MidRoundCrash => "mid-round-crash",
            FaultKind::NetworkStall => "network-stall",
            FaultKind::DuplicateDelivery => "duplicate-delivery",
            FaultKind::CorruptPayload => "corrupt-payload",
        }
    }

    /// Whether this fault perturbs the wire payload (handled by the
    /// runtime) rather than the round outcome (handled by
    /// [`apply_outcome_fault`]).
    pub fn affects_payload(self) -> bool {
        matches!(
            self,
            FaultKind::DuplicateDelivery | FaultKind::CorruptPayload
        )
    }
}

/// A seeded, deterministic fault schedule.
///
/// Each rate is the per-client-round probability of that fault firing;
/// the four rates partition the unit interval, so their sum must not
/// exceed 1 and at most one fault hits a given `(round, client, attempt)`.
/// An all-zero plan (the [`Default`]) injects nothing and costs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability of a mid-round crash per client-round.
    pub crash_rate: f64,
    /// Probability of a network stall per client-round.
    pub stall_rate: f64,
    /// Probability of a duplicate delivery per client-round.
    pub duplicate_rate: f64,
    /// Probability of a corrupt (non-finite) payload per client-round.
    pub corrupt_rate: f64,
    /// How many times the sync engine re-requests a stalled upload before
    /// giving up on the client for the round (0 disables retries).
    pub stall_max_retries: u32,
    /// Wall-clock backoff the server waits before each stall retry,
    /// seconds (added to the round's wall time per retry).
    pub stall_backoff_s: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, no retries. Identical to `Default`.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A hostile-but-plausible chaos preset: every fault kind active at a
    /// few percent per client-round, with two bounded stall retries.
    pub fn chaos() -> Self {
        FaultPlan {
            crash_rate: 0.05,
            stall_rate: 0.05,
            duplicate_rate: 0.05,
            corrupt_rate: 0.05,
            stall_max_retries: 2,
            stall_backoff_s: 30.0,
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.crash_rate == 0.0
            && self.stall_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.corrupt_rate == 0.0
    }

    /// Validate the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: every rate
    /// must be a finite probability, the rates must sum to at most 1, and
    /// the backoff must be finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("crash_rate", self.crash_rate),
            ("stall_rate", self.stall_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("corrupt_rate", self.corrupt_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault {name} {rate} must be in [0, 1]"));
            }
        }
        let sum = self.crash_rate + self.stall_rate + self.duplicate_rate + self.corrupt_rate;
        if sum > 1.0 + 1e-12 {
            return Err(format!("fault rates sum to {sum} > 1"));
        }
        if !self.stall_backoff_s.is_finite() || self.stall_backoff_s < 0.0 {
            return Err(format!(
                "stall_backoff_s {} must be finite and non-negative",
                self.stall_backoff_s
            ));
        }
        Ok(())
    }

    /// The fault (if any) scheduled for `(round, client, attempt)` under
    /// experiment `seed`.
    ///
    /// A pure function: no state is consumed, so the draw is identical no
    /// matter which worker thread asks, in what order, or how many times —
    /// the property the parallel-determinism tests pin down. `attempt`
    /// distinguishes stall retries, so a retried upload faces fresh
    /// (deterministic) fault risk rather than replaying the stall forever.
    pub fn draw(&self, seed: u64, round: u64, client: u64, attempt: u32) -> Option<FaultKind> {
        if self.is_empty() {
            return None;
        }
        let s = split_seed(
            split_seed(seed, FAULT_STREAM.wrapping_add(round)),
            (client << 8) | u64::from(attempt),
        );
        let x: f64 = seed_rng(s).gen();
        let mut edge = self.crash_rate;
        if x < edge {
            return Some(FaultKind::MidRoundCrash);
        }
        edge += self.stall_rate;
        if x < edge {
            return Some(FaultKind::NetworkStall);
        }
        edge += self.duplicate_rate;
        if x < edge {
            return Some(FaultKind::DuplicateDelivery);
        }
        edge += self.corrupt_rate;
        if x < edge {
            return Some(FaultKind::CorruptPayload);
        }
        None
    }
}

/// Apply an outcome-level fault to a client round.
///
/// Only *completed* outcomes are perturbed: a client that already dropped
/// (unavailable, out of memory, deadline miss, stochastic failure)
/// produced no payload for the fault to hit, so the injection is a no-op.
/// Payload-level faults ([`FaultKind::affects_payload`]) leave the outcome
/// untouched here — the runtime corrupts or duplicates the wire payload
/// itself.
pub fn apply_outcome_fault(
    outcome: &mut ClientRoundOutcome,
    kind: FaultKind,
    params: &RoundParams,
) {
    if !outcome.completed() {
        return;
    }
    match kind {
        FaultKind::MidRoundCrash => {
            // The work was done and the resources burned; the update is
            // simply gone.
            outcome.dropped = Some(DropReason::InjectedCrash);
        }
        FaultKind::NetworkStall => {
            // The upload hangs until the server timeout fires; the client
            // burns the whole stalled window.
            let stalled_total = params.deadline_s * (1.0 + STALL_OVERRUN);
            if outcome.total_s() < stalled_total {
                outcome.upload_s = stalled_total - outcome.download_s - outcome.train_s;
            }
            outcome.deadline_overrun = outcome.deadline_overrun.max(STALL_OVERRUN);
            outcome.dropped = Some(DropReason::NetworkStall);
        }
        FaultKind::DuplicateDelivery | FaultKind::CorruptPayload => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_names_are_unique() {
        let kinds = [
            FaultKind::MidRoundCrash,
            FaultKind::NetworkStall,
            FaultKind::DuplicateDelivery,
            FaultKind::CorruptPayload,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    fn completed_outcome() -> ClientRoundOutcome {
        ClientRoundOutcome {
            dropped: None,
            download_s: 10.0,
            train_s: 50.0,
            upload_s: 10.0,
            memory_bytes: 1e9,
            energy_j: 100.0,
            deadline_overrun: 0.0,
        }
    }

    fn params() -> RoundParams {
        RoundParams {
            deadline_s: 240.0,
            failure_hazard_per_s: 0.0,
        }
    }

    #[test]
    fn empty_plan_never_draws() {
        let p = FaultPlan::none();
        for round in 0..50u64 {
            for client in 0..20u64 {
                assert_eq!(p.draw(7, round, client, 0), None);
            }
        }
    }

    #[test]
    fn draw_is_pure_and_deterministic() {
        let p = FaultPlan::chaos();
        for round in 0..30u64 {
            for client in 0..10u64 {
                assert_eq!(p.draw(42, round, client, 0), p.draw(42, round, client, 0));
            }
        }
    }

    #[test]
    fn retry_attempts_draw_independently() {
        // A stalled first attempt must not deterministically stall every
        // retry: somewhere in a modest grid the draws must differ.
        let p = FaultPlan {
            stall_rate: 0.5,
            ..FaultPlan::none()
        };
        let differs = (0..100u64).any(|c| p.draw(1, 0, c, 0) != p.draw(1, 0, c, 1));
        assert!(differs, "attempt index never changed the draw");
    }

    #[test]
    fn rates_partition_roughly() {
        let p = FaultPlan {
            crash_rate: 0.25,
            stall_rate: 0.25,
            duplicate_rate: 0.25,
            corrupt_rate: 0.25,
            ..FaultPlan::none()
        };
        let mut counts = [0usize; 4];
        for c in 0..2000u64 {
            match p.draw(9, 0, c, 0) {
                Some(FaultKind::MidRoundCrash) => counts[0] += 1,
                Some(FaultKind::NetworkStall) => counts[1] += 1,
                Some(FaultKind::DuplicateDelivery) => counts[2] += 1,
                Some(FaultKind::CorruptPayload) => counts[3] += 1,
                None => {}
            }
        }
        for (i, &n) in counts.iter().enumerate() {
            assert!(
                (350..650).contains(&n),
                "kind {i} drawn {n}/2000 times, expected ~500"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = FaultPlan::chaos();
        assert!(p.validate().is_ok());
        p.crash_rate = 1.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::chaos();
        p.corrupt_rate = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = FaultPlan {
            crash_rate: 0.5,
            stall_rate: 0.6,
            ..FaultPlan::none()
        };
        assert!(p.validate().is_err(), "rates summing past 1 must fail");
        p = FaultPlan::chaos();
        p.stall_backoff_s = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn crash_drops_a_completed_outcome() {
        let mut o = completed_outcome();
        apply_outcome_fault(&mut o, FaultKind::MidRoundCrash, &params());
        assert_eq!(o.dropped, Some(DropReason::InjectedCrash));
        // Resources stay burned.
        assert!(o.energy_j > 0.0 && o.train_s > 0.0);
    }

    #[test]
    fn stall_overruns_the_deadline() {
        let mut o = completed_outcome();
        apply_outcome_fault(&mut o, FaultKind::NetworkStall, &params());
        assert_eq!(o.dropped, Some(DropReason::NetworkStall));
        assert!(o.total_s() >= params().deadline_s * (1.0 + STALL_OVERRUN) - 1e-9);
        assert!(o.deadline_overrun >= STALL_OVERRUN);
        assert!(o.total_s().is_finite());
    }

    #[test]
    fn payload_faults_leave_the_outcome_alone() {
        for kind in [FaultKind::DuplicateDelivery, FaultKind::CorruptPayload] {
            let mut o = completed_outcome();
            apply_outcome_fault(&mut o, kind, &params());
            assert_eq!(o, completed_outcome());
            assert!(kind.affects_payload());
        }
        assert!(!FaultKind::MidRoundCrash.affects_payload());
    }

    #[test]
    fn faults_never_touch_already_dropped_outcomes() {
        for kind in [
            FaultKind::MidRoundCrash,
            FaultKind::NetworkStall,
            FaultKind::DuplicateDelivery,
            FaultKind::CorruptPayload,
        ] {
            let mut o = completed_outcome();
            o.dropped = Some(DropReason::DeadlineMiss);
            let before = o;
            apply_outcome_fault(&mut o, kind, &params());
            assert_eq!(o, before);
        }
    }
}
