//! `float-sim` — the trace-driven FL resource simulator.
//!
//! This crate is the reproduction's stand-in for FedScale's simulation
//! layer: given a client's [`ResourceSnapshot`] for a round and the
//! [`RoundCost`] of its (possibly accelerated) local work, it computes
//! phase-by-phase latencies (download → train → upload), memory and energy
//! use, deadline violations, mid-round failures, and dropout outcomes.
//! A [`ResourceLedger`] accumulates the paper's resource-inefficiency
//! metrics — compute hours, communication hours, and memory terabytes
//! split into useful (completed round) and wasted (dropped client) work —
//! and a [`SimClock`] tracks virtual wall-clock time for synchronous and
//! asynchronous execution. A seeded [`FaultPlan`] deterministically
//! injects hostile failure modes — mid-round crashes, network stalls,
//! duplicate deliveries, corrupt payloads — on top of the benign model.
//!
//! [`ResourceSnapshot`]: float_traces::ResourceSnapshot
//! [`RoundCost`]: float_models::RoundCost

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fault;
pub mod ledger;
pub mod round;

pub use clock::SimClock;
pub use fault::{apply_outcome_fault, FaultKind, FaultPlan};
pub use ledger::{LedgerTotals, ResourceLedger};
pub use round::{
    estimate_round_time_s, execute_client_round, ClientRoundOutcome, DropReason, RoundParams,
};
