//! Property tests for the widened GEMM micro-kernels and the packed-panel
//! reuse cache.
//!
//! The contract under test: every dispatched tile shape (4×8, 8×8, 4×16,
//! 8×16) and every cached entry point produces results **bit-identical**
//! to the uncached narrow-tile kernel, for shapes straddling each MR/NR
//! tile boundary and the KC depth-panel boundary. Widening a register
//! tile only changes which output elements share a register block — never
//! the ascending reduction order of any single element — and a panel-cache
//! hit replays byte-identical packed operands, so any diff is a bug.

use float_tensor::kernels::{
    gemm_nn, gemm_nn_a_cached, gemm_nn_b_cached, gemm_nt, gemm_nt_b_cached, gemm_tn,
    gemm_tn_a_cached, PanelCache,
};
use float_tensor::Tensor;
use proptest::prelude::*;

/// Deterministic pseudo-random buffer (golden-ratio hash, same family the
/// unit tests use) so failures reproduce from the shape alone.
fn pseudo(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(salt.wrapping_mul(0xD1B54A32D192ED03));
            ((h >> 40) as f32 / 8388608.0) - 1.0
        })
        .collect()
}

/// Dimension values that straddle every micro-kernel boundary: below / at /
/// above MR (4) and the widened rows (8), below / at / above NR (8) and the
/// widened columns (16), plus multi-tile sizes.
fn boundary_dim() -> impl Strategy<Value = usize> {
    const DIMS: [usize; 12] = [1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33];
    (0..DIMS.len()).prop_map(|i| DIMS[i])
}

/// Depth values straddling the KC = 256 panel boundary.
fn depth_dim() -> impl Strategy<Value = usize> {
    const DEPTHS: [usize; 9] = [1, 2, 7, 8, 64, 255, 256, 257, 300];
    (0..DEPTHS.len()).prop_map(|i| DEPTHS[i])
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// N·N through the shape dispatcher == the tensor-level matmul (which
    /// exercises the same kernel through the public API), bit for bit.
    #[test]
    fn widened_nn_is_bitwise_stable_across_boundaries(
        m in boundary_dim(),
        n in boundary_dim(),
        k in depth_dim(),
        salt in 0u64..1024,
    ) {
        let a = pseudo(m * k, salt);
        let b = pseudo(k * n, salt + 1);
        let mut got = vec![f32::NAN; m * n];
        gemm_nn(m, k, n, &a, &b, &mut got);
        // Reference: ascending-p accumulation per KC panel — the pinned
        // summation order, independent of the dispatched tile.
        let mut want = vec![0.0f32; m * n];
        for pc in (0..k).step_by(256) {
            let kc = 256.min(k - pc);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in pc..pc + kc {
                        acc += a[i * k + p] * b[p * n + j];
                    }
                    want[i * n + j] += acc;
                }
            }
        }
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// Every cached entry point == its uncached twin bit for bit, on both
    /// the first call (miss → pack) and a replay (hit → cached panels).
    #[test]
    fn cached_entry_points_match_uncached_bitwise(
        m in boundary_dim(),
        n in boundary_dim(),
        k in depth_dim(),
        salt in 0u64..1024,
    ) {
        let a = pseudo(m * k, salt);
        let b = pseudo(k * n, salt + 1);
        let a_t = pseudo(k * m, salt + 2); // A stored [k×m] for T·N
        let b_t = pseudo(n * k, salt + 3); // B stored [n×k] for N·T
        let mut cache = PanelCache::new();
        let mut want = vec![0.0f32; m * n];
        let mut got = vec![0.0f32; m * n];
        for pass in 0..2 {
            gemm_nn(m, k, n, &a, &b, &mut want);
            gemm_nn_b_cached(m, k, n, &a, &b, 1, &mut got, &mut cache);
            prop_assert_eq!(bits(&got), bits(&want), "nn_b pass {}", pass);
            gemm_nn_a_cached(m, k, n, &a, 2, &b, &mut got, &mut cache);
            prop_assert_eq!(bits(&got), bits(&want), "nn_a pass {}", pass);
            gemm_nt(m, k, n, &a, &b_t, &mut want);
            gemm_nt_b_cached(m, k, n, &a, &b_t, 3, &mut got, &mut cache);
            prop_assert_eq!(bits(&got), bits(&want), "nt_b pass {}", pass);
            gemm_tn(m, k, n, &a_t, &b, &mut want);
            gemm_tn_a_cached(m, k, n, &a_t, 4, &b, &mut got, &mut cache);
            prop_assert_eq!(bits(&got), bits(&want), "tn_a pass {}", pass);
        }
        // Second sweep hit all four entries (no dimension is zero here).
        prop_assert_eq!(cache.hits(), 4);
        prop_assert_eq!(cache.misses(), 4);
    }

    /// Stamp discipline: replays hit, mutations (new stamps) miss and
    /// recompute correctly, and eviction pressure never corrupts results.
    #[test]
    fn cache_hits_misses_and_eviction_track_stamps(
        m in boundary_dim(),
        n in boundary_dim(),
        k in 1usize..32,
        generations in 1usize..20,
    ) {
        let a = pseudo(m * k, 7);
        let mut cache = PanelCache::new();
        for g in 0..generations as u64 {
            let b = pseudo(k * n, 100 + g);
            let mut want = vec![0.0f32; m * n];
            gemm_nn(m, k, n, &a, &b, &mut want);
            // First sight of stamp g: miss. Replay: hit.
            let mut got = vec![0.0f32; m * n];
            gemm_nn_b_cached(m, k, n, &a, &b, g, &mut got, &mut cache);
            prop_assert_eq!(bits(&got), bits(&want));
            let mut replay = vec![f32::NAN; m * n];
            gemm_nn_b_cached(m, k, n, &a, &b, g, &mut replay, &mut cache);
            prop_assert_eq!(bits(&replay), bits(&want));
        }
        prop_assert_eq!(cache.misses(), generations as u64);
        prop_assert_eq!(cache.hits(), generations as u64);
    }

    /// The tensor-level cached matmuls agree with their uncached twins for
    /// arbitrary (mutating) weight histories.
    #[test]
    fn tensor_cached_matmuls_survive_weight_mutation(
        rows in boundary_dim(),
        inner in boundary_dim(),
        cols in boundary_dim(),
        steps in 1usize..6,
    ) {
        let x = Tensor::from_vec(rows, inner, pseudo(rows * inner, 11)).unwrap();
        let mut w = Tensor::from_vec(inner, cols, pseudo(inner * cols, 12)).unwrap();
        let mut cache = PanelCache::new();
        let mut cached = Tensor::default();
        let mut plain = Tensor::default();
        for s in 0..steps {
            x.matmul_into_cached(&w, &mut cached, &mut cache).unwrap();
            x.matmul_into(&w, &mut plain).unwrap();
            prop_assert_eq!(bits(cached.data()), bits(plain.data()), "step {}", s);
            // Mutate the weight: the stamp must invalidate the entry.
            w.data_mut()[0] += 0.25;
        }
        // One miss per mutation — never a stale hit.
        prop_assert_eq!(cache.misses(), steps as u64);
    }
}
