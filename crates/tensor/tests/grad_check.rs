//! Finite-difference gradient checks for the im2col convolution path.
//!
//! The inline unit tests cover single layers; these checks drive the full
//! conv → max-pool → linear → softmax chain and compare every analytic
//! gradient surface (conv weights, conv bias, input pixels, pooled
//! routing) against central differences. Tolerances are relative: max
//! pooling is only piecewise linear, so a perturbation that flips an
//! argmax produces a legitimate (small) mismatch.

use float_tensor::loss::{cross_entropy_loss, softmax_cross_entropy};
use float_tensor::{seed_rng, Conv2d, FeatureShape, Linear, MaxPool2, Tensor};
use rand::Rng;

const EPS: f32 = 1e-2;
const REL_TOL: f32 = 0.05;

fn sample_input(shape: FeatureShape, n: usize, seed: u64) -> Tensor {
    let mut rng = seed_rng(seed);
    let data = (0..n * shape.len())
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    Tensor::from_vec(n, shape.len(), data).expect("sized by construction")
}

fn close(numeric: f32, analytic: f32, what: &str) {
    assert!(
        (numeric - analytic).abs() <= REL_TOL * numeric.abs().max(1.0),
        "{what}: numeric {numeric} vs analytic {analytic}"
    );
}

/// Mean cross-entropy of the conv → pool → linear chain, inference path.
fn chain_loss(conv: &Conv2d, pool: &mut MaxPool2, head: &Linear, x: &Tensor, ys: &[usize]) -> f32 {
    let h1 = conv.forward_inference(x).expect("conv input fits");
    let h2 = pool.forward(&h1).expect("pool input fits");
    let logits = head.forward_inference(&h2).expect("head input fits");
    cross_entropy_loss(&logits, ys).expect("labels in range")
}

#[test]
fn conv_chain_gradients_match_finite_differences() {
    let shape = FeatureShape::new(2, 4, 4);
    let mut conv = Conv2d::new(shape, 3, 3, 17);
    let mut pool = MaxPool2::new(conv.output_shape());
    let mut head = Linear::new(pool.output_shape().len(), 4, 19);
    let mut x = sample_input(shape, 3, 23);
    let ys = [0usize, 2, 3];

    // Analytic pass through the training path (im2col forward + GEMM
    // backward).
    let h1 = conv.forward(&x).expect("conv input fits");
    let h2 = pool.forward(&h1).expect("pool input fits");
    let logits = head.forward(&h2).expect("head input fits");
    let (_, grad) = softmax_cross_entropy(&logits, &ys).expect("labels in range");
    let g2 = head.backward(&grad).expect("after forward");
    let g1 = pool.backward(&g2).expect("after forward");
    let grad_in = conv.backward(&g1).expect("after forward");

    // Conv weight gradients, sampled across channels and taps.
    for &(r, c) in &[(0usize, 0usize), (1, 5), (2, 17), (0, 9), (2, 0)] {
        let base = conv.weight.at(r, c);
        conv.weight.set(r, c, base + EPS);
        let up = chain_loss(&conv, &mut pool, &head, &x, &ys);
        conv.weight.set(r, c, base - EPS);
        let down = chain_loss(&conv, &mut pool, &head, &x, &ys);
        conv.weight.set(r, c, base);
        close(
            (up - down) / (2.0 * EPS),
            conv.grad_weight.at(r, c),
            &format!("conv weight [{r},{c}]"),
        );
    }

    // Conv bias gradients — the im2col path adds bias after the GEMM.
    for oc in 0..3 {
        let base = conv.bias.at(0, oc);
        conv.bias.set(0, oc, base + EPS);
        let up = chain_loss(&conv, &mut pool, &head, &x, &ys);
        conv.bias.set(0, oc, base - EPS);
        let down = chain_loss(&conv, &mut pool, &head, &x, &ys);
        conv.bias.set(0, oc, base);
        close(
            (up - down) / (2.0 * EPS),
            conv.grad_bias.at(0, oc),
            &format!("conv bias [{oc}]"),
        );
    }

    // Input gradients through conv, pooling's argmax routing, and the
    // head — exercises col2im end to end.
    for i in [0usize, 7, 13, 21, 30, shape.len() * 3 - 1] {
        let base = x.data()[i];
        x.data_mut()[i] = base + EPS;
        let up = chain_loss(&conv, &mut pool, &head, &x, &ys);
        x.data_mut()[i] = base - EPS;
        let down = chain_loss(&conv, &mut pool, &head, &x, &ys);
        x.data_mut()[i] = base;
        close(
            (up - down) / (2.0 * EPS),
            grad_in.data()[i],
            &format!("input [{i}]"),
        );
    }
}

#[test]
fn maxpool_backward_matches_finite_differences() {
    let shape = FeatureShape::new(2, 4, 4);
    let mut pool = MaxPool2::new(shape);
    let mut x = sample_input(shape, 2, 31);
    // Loss = Σ w_o · pool(x)_o with fixed random weights, so the analytic
    // input gradient is pool.backward(w).
    let w = sample_input(pool.output_shape(), 2, 37);
    let loss = |pool: &mut MaxPool2, x: &Tensor| -> f32 {
        let y = pool.forward(x).expect("pool input fits");
        y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
    };
    let _ = pool.forward(&x).expect("pool input fits");
    let grad_in = pool.backward(&w).expect("after forward");
    for i in [0usize, 3, 11, 19, 27, shape.len() * 2 - 1] {
        let base = x.data()[i];
        x.data_mut()[i] = base + EPS;
        let up = loss(&mut pool, &x);
        x.data_mut()[i] = base - EPS;
        let down = loss(&mut pool, &x);
        x.data_mut()[i] = base;
        close(
            (up - down) / (2.0 * EPS),
            grad_in.data()[i],
            &format!("pool input [{i}]"),
        );
    }
}

#[test]
fn one_by_one_kernel_gradients_match() {
    // kernel = 1 degenerates im2col to a copy; the GEMM backward must
    // still agree with finite differences.
    let shape = FeatureShape::new(3, 2, 2);
    let mut conv = Conv2d::new(shape, 2, 1, 41);
    let x = sample_input(shape, 2, 43);
    let y = conv.forward(&x).expect("conv input fits");
    let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]).expect("sized");
    let _ = conv.backward(&ones).expect("after forward");
    let loss = |c: &Conv2d| -> f32 {
        c.forward_inference(&x)
            .expect("conv input fits")
            .data()
            .iter()
            .sum()
    };
    for &(r, c) in &[(0usize, 0usize), (1, 2), (0, 1)] {
        let base = conv.weight.at(r, c);
        conv.weight.set(r, c, base + EPS);
        let up = loss(&conv);
        conv.weight.set(r, c, base - EPS);
        let down = loss(&conv);
        conv.weight.set(r, c, base);
        close(
            (up - down) / (2.0 * EPS),
            conv.grad_weight.at(r, c),
            &format!("1x1 weight [{r},{c}]"),
        );
    }
}
