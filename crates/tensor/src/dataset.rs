//! In-memory supervised classification datasets.

use crate::{Tensor, TensorError};

/// A dense classification dataset: `features` is `[n, d]`, `labels[i]` is
/// the class index of row `i`, and `num_classes` bounds the label range.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset from per-sample rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] when rows are empty, row widths
    /// disagree, row/label counts disagree, or a label is `>= num_classes`.
    pub fn from_rows(
        rows: &[Vec<f32>],
        labels: &[usize],
        num_classes: usize,
    ) -> Result<Self, TensorError> {
        if rows.is_empty() {
            return Err(TensorError::InvalidData("empty dataset".into()));
        }
        if rows.len() != labels.len() {
            return Err(TensorError::InvalidData(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let d = rows[0].len();
        if d == 0 {
            return Err(TensorError::InvalidData("zero-width rows".into()));
        }
        let mut flat = Vec::with_capacity(rows.len() * d);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                return Err(TensorError::InvalidData(format!(
                    "row {i} has width {} but row 0 has width {d}",
                    row.len()
                )));
            }
            flat.extend_from_slice(row);
        }
        for (i, &y) in labels.iter().enumerate() {
            if y >= num_classes {
                return Err(TensorError::InvalidData(format!(
                    "label {y} at index {i} out of range for {num_classes} classes"
                )));
            }
        }
        Ok(Dataset {
            features: Tensor::from_vec(rows.len(), d, flat)?,
            labels: labels.to_vec(),
            num_classes,
        })
    }

    /// Build a dataset directly from a feature tensor and labels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] on count or label-range
    /// mismatches.
    pub fn new(
        features: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, TensorError> {
        if features.rows() != labels.len() {
            return Err(TensorError::InvalidData(format!(
                "{} feature rows but {} labels",
                features.rows(),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= num_classes) {
            return Err(TensorError::InvalidData(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Extract the sub-dataset at `indices` (used for minibatching and for
    /// building per-client shards).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let d = self.dim();
        let mut flat = Vec::with_capacity(indices.len() * d);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            flat.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            features: Tensor::from_vec(indices.len(), d, flat)
                .expect("subset buffer length is indices.len() * d by construction"),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Gather the rows at `indices` into caller scratch (`features` is
    /// resized to `[indices.len(), dim]`, `labels` cleared and refilled) —
    /// the allocation-free counterpart of [`Dataset::subset`] used for
    /// minibatching in the training hot path.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_into(&self, indices: &[usize], features: &mut Tensor, labels: &mut Vec<usize>) {
        let d = self.dim();
        features.resize(indices.len(), d);
        labels.clear();
        for (dst, &i) in features.data_mut().chunks_exact_mut(d).zip(indices) {
            dst.copy_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
    }

    /// Histogram of label counts, length `num_classes`.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &y in &self.labels {
            h[y] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_rows(
            &[vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]],
            &[0, 1, 0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.label_histogram(), vec![2, 1]);
    }

    #[test]
    fn subset_selects_rows() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 0]);
        assert_eq!(s.features().row(0), &[0.5, 0.5]);
    }

    #[test]
    fn rejects_label_out_of_range() {
        let err = Dataset::from_rows(&[vec![0.0]], &[3], 2).unwrap_err();
        assert!(matches!(err, TensorError::InvalidData(_)));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(&[vec![0.0], vec![0.0, 1.0]], &[0, 1], 2).unwrap_err();
        assert!(matches!(err, TensorError::InvalidData(_)));
    }

    #[test]
    fn rejects_count_mismatch() {
        let err = Dataset::from_rows(&[vec![0.0]], &[0, 1], 2).unwrap_err();
        assert!(matches!(err, TensorError::InvalidData(_)));
    }
}
