//! Neural network layers with manual forward/backward passes.

use rand::Rng;

use crate::rng::seed_rng;
use crate::{Tensor, TensorError};

/// A fully connected layer `y = x · W + b` with cached activations for
/// backpropagation.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `[in, out]`.
    pub weight: Tensor,
    /// Bias row, `[1, out]`.
    pub bias: Tensor,
    /// Gradient of the loss w.r.t. `weight`, populated by [`Linear::backward`].
    pub grad_weight: Tensor,
    /// Gradient of the loss w.r.t. `bias`, populated by [`Linear::backward`].
    pub grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Create a layer with He-uniform initialized weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = seed_rng(seed);
        let bound = (6.0f32 / in_dim as f32).sqrt();
        let data = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Linear {
            weight: Tensor::from_vec(in_dim, out_dim, data)
                .expect("init buffer length is in_dim * out_dim by construction"),
            bias: Tensor::zeros(1, out_dim),
            grad_weight: Tensor::zeros(in_dim, out_dim),
            grad_bias: Tensor::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass; caches the input for the subsequent backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` is not `[*, in_dim]`.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        let mut y = x.matmul(&self.weight)?;
        y.add_row_broadcast(&self.bias)?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Inference-only forward pass (no caching).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` is not `[*, in_dim]`.
    pub fn forward_inference(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let mut y = x.matmul(&self.weight)?;
        y.add_row_broadcast(&self.bias)?;
        Ok(y)
    }

    /// Matmul-only forward into caller scratch: `out = x · W`, no bias, no
    /// caching. The hot path ([`crate::Mlp`]) fuses the bias add with the
    /// following ReLU and keeps the activation as the backward-pass input
    /// itself, so the layer never clones `x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` is not `[*, in_dim]`.
    pub fn forward_matmul_into(&self, x: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
        x.matmul_into(&self.weight, out)
    }

    /// [`Linear::forward_matmul_into`] with the weight's packed panels
    /// memoized in `cache` (bitwise-identical results; skips re-packing
    /// when the weight is unchanged since the last call).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` is not `[*, in_dim]`.
    pub fn forward_matmul_into_cached(
        &self,
        x: &Tensor,
        out: &mut Tensor,
        cache: &mut crate::kernels::PanelCache,
    ) -> Result<(), TensorError> {
        x.matmul_into_cached(&self.weight, out, cache)
    }

    /// Fill `grad_weight` / `grad_bias` from an explicit forward input
    /// (instead of the cached clone), writing the input gradient into
    /// `grad_in`. Allocation-free once the gradient tensors have capacity.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` / `grad_out` disagree with the layer.
    pub fn backward_into(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
    ) -> Result<(), TensorError> {
        x.t_matmul_into(grad_out, &mut self.grad_weight)?;
        grad_out.sum_rows_into(&mut self.grad_bias);
        grad_out.matmul_t_into(&self.weight, grad_in)
    }

    /// [`Linear::backward_into`] with the weight's transposed-view packed
    /// panels memoized in `cache`. Only the input-gradient product
    /// (`grad_out · Wᵀ`) reuses a stable operand; the weight- and
    /// bias-gradient products take fresh activations every call, so they
    /// stay uncached.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` / `grad_out` disagree with the layer.
    pub fn backward_into_cached(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        cache: &mut crate::kernels::PanelCache,
    ) -> Result<(), TensorError> {
        x.t_matmul_into(grad_out, &mut self.grad_weight)?;
        grad_out.sum_rows_into(&mut self.grad_bias);
        grad_out.matmul_t_into_cached(&self.weight, grad_in, cache)
    }

    /// [`Linear::backward_into`] without the input gradient — the first
    /// layer of a network has no upstream consumer, so the `matmul_t` is
    /// pure waste there.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` / `grad_out` disagree with the layer.
    pub fn backward_params_only(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<(), TensorError> {
        x.t_matmul_into(grad_out, &mut self.grad_weight)?;
        grad_out.sum_rows_into(&mut self.grad_bias);
        Ok(())
    }

    /// Backward pass: consumes the cached input, fills `grad_weight` /
    /// `grad_bias`, and returns the gradient w.r.t. the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] if called before `forward`, or a
    /// shape error if `grad_out` does not match the forward output shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let x = self
            .cached_input
            .take()
            .ok_or_else(|| TensorError::InvalidData("backward before forward".into()))?;
        let mut grad_in = Tensor::default();
        self.backward_into(&x, grad_out, &mut grad_in)?;
        Ok(grad_in)
    }
}

/// ReLU activation with a cached mask for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Create a fresh ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }

    /// Forward pass; remembers which activations were positive.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        for v in y.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    /// Inference-only forward pass.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    /// Fused bias-add + ReLU forward, in place: `y = max(y + bias, 0)`,
    /// recording the positive mask for [`Relu::backward_in_place`]. One
    /// pass over the activation buffer instead of the separate
    /// broadcast-add and clamp the unfused path performs.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias` is not
    /// `[1, y.cols()]`.
    pub fn forward_fused_bias(&mut self, y: &mut Tensor, bias: &Tensor) -> Result<(), TensorError> {
        if bias.rows() != 1 || bias.cols() != y.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "bias_relu",
                lhs: vec![y.rows(), y.cols()],
                rhs: vec![bias.rows(), bias.cols()],
            });
        }
        let (rows, cols) = (y.rows(), y.cols());
        crate::kernels::bias_relu_forward(y.data_mut(), rows, cols, bias.data(), &mut self.mask);
        Ok(())
    }

    /// Backward pass: zero the gradient where the forward input was
    /// non-positive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] if the gradient size does not
    /// match the cached mask (i.e. `forward` was not called with a matching
    /// batch).
    pub fn backward(&self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let mut g = grad_out.clone();
        self.backward_in_place(&mut g)?;
        Ok(g)
    }

    /// [`Relu::backward`] applied in place to caller scratch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] on a mask/gradient size
    /// mismatch.
    pub fn backward_in_place(&self, grad: &mut Tensor) -> Result<(), TensorError> {
        if grad.len() != self.mask.len() {
            return Err(TensorError::InvalidData(
                "relu backward called with mismatched batch".into(),
            ));
        }
        crate::kernels::relu_mask_backward(grad.data_mut(), &self.mask);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_shapes() {
        let mut l = Linear::new(3, 2, 1);
        let x = Tensor::zeros(4, 3);
        let y = l.forward(&x).unwrap();
        assert_eq!((y.rows(), y.cols()), (4, 2));
    }

    #[test]
    fn linear_backward_requires_forward() {
        let mut l = Linear::new(2, 2, 1);
        let g = Tensor::zeros(1, 2);
        assert!(l.backward(&g).is_err());
    }

    #[test]
    fn linear_gradient_check() {
        // Finite-difference check on a single weight.
        let mut l = Linear::new(2, 2, 3);
        let x = Tensor::from_vec(1, 2, vec![0.3, -0.7]).unwrap();
        // Loss = sum(y). dL/dy = ones.
        let loss =
            |l: &Linear, x: &Tensor| -> f32 { l.forward_inference(x).unwrap().data().iter().sum() };
        let eps = 1e-3;
        let base_w = l.weight.at(0, 1);
        l.weight.set(0, 1, base_w + eps);
        let up = loss(&l, &x);
        l.weight.set(0, 1, base_w - eps);
        let down = loss(&l, &x);
        l.weight.set(0, 1, base_w);
        let numeric = (up - down) / (2.0 * eps);

        let y = l.forward(&x).unwrap();
        let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]).unwrap();
        l.backward(&ones).unwrap();
        let analytic = l.grad_weight.at(0, 1);
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn relu_zeroes_negatives_and_gradients() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(1, 4, vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor::from_vec(1, 4, vec![1.0; 4]).unwrap();
        let gx = r.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_backward_mismatch_is_error() {
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::zeros(1, 2));
        assert!(r.backward(&Tensor::zeros(1, 3)).is_err());
    }
}
