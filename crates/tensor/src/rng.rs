//! Deterministic random-number helpers.
//!
//! Every stochastic component in the reproduction takes an explicit `u64`
//! seed. This module centralizes the construction of seeded generators and
//! a cheap seed-splitting scheme so that independent subsystems (data
//! generation, client traces, RL exploration, …) draw from decorrelated
//! streams derived from a single experiment seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct a deterministic [`StdRng`] from a `u64` seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = float_tensor::seed_rng(7);
/// let mut b = float_tensor::seed_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seed_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a decorrelated child seed from `(seed, stream)`.
///
/// Uses the SplitMix64 finalizer, which is a bijection on `u64` with good
/// avalanche properties; distinct `(seed, stream)` pairs yield child seeds
/// that behave as independent streams for simulation purposes.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seed_rng_is_deterministic() {
        let xs: Vec<u32> = {
            let mut r = seed_rng(99);
            (0..8).map(|_| r.gen()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = seed_rng(99);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn split_seed_distinct_streams_differ() {
        let a = split_seed(1, 0);
        let b = split_seed(1, 1);
        let c = split_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn split_seed_is_pure() {
        assert_eq!(split_seed(123, 45), split_seed(123, 45));
    }
}
