//! Softmax cross-entropy loss and evaluation metrics.

use crate::{Tensor, TensorError};

/// Result of evaluating a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// Numerically stable softmax cross-entropy.
///
/// Returns `(mean_loss, grad_logits)` where `grad_logits` is the gradient of
/// the *mean* loss w.r.t. the logits (i.e. already divided by batch size).
///
/// # Errors
///
/// Returns [`TensorError::InvalidData`] if `labels.len() != logits.rows()`
/// or any label is out of range for the logit width.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), TensorError> {
    let mut grad = Tensor::default();
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad)?;
    Ok((loss, grad))
}

/// [`softmax_cross_entropy`] writing the gradient into caller scratch
/// (resized as needed); returns the mean loss. Allocation-free once `grad`
/// has capacity.
///
/// # Errors
///
/// Returns [`TensorError::InvalidData`] if `labels.len() != logits.rows()`
/// or any label is out of range for the logit width.
pub fn softmax_cross_entropy_into(
    logits: &Tensor,
    labels: &[usize],
    grad: &mut Tensor,
) -> Result<f32, TensorError> {
    let (n, c) = (logits.rows(), logits.cols());
    if labels.len() != n {
        return Err(TensorError::InvalidData(format!(
            "{} labels for {} logit rows",
            labels.len(),
            n
        )));
    }
    grad.resize(n, c);
    let mut total = 0.0f64;
    for (i, &y) in labels.iter().enumerate().take(n) {
        if y >= c {
            return Err(TensorError::InvalidData(format!(
                "label {y} out of range for {c} classes"
            )));
        }
        let row = logits.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        // Stage the exponentials in the gradient row so the second pass
        // reuses them instead of recomputing each `exp` — same values in
        // the same order, so the result is bit-identical.
        let grow = &mut grad.data_mut()[i * c..(i + 1) * c];
        let mut denom = 0.0f32;
        for (g, &v) in grow.iter_mut().zip(row) {
            let e = (v - max).exp();
            *g = e;
            denom += e;
        }
        let log_denom = denom.ln();
        total += f64::from(log_denom - (row[y] - max));
        for (j, g) in grow.iter_mut().enumerate() {
            let p = *g / denom;
            *g = (p - if j == y { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok(total as f32 / n as f32)
}

/// Mean softmax cross-entropy loss without computing the gradient (the
/// evaluation path needs only the scalar).
///
/// # Errors
///
/// Returns [`TensorError::InvalidData`] under the same conditions as
/// [`softmax_cross_entropy`].
pub fn cross_entropy_loss(logits: &Tensor, labels: &[usize]) -> Result<f32, TensorError> {
    let (n, c) = (logits.rows(), logits.cols());
    if labels.len() != n {
        return Err(TensorError::InvalidData(format!(
            "{} labels for {} logit rows",
            labels.len(),
            n
        )));
    }
    let mut total = 0.0f64;
    for (i, &y) in labels.iter().enumerate().take(n) {
        if y >= c {
            return Err(TensorError::InvalidData(format!(
                "label {y} out of range for {c} classes"
            )));
        }
        let row = logits.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        total += f64::from(denom.ln() - (row[y] - max));
    }
    Ok(total as f32 / n as f32)
}

/// Top-1 accuracy of `logits` against `labels`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(labels.len(), logits.rows(), "label/logit count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    // Inline argmax (same tie-breaking as `Tensor::argmax_rows`: first
    // maximum wins) so the hot evaluation path allocates nothing.
    let mut correct = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        let row = logits.row(r);
        let mut best = (0usize, f32::NEG_INFINITY);
        for (j, &v) in row.iter().enumerate() {
            if v > best.1 {
                best = (j, v);
            }
        }
        if best.0 == y {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_logits_have_low_loss() {
        let logits = Tensor::from_vec(2, 2, vec![10.0, -10.0, -10.0, 10.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3, "loss was {loss}");
    }

    #[test]
    fn uniform_logits_loss_is_ln_c() {
        let logits = Tensor::zeros(4, 8);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(2, 3, vec![0.5, -0.2, 1.0, 0.0, 0.0, 0.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sums to {s}");
        }
    }

    #[test]
    fn gradient_finite_difference() {
        let logits = Tensor::from_vec(1, 3, vec![0.2, -0.4, 0.9]).unwrap();
        let labels = [1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for j in 0..3 {
            let mut up = logits.clone();
            up.set(0, j, logits.at(0, j) + eps);
            let (lu, _) = softmax_cross_entropy(&up, &labels).unwrap();
            let mut dn = logits.clone();
            dn.set(0, j, logits.at(0, j) - eps);
            let (ld, _) = softmax_cross_entropy(&dn, &labels).unwrap();
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - grad.at(0, j)).abs() < 1e-3,
                "logit {j}: numeric {numeric} vs analytic {}",
                grad.at(0, j)
            );
        }
    }

    #[test]
    fn huge_logits_are_stable() {
        let logits = Tensor::from_vec(1, 2, vec![1e4, -1e4]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_out_of_range_label() {
        let logits = Tensor::zeros(1, 2);
        assert!(softmax_cross_entropy(&logits, &[5]).is_err());
    }
}
