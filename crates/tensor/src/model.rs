//! A multi-layer perceptron with flat-parameter access and training hooks
//! for FLOAT's acceleration techniques (pruning masks, frozen-parameter
//! partial training).

use rand::seq::SliceRandom;

use crate::layers::{Linear, Relu};
use crate::loss::{accuracy, cross_entropy_loss, softmax_cross_entropy_into, Evaluation};
use crate::optim::Sgd;
use crate::rng::{seed_rng, split_seed};
use crate::{Dataset, Tensor, TensorError};

/// Architecture of an [`Mlp`]: input width, hidden widths, output classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Width of each hidden layer, in order.
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl MlpConfig {
    /// Convenience constructor.
    pub fn new(input_dim: usize, hidden: &[usize], num_classes: usize) -> Self {
        MlpConfig {
            input_dim,
            hidden: hidden.to_vec(),
            num_classes,
        }
    }

    /// Total trainable parameter count for this architecture.
    pub fn num_params(&self) -> usize {
        let mut total = 0;
        let mut prev = self.input_dim;
        for &h in &self.hidden {
            total += prev * h + h;
            prev = h;
        }
        total + prev * self.num_classes + self.num_classes
    }
}

/// Options controlling a single local-training pass, used by FLOAT's
/// acceleration techniques.
#[derive(Debug, Clone, Default)]
pub struct TrainOptions {
    /// If set, parameters whose mask entry is `false` are held at zero
    /// (magnitude pruning). Length must equal [`Mlp::num_params`].
    pub prune_mask: Option<Vec<bool>>,
    /// If set, parameters whose entry is `true` are frozen (partial
    /// training). Length must equal [`Mlp::num_params`].
    pub frozen: Option<Vec<bool>>,
}

/// Client-drift corrections applied to every minibatch gradient — the
/// composable FedProx / SCAFFOLD layer. The default applies nothing and
/// leaves [`Mlp::train_epoch_with`] bit-identical to its historical
/// behaviour (the correction branches are skipped entirely, so the
/// floating-point op sequence is unchanged).
#[derive(Debug, Clone, Copy, Default)]
pub struct DriftOptions<'a> {
    /// FedProx proximal term: `(μ, anchor)` adds `μ·(w − anchor)` to the
    /// gradient, pulling local training toward the round's global
    /// parameters. `anchor` must have [`Mlp::num_params`] entries.
    pub prox: Option<(f32, &'a [f32])>,
    /// SCAFFOLD control-variate correction: `(c, c_i)` adds the server
    /// control variate minus the client's (`c − c_i`) to the gradient.
    /// An empty `c_i` slice stands for an all-zero client variate (a
    /// client correcting for the first time); otherwise both slices must
    /// have [`Mlp::num_params`] entries.
    pub scaffold: Option<(&'a [f32], &'a [f32])>,
}

/// Reusable buffers for the forward/backward and minibatching hot path.
/// Everything here is overwritten before use; after the first batch the
/// buffers reach steady-state capacity and training allocates nothing.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Per-layer activations; `acts[i]` is the output of layer `i` (post
    /// bias+ReLU for hidden layers, raw logits for the last).
    acts: Vec<Tensor>,
    /// Gradient ping-pong buffers for the backward sweep.
    grad: Tensor,
    grad2: Tensor,
    /// Gathered minibatch (features, labels), reused across batches.
    batch: Tensor,
    batch_labels: Vec<usize>,
    /// Shuffled sample order for one epoch.
    order: Vec<usize>,
    /// Flat parameter / gradient mirrors for the optimizer step.
    params: Vec<f32>,
    grads: Vec<f32>,
    /// Packed-panel memo for the GEMM weight operands: the forward and
    /// backward passes of one step (and every batch of an evaluation
    /// sweep) reuse the same packed weights instead of re-packing per
    /// call. Keyed by generation stamp, so `set_params` invalidates it
    /// implicitly.
    panels: crate::kernels::PanelCache,
}

/// A feed-forward classifier: `Linear → ReLU → … → Linear`.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Linear>,
    activations: Vec<Relu>,
    scratch: Scratch,
}

impl Mlp {
    /// Construct a model with deterministic per-layer initialization derived
    /// from `seed`.
    pub fn new(config: &MlpConfig, seed: u64) -> Self {
        let mut dims = vec![config.input_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.num_classes);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], split_seed(seed, i as u64)))
            .collect::<Vec<_>>();
        let activations = (0..layers.len().saturating_sub(1))
            .map(|_| Relu::new())
            .collect();
        Mlp {
            config: config.clone(),
            layers,
            activations,
            scratch: Scratch::default(),
        }
    }

    /// The architecture this model was built from.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.config.num_params()
    }

    /// Flatten all parameters (weights then bias, layer by layer) into one
    /// buffer. The layout is stable and round-trips through
    /// [`Mlp::set_params`].
    pub fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.params_into(&mut out);
        out
    }

    /// Load parameters from a flat buffer produced by [`Mlp::params`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] on length mismatch.
    pub fn set_params(&mut self, flat: &[f32]) -> Result<(), TensorError> {
        if flat.len() != self.num_params() {
            return Err(TensorError::InvalidData(format!(
                "expected {} params, got {}",
                self.num_params(),
                flat.len()
            )));
        }
        let mut off = 0;
        for l in &mut self.layers {
            let w = l.weight.len();
            l.weight.data_mut().copy_from_slice(&flat[off..off + w]);
            off += w;
            let b = l.bias.len();
            l.bias.data_mut().copy_from_slice(&flat[off..off + b]);
            off += b;
        }
        Ok(())
    }

    /// Mask of parameters that pruning must never remove: every bias and
    /// the whole final (classifier) layer. Standard magnitude-pruning
    /// practice — biases are tiny but load-bearing, and pruning the output
    /// layer removes whole classes.
    pub fn protected_mask(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.num_params());
        let last = self.layers.len() - 1;
        for (i, l) in self.layers.iter().enumerate() {
            let weights_protected = i == last;
            out.extend(std::iter::repeat_n(weights_protected, l.weight.len()));
            out.extend(std::iter::repeat_n(true, l.bias.len()));
        }
        out
    }

    /// Flatten the current gradients in the same layout as [`Mlp::params`].
    pub fn grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.grads_into(&mut out);
        out
    }

    /// Write the flattened parameter vector into `out`, reusing its
    /// allocation. `out` is cleared first.
    pub fn params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(l.weight.data());
            out.extend_from_slice(l.bias.data());
        }
    }

    /// Write the flattened gradient vector into `out`, reusing its
    /// allocation. `out` is cleared first.
    pub fn grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(l.grad_weight.data());
            out.extend_from_slice(l.grad_bias.data());
        }
    }

    /// Forward pass for inference.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not `[*, input_dim]`.
    pub fn forward_inference(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let mut h = self.layers[0].forward_inference(x)?;
        for i in 1..self.layers.len() {
            h = self.activations[i - 1].forward_inference(&h);
            h = self.layers[i].forward_inference(&h)?;
        }
        Ok(h)
    }

    /// Forward pass through the scratch activation buffers: `acts[i]`
    /// receives layer `i`'s output. `record_masks` controls whether the
    /// hidden ReLUs store their masks (training) or skip them (eval).
    fn forward_scratch(&mut self, x: &Tensor, record_masks: bool) -> Result<(), TensorError> {
        let n_layers = self.layers.len();
        self.scratch.acts.resize_with(n_layers, Tensor::default);
        for i in 0..n_layers {
            let (prev, rest) = self.scratch.acts.split_at_mut(i);
            let out = &mut rest[0];
            let input = if i == 0 { x } else { &prev[i - 1] };
            self.layers[i].forward_matmul_into_cached(input, out, &mut self.scratch.panels)?;
            if i < n_layers - 1 {
                if record_masks {
                    self.activations[i].forward_fused_bias(out, &self.layers[i].bias)?;
                } else {
                    let (rows, cols) = (out.rows(), out.cols());
                    crate::kernels::bias_relu_inference(
                        out.data_mut(),
                        rows,
                        cols,
                        self.layers[i].bias.data(),
                    );
                }
            } else {
                out.add_row_broadcast(&self.layers[i].bias)?;
            }
        }
        Ok(())
    }

    /// Forward + backward over one batch; populates per-layer gradients and
    /// returns the mean loss. Runs entirely in reusable scratch buffers —
    /// zero heap allocation once the buffers are warm.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers or the loss.
    pub fn forward_backward(&mut self, x: &Tensor, y: &[usize]) -> Result<f32, TensorError> {
        self.forward_scratch(x, true)?;
        let n_layers = self.layers.len();
        let Mlp {
            layers,
            activations,
            scratch,
            ..
        } = self;
        let loss = softmax_cross_entropy_into(&scratch.acts[n_layers - 1], y, &mut scratch.grad)?;
        for i in (1..n_layers).rev() {
            layers[i].backward_into_cached(
                &scratch.acts[i - 1],
                &scratch.grad,
                &mut scratch.grad2,
                &mut scratch.panels,
            )?;
            activations[i - 1].backward_in_place(&mut scratch.grad2)?;
            std::mem::swap(&mut scratch.grad, &mut scratch.grad2);
        }
        // The input gradient of the first layer has no consumer; skip it.
        layers[0].backward_params_only(x, &scratch.grad)?;
        Ok(loss)
    }

    /// Run one epoch of minibatch SGD over `data`, shuffled with `seed`.
    ///
    /// Returns the mean training loss over all batches. Panics are avoided:
    /// an empty dataset returns `0.0`.
    pub fn train_epoch(
        &mut self,
        data: &Dataset,
        batch_size: usize,
        opt: &mut Sgd,
        seed: u64,
    ) -> f32 {
        self.train_epoch_with(data, batch_size, opt, seed, &TrainOptions::default())
    }

    /// [`Mlp::train_epoch`] with acceleration hooks.
    ///
    /// - `opts.frozen[i] == true` keeps parameter `i` fixed (partial
    ///   training).
    /// - `opts.prune_mask[i] == false` forces parameter `i` to zero after
    ///   every step (magnitude pruning keeps the model sparse during local
    ///   training).
    pub fn train_epoch_with(
        &mut self,
        data: &Dataset,
        batch_size: usize,
        opt: &mut Sgd,
        seed: u64,
        opts: &TrainOptions,
    ) -> f32 {
        self.train_epoch_corrected(data, batch_size, opt, seed, opts, &DriftOptions::default())
    }

    /// [`Mlp::train_epoch_with`] plus client-drift corrections applied to
    /// each minibatch gradient *before* the acceleration hooks: FedProx's
    /// proximal pull and/or SCAFFOLD's control-variate correction (see
    /// [`DriftOptions`]). With the default (empty) drift options this is
    /// exactly `train_epoch_with`, bit for bit.
    pub fn train_epoch_corrected(
        &mut self,
        data: &Dataset,
        batch_size: usize,
        opt: &mut Sgd,
        seed: u64,
        opts: &TrainOptions,
        drift: &DriftOptions<'_>,
    ) -> f32 {
        if data.is_empty() || batch_size == 0 {
            return 0.0;
        }
        // Move the minibatch scratch out of `self` so the gathered batch can
        // be borrowed across `forward_backward`; restored below. After the
        // first epoch every buffer is at steady-state capacity and the loop
        // performs zero heap allocation.
        let mut order = std::mem::take(&mut self.scratch.order);
        let mut batch = std::mem::take(&mut self.scratch.batch);
        let mut batch_labels = std::mem::take(&mut self.scratch.batch_labels);
        let mut params = std::mem::take(&mut self.scratch.params);
        let mut grads = std::mem::take(&mut self.scratch.grads);
        order.clear();
        order.extend(0..data.len());
        order.shuffle(&mut seed_rng(seed));
        let mut total = 0.0;
        let mut batches = 0;
        // `params` mirrors the layer parameters exactly (every write path
        // goes through `set_params` below), so one read up front suffices.
        self.params_into(&mut params);
        for chunk in order.chunks(batch_size) {
            data.gather_into(chunk, &mut batch, &mut batch_labels);
            match self.forward_backward(&batch, &batch_labels) {
                Ok(loss) => {
                    total += loss;
                    batches += 1;
                }
                Err(_) => continue,
            }
            self.grads_into(&mut grads);
            if let Some((mu, anchor)) = drift.prox {
                for ((g, &p), &a) in grads.iter_mut().zip(&params).zip(anchor) {
                    *g += mu * (p - a);
                }
            }
            if let Some((c, ci)) = drift.scaffold {
                if ci.is_empty() {
                    for (g, &cj) in grads.iter_mut().zip(c) {
                        *g += cj;
                    }
                } else {
                    for ((g, &cj), &cij) in grads.iter_mut().zip(c).zip(ci) {
                        *g += cj - cij;
                    }
                }
            }
            if let Some(frozen) = &opts.frozen {
                for (g, &f) in grads.iter_mut().zip(frozen) {
                    if f {
                        *g = 0.0;
                    }
                }
            }
            opt.step(&mut params, &grads);
            if let Some(mask) = &opts.prune_mask {
                for (p, &keep) in params.iter_mut().zip(mask) {
                    if !keep {
                        *p = 0.0;
                    }
                }
            }
            self.set_params(&params)
                .expect("params buffer produced by self.params_into() always fits");
        }
        self.scratch.order = order;
        self.scratch.batch = batch;
        self.scratch.batch_labels = batch_labels;
        self.scratch.params = params;
        self.scratch.grads = grads;
        if batches == 0 {
            0.0
        } else {
            total / batches as f32
        }
    }

    /// Evaluate loss and accuracy on a dataset.
    ///
    /// An empty dataset yields zeroed metrics.
    pub fn evaluate(&self, data: &Dataset) -> Evaluation {
        if data.is_empty() {
            return Evaluation {
                loss: 0.0,
                accuracy: 0.0,
                samples: 0,
            };
        }
        match self.forward_inference(data.features()) {
            Ok(logits) => Evaluation {
                loss: cross_entropy_loss(&logits, data.labels()).unwrap_or(f32::INFINITY),
                accuracy: accuracy(&logits, data.labels()),
                samples: data.len(),
            },
            Err(_) => Evaluation {
                loss: f32::INFINITY,
                accuracy: 0.0,
                samples: data.len(),
            },
        }
    }

    /// [`Mlp::evaluate`] through the reusable scratch activations —
    /// allocation-free once the buffers are warm. The round runtime calls
    /// this on every cohort attempt, so the per-call logits allocation of
    /// the `&self` path matters there.
    pub fn evaluate_mut(&mut self, data: &Dataset) -> Evaluation {
        if data.is_empty() {
            return Evaluation {
                loss: 0.0,
                accuracy: 0.0,
                samples: 0,
            };
        }
        match self.forward_scratch(data.features(), false) {
            Ok(()) => {
                let logits = &self.scratch.acts[self.layers.len() - 1];
                Evaluation {
                    loss: cross_entropy_loss(logits, data.labels()).unwrap_or(f32::INFINITY),
                    accuracy: accuracy(logits, data.labels()),
                    samples: data.len(),
                }
            }
            Err(_) => Evaluation {
                loss: f32::INFINITY,
                accuracy: 0.0,
                samples: data.len(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like() -> Dataset {
        // Linearly separable 2-class blobs.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = seed_rng(5);
        use rand::Rng;
        for _ in 0..128 {
            let cls = rng.gen_range(0..2usize);
            let center = if cls == 0 { -1.0 } else { 1.0 };
            rows.push(vec![
                center + rng.gen_range(-0.3f32..0.3),
                center + rng.gen_range(-0.3f32..0.3),
            ]);
            labels.push(cls);
        }
        Dataset::from_rows(&rows, &labels, 2).unwrap()
    }

    #[test]
    fn params_roundtrip() {
        let cfg = MlpConfig::new(4, &[8, 8], 3);
        let m = Mlp::new(&cfg, 11);
        let p = m.params();
        assert_eq!(p.len(), cfg.num_params());
        let mut m2 = Mlp::new(&cfg, 99);
        m2.set_params(&p).unwrap();
        assert_eq!(m2.params(), p);
    }

    #[test]
    fn set_params_rejects_wrong_length() {
        let mut m = Mlp::new(&MlpConfig::new(2, &[4], 2), 1);
        assert!(m.set_params(&[0.0; 3]).is_err());
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let data = xor_like();
        let mut m = Mlp::new(&MlpConfig::new(2, &[8], 2), 3);
        let before = m.evaluate(&data);
        let mut opt = Sgd::new(0.2);
        for e in 0..20 {
            m.train_epoch(&data, 16, &mut opt, e);
        }
        let after = m.evaluate(&data);
        assert!(after.loss < before.loss);
        assert!(after.accuracy > 0.95, "accuracy {}", after.accuracy);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let data = xor_like();
        let cfg = MlpConfig::new(2, &[4], 2);
        let mut m = Mlp::new(&cfg, 3);
        let frozen = vec![true; cfg.num_params()];
        let before = m.params();
        let mut opt = Sgd::new(0.5);
        m.train_epoch_with(
            &data,
            16,
            &mut opt,
            0,
            &TrainOptions {
                frozen: Some(frozen),
                prune_mask: None,
            },
        );
        assert_eq!(m.params(), before);
    }

    #[test]
    fn prune_mask_keeps_params_zero() {
        let data = xor_like();
        let cfg = MlpConfig::new(2, &[4], 2);
        let mut m = Mlp::new(&cfg, 3);
        let n = cfg.num_params();
        // Zero out the first half of parameters.
        let mask: Vec<bool> = (0..n).map(|i| i >= n / 2).collect();
        let mut opt = Sgd::new(0.2);
        m.train_epoch_with(
            &data,
            16,
            &mut opt,
            0,
            &TrainOptions {
                prune_mask: Some(mask.clone()),
                frozen: None,
            },
        );
        let params = m.params();
        for (i, (&p, &keep)) in params.iter().zip(&mask).enumerate() {
            if !keep {
                assert_eq!(p, 0.0, "pruned param {i} drifted to {p}");
            }
        }
    }

    #[test]
    fn evaluate_mut_matches_evaluate() {
        let data = xor_like();
        let mut m = Mlp::new(&MlpConfig::new(2, &[8], 2), 3);
        let mut opt = Sgd::new(0.2);
        for e in 0..3 {
            m.train_epoch(&data, 16, &mut opt, e);
        }
        let by_ref = m.evaluate(&data);
        let by_scratch = m.evaluate_mut(&data);
        assert_eq!(by_ref, by_scratch);
        // A second scratch evaluation must be unaffected by buffer reuse.
        assert_eq!(m.evaluate_mut(&data), by_scratch);
    }

    #[test]
    fn panel_cache_hits_across_eval_and_training_without_changing_results() {
        let data = xor_like();
        let mut m = Mlp::new(&MlpConfig::new(2, &[8], 2), 3);
        let uncached_eval = m.evaluate(&data);
        m.evaluate_mut(&data);
        let misses_after_first = m.scratch.panels.misses();
        assert!(misses_after_first > 0, "first eval must pack");
        let second = m.evaluate_mut(&data);
        assert_eq!(second, uncached_eval);
        assert_eq!(
            m.scratch.panels.misses(),
            misses_after_first,
            "unchanged weights must not repack"
        );
        assert!(m.scratch.panels.hits() > 0);
        // Training mutates the weights each step, so later evals repack —
        // and still agree with the allocation-free reference path.
        let mut opt = Sgd::new(0.2);
        m.train_epoch(&data, 16, &mut opt, 0);
        assert!(m.scratch.panels.misses() > misses_after_first);
        assert_eq!(m.evaluate_mut(&data), m.evaluate(&data));
    }

    #[test]
    fn no_drift_is_bit_identical_to_plain_training() {
        let data = xor_like();
        let cfg = MlpConfig::new(2, &[8], 2);
        let mut plain = Mlp::new(&cfg, 3);
        let mut corrected = Mlp::new(&cfg, 3);
        let mut opt_a = Sgd::new(0.2);
        let mut opt_b = Sgd::new(0.2);
        for e in 0..3 {
            plain.train_epoch_with(&data, 16, &mut opt_a, e, &TrainOptions::default());
            corrected.train_epoch_corrected(
                &data,
                16,
                &mut opt_b,
                e,
                &TrainOptions::default(),
                &DriftOptions::default(),
            );
        }
        assert_eq!(
            plain
                .params()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            corrected
                .params()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "empty drift options changed the training trajectory"
        );
    }

    #[test]
    fn prox_term_pulls_training_toward_anchor() {
        let data = xor_like();
        let cfg = MlpConfig::new(2, &[8], 2);
        let dist = |mu: f32| {
            let mut m = Mlp::new(&cfg, 3);
            let anchor = m.params();
            let mut opt = Sgd::new(0.2);
            for e in 0..5 {
                m.train_epoch_corrected(
                    &data,
                    16,
                    &mut opt,
                    e,
                    &TrainOptions::default(),
                    &DriftOptions {
                        prox: Some((mu, &anchor)),
                        scaffold: None,
                    },
                );
            }
            m.params()
                .iter()
                .zip(&anchor)
                .map(|(p, a)| f64::from((p - a) * (p - a)))
                .sum::<f64>()
        };
        let free = dist(0.0);
        let anchored = dist(5.0);
        assert!(
            anchored < free,
            "μ=5 drift {anchored} not below unconstrained drift {free}"
        );
    }

    #[test]
    fn scaffold_correction_alters_trajectory_unless_variates_cancel() {
        let data = xor_like();
        let cfg = MlpConfig::new(2, &[8], 2);
        let n = cfg.num_params();
        let run = |drift: &DriftOptions<'_>| {
            let mut m = Mlp::new(&cfg, 3);
            let mut opt = Sgd::new(0.2);
            m.train_epoch_corrected(&data, 16, &mut opt, 0, &TrainOptions::default(), drift);
            m.params()
        };
        let baseline = run(&DriftOptions::default());
        let c = vec![0.05f32; n];
        // c == c_i cancels exactly: the correction adds zero per entry.
        let cancelled = run(&DriftOptions {
            prox: None,
            scaffold: Some((&c, &c)),
        });
        assert_eq!(cancelled, baseline, "c == c_i must be a no-op correction");
        // Empty c_i stands for zeros, so the server variate alone shifts
        // every step.
        let shifted = run(&DriftOptions {
            prox: None,
            scaffold: Some((&c, &[])),
        });
        assert_ne!(shifted, baseline, "nonzero c − c_i must move training");
    }

    #[test]
    fn empty_dataset_is_harmless() {
        let cfg = MlpConfig::new(2, &[4], 2);
        let mut m = Mlp::new(&cfg, 3);
        let d = Dataset::from_rows(&[vec![0.0, 0.0]], &[0], 2).unwrap();
        let sub = d.subset(&[]);
        let mut opt = Sgd::new(0.1);
        assert_eq!(m.train_epoch(&sub, 8, &mut opt, 0), 0.0);
        assert_eq!(m.evaluate(&sub).samples, 0);
    }
}
