//! `float-tensor` — a minimal, dependency-light dense tensor and neural
//! network substrate used by the FLOAT reproduction.
//!
//! The FLOAT paper trains PyTorch models (ResNet-18/34/50, ShuffleNet) on
//! GPUs. This crate provides the from-scratch stand-in: row-major `f32`
//! tensors, a small set of linear-algebra kernels, layers with manual
//! backpropagation, a multi-layer perceptron model, and an SGD optimizer.
//! It is deliberately small but *real*: models genuinely train, so the
//! accuracy dynamics FLOAT manipulates (non-IID degradation, the accuracy
//! cost of pruning / quantization / partial training) emerge from actual
//! optimization rather than lookup tables.
//!
//! # Example
//!
//! ```
//! use float_tensor::{Mlp, MlpConfig, Sgd, Dataset};
//!
//! // Tiny two-class problem: x > 0 vs x < 0 in 4 dimensions.
//! let xs: Vec<Vec<f32>> = (0..64)
//!     .map(|i| {
//!         let s = if i % 2 == 0 { 1.0 } else { -1.0 };
//!         vec![s, s * 0.5, s * 0.25, s * 0.125]
//!     })
//!     .collect();
//! let ys: Vec<usize> = (0..64).map(|i| i % 2).collect();
//! let data = Dataset::from_rows(&xs, &ys, 2).unwrap();
//!
//! let mut model = Mlp::new(&MlpConfig::new(4, &[16], 2), 42);
//! let mut opt = Sgd::new(0.1);
//! for _ in 0..30 {
//!     model.train_epoch(&data, 16, &mut opt, 7);
//! }
//! assert!(model.evaluate(&data).accuracy > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod dataset;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod rng;
pub mod tensor;

pub use conv::{Conv2d, FeatureShape, MaxPool2};
pub use dataset::Dataset;
pub use layers::{Linear, Relu};
pub use loss::{softmax_cross_entropy, Evaluation};
pub use model::{DriftOptions, Mlp, MlpConfig};
pub use optim::Sgd;
pub use rng::seed_rng;
pub use tensor::Tensor;

/// Errors produced by tensor and model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// A dataset row or label was malformed (e.g. empty rows, label out of
    /// range for the declared class count).
    InvalidData(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
