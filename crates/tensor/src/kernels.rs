//! Cache-blocked, register-tiled compute kernels for the training hot path.
//!
//! The FL experiments spend nearly all wall-clock inside the three GEMM
//! variants (`matmul`, `t_matmul`, `matmul_t`) and the convolution loops.
//! This module is the single place that work happens: a packed-panel GEMM
//! with a fixed `4×8` register micro-kernel, plus the fused elementwise
//! passes (bias+ReLU forward, ReLU-mask backward) the layers use.
//!
//! # Design
//!
//! - **Blocking.** The driver tiles `C[m×n] = Σ_p A'[m×k]·B'[k×n]` with
//!   the classic three-loop structure: `NC`-wide column panels of `B`,
//!   `KC`-deep depth panels, `MC`-tall row panels of `A`. Each panel is
//!   packed into a contiguous, tile-major scratch buffer so the micro-kernel
//!   streams with unit stride regardless of the logical layout — the same
//!   packing routine serves the `N·N`, `T·N`, and `N·T` variants by
//!   walking the source with configurable row/column strides.
//! - **Micro-kernel.** A fixed `MR×NR = 4×8` accumulator block updated
//!   over the packed depth dimension. All loop bounds are compile-time
//!   constants over fixed-size arrays and `chunks_exact` slices, so LLVM
//!   fully unrolls and autovectorizes the inner loop; there is no
//!   per-element branching (the old `a == 0.0` skip defeated both the
//!   vectorizer and NaN propagation).
//! - **Determinism.** For every output element the reduction over the
//!   depth dimension runs in ascending index order: ascending `p` inside a
//!   depth panel, panels visited in ascending order, partial sums committed
//!   to `C` per panel. The order is a pure function of the operand shapes —
//!   never of thread count or data values — so results are bit-identical
//!   run-to-run and across the round engine's worker-pool sizes. For
//!   `k ≤ KC` (every shape on the MLP hot path) the reduction degenerates
//!   to a single ascending pass, which is bit-identical to the pre-kernel
//!   naive loops on finite inputs.
//! - **Allocation.** Packing buffers are thread-local and grown once;
//!   steady-state calls perform zero heap allocation. The `*_into` entry
//!   points on [`crate::Tensor`] write into caller-owned scratch.
//!
//! Inputs containing NaN/Inf propagate through (IEEE semantics); nothing
//! here filters non-finite values, so poisoned updates stay poisoned until
//! the server-side quarantine sees them.

use std::cell::RefCell;

/// Micro-kernel rows (register-blocked rows of `C`).
pub const MR: usize = 4;
/// Micro-kernel columns (register-blocked, autovectorized columns of `C`).
pub const NR: usize = 8;
/// Row-panel height of packed `A` blocks.
const MC: usize = 64;
/// Depth of packed panels; reductions with `k ≤ KC` are single-pass.
const KC: usize = 256;
/// Column-panel width of packed `B` blocks.
const NC: usize = 256;

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C[m×n] = A[m×k] · B[k×n]`, all row-major. Overwrites `out`.
///
/// # Panics
///
/// Panics (debug and release) if a slice is shorter than its shape implies.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, n, 1, out, false);
}

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major.
pub fn gemm_nn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, n, 1, out, true);
}

/// `C[m×n] = Aᵀ · B` where `A` is stored row-major `[k×m]` (so the logical
/// left operand is its transpose) and `B` is `[k×n]`. Overwrites `out`.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, 1, m, b, n, 1, out, false);
}

/// `C[m×n] = A · Bᵀ` where `A` is `[m×k]` and `B` is stored row-major
/// `[n×k]`. Overwrites `out`.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, 1, k, out, false);
}

/// `C[m×n] += A · Bᵀ` where `A` is `[m×k]` and `B` is stored row-major
/// `[n×k]` (used to accumulate conv weight gradients across a batch).
pub fn gemm_nt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, 1, k, out, true);
}

/// Strided GEMM driver: `C[i][j] (+)= Σ_p A'[i][p] · B'[p][j]` where
/// `A'[i][p] = a[i*a_rs + p*a_cs]` and `B'[p][j] = b[p*b_rs + j*b_cs]`.
/// `out` is row-major `[m×n]` and is zeroed first unless `accumulate`.
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    assert!(out.len() >= m * n, "output buffer too small for {m}x{n}");
    if !accumulate {
        out[..m * n].fill(0.0);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    PACK_A.with(|pa| {
        PACK_B.with(|pb| {
            let pa = &mut *pa.borrow_mut();
            let pb = &mut *pb.borrow_mut();
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                for pc in (0..k).step_by(KC) {
                    let kc = KC.min(k - pc);
                    pack_b(pb, b, b_rs, b_cs, pc, kc, jc, nc);
                    for ic in (0..m).step_by(MC) {
                        let mc = MC.min(m - ic);
                        pack_a(pa, a, a_rs, a_cs, ic, mc, pc, kc);
                        macro_kernel(pa, pb, mc, kc, nc, out, ic, jc, n);
                    }
                }
            }
        })
    });
}

/// Pack an `mc×kc` panel of `A'` (rows `ic..`, depth `pc..`) tile-major:
/// tile `t` holds rows `[t*MR, t*MR+MR)` as `kc` groups of `MR` adjacent
/// values. Rows past `mc` pad with zeros so the micro-kernel never
/// branches on the edge.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut Vec<f32>,
    a: &[f32],
    rs: usize,
    cs: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let tiles = mc.div_ceil(MR);
    dst.clear();
    dst.resize(tiles * kc * MR, 0.0);
    for t in 0..tiles {
        let tile = &mut dst[t * kc * MR..(t + 1) * kc * MR];
        let rows = MR.min(mc - t * MR);
        for (p, group) in tile.chunks_exact_mut(MR).enumerate() {
            for (r, slot) in group.iter_mut().take(rows).enumerate() {
                *slot = a[(ic + t * MR + r) * rs + (pc + p) * cs];
            }
            for slot in group.iter_mut().skip(rows) {
                *slot = 0.0;
            }
        }
    }
}

/// Pack a `kc×nc` panel of `B'` (depth `pc..`, columns `jc..`) tile-major:
/// tile `u` holds columns `[u*NR, u*NR+NR)` as `kc` groups of `NR`
/// adjacent values, zero-padded past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut Vec<f32>,
    b: &[f32],
    rs: usize,
    cs: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let tiles = nc.div_ceil(NR);
    dst.clear();
    dst.resize(tiles * kc * NR, 0.0);
    for u in 0..tiles {
        let tile = &mut dst[u * kc * NR..(u + 1) * kc * NR];
        let cols = NR.min(nc - u * NR);
        for (p, group) in tile.chunks_exact_mut(NR).enumerate() {
            for (c, slot) in group.iter_mut().take(cols).enumerate() {
                *slot = b[(pc + p) * rs + (jc + u * NR + c) * cs];
            }
            for slot in group.iter_mut().skip(cols) {
                *slot = 0.0;
            }
        }
    }
}

/// Multiply one packed `A` panel by one packed `B` panel, committing each
/// micro-tile's partial sum into `out` (`+=`, `out` pre-zeroed by the
/// driver on the first depth panel).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    pa: &[f32],
    pb: &[f32],
    mc: usize,
    kc: usize,
    nc: usize,
    out: &mut [f32],
    ic: usize,
    jc: usize,
    ldc: usize,
) {
    let row_tiles = mc.div_ceil(MR);
    let col_tiles = nc.div_ceil(NR);
    for t in 0..row_tiles {
        let ap = &pa[t * kc * MR..(t + 1) * kc * MR];
        let rows = MR.min(mc - t * MR);
        for u in 0..col_tiles {
            let bp = &pb[u * kc * NR..(u + 1) * kc * NR];
            let acc = micro_kernel(ap, bp);
            let cols = NR.min(nc - u * NR);
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                let row0 = (ic + t * MR + r) * ldc + jc + u * NR;
                let crow = &mut out[row0..row0 + cols];
                for (dst, v) in crow.iter_mut().zip(acc_row) {
                    *dst += v;
                }
            }
        }
    }
}

/// The `MR×NR` register block: `acc[r][c] += ap[p][r] * bp[p][c]` over the
/// packed depth dimension, in ascending `p`. Fixed-size arrays and
/// `chunks_exact` give LLVM exact trip counts, so the two inner loops
/// unroll into straight-line vector code with no bounds checks.
#[inline]
fn micro_kernel(ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let a = av[r];
            for (c, slot) in acc_row.iter_mut().enumerate() {
                *slot += a * bv[c];
            }
        }
    }
    acc
}

/// Fused bias-add + ReLU forward over a row-major `[rows×cols]` activation
/// buffer: `y = max(y + bias, 0)` in one pass, recording the post-bias
/// positive mask for the backward pass. `mask` is cleared and refilled.
///
/// # Panics
///
/// Panics if `bias.len() != cols` or `y.len() != rows * cols`.
pub fn bias_relu_forward(
    y: &mut [f32],
    rows: usize,
    cols: usize,
    bias: &[f32],
    mask: &mut Vec<bool>,
) {
    assert_eq!(bias.len(), cols, "bias width mismatch");
    assert_eq!(y.len(), rows * cols, "activation buffer shape mismatch");
    mask.clear();
    mask.reserve(rows * cols);
    for row in y.chunks_exact_mut(cols) {
        for (v, &b) in row.iter_mut().zip(bias) {
            let z = *v + b;
            mask.push(z > 0.0);
            *v = if z > 0.0 { z } else { 0.0 };
        }
    }
}

/// Inference-only fused bias-add + ReLU (no mask recording).
///
/// # Panics
///
/// Panics if `bias.len() != cols` or `y.len() != rows * cols`.
pub fn bias_relu_inference(y: &mut [f32], rows: usize, cols: usize, bias: &[f32]) {
    assert_eq!(bias.len(), cols, "bias width mismatch");
    assert_eq!(y.len(), rows * cols, "activation buffer shape mismatch");
    for row in y.chunks_exact_mut(cols) {
        for (v, &b) in row.iter_mut().zip(bias) {
            let z = *v + b;
            *v = if z > 0.0 { z } else { 0.0 };
        }
    }
}

/// Fused ReLU-mask backward: zero `g[i]` wherever the forward activation
/// was non-positive, in place.
///
/// # Panics
///
/// Panics if `g.len() != mask.len()`.
pub fn relu_mask_backward(g: &mut [f32], mask: &[bool]) {
    assert_eq!(g.len(), mask.len(), "gradient/mask length mismatch");
    for (v, &keep) in g.iter_mut().zip(mask) {
        if !keep {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: plain triple loop, ascending-p accumulation.
    fn reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn pseudo(n: usize, salt: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt);
                ((h >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_nn_matches_reference_over_shapes() {
        // Shapes straddle every tile boundary: below, at, and above MR/NR,
        // and above KC to exercise multi-panel depth reduction.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (16, 24, 128),
            (16, 128, 10),
            (65, 300, 70),
        ] {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut out = vec![f32::NAN; m * n];
            gemm_nn(m, k, n, &a, &b, &mut out);
            let want = reference(m, k, n, &a, &b);
            for (i, (&got, &w)) in out.iter().zip(&want).enumerate() {
                assert!(
                    (got - w).abs() <= 1e-4 * w.abs().max(1.0),
                    "({m},{k},{n}) elem {i}: {got} vs {w}"
                );
            }
        }
    }

    #[test]
    fn gemm_nn_single_panel_is_bitwise_ascending_order() {
        // For k ≤ KC the kernel must reproduce the naive ascending-p sum
        // bit for bit — this is what keeps pinned experiment seeds valid.
        let (m, k, n) = (7, 129, 33);
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let mut out = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &mut out);
        assert_eq!(out, reference(m, k, n, &a, &b));
    }

    #[test]
    fn gemm_tn_matches_transposed_reference() {
        let (m, k, n) = (13, 6, 21); // A stored [k×m]
        let a = pseudo(k * m, 5);
        let b = pseudo(k * n, 6);
        let mut at = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let mut out = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a, &b, &mut out);
        assert_eq!(out, reference(m, k, n, &at, &b));
    }

    #[test]
    fn gemm_nt_matches_transposed_reference() {
        let (m, k, n) = (9, 14, 11); // B stored [n×k]
        let a = pseudo(m * k, 7);
        let b = pseudo(n * k, 8);
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let mut out = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &b, &mut out);
        assert_eq!(out, reference(m, k, n, &a, &bt));
    }

    #[test]
    fn accumulate_variants_add_to_existing() {
        let (m, k, n) = (5, 4, 6);
        let a = pseudo(m * k, 9);
        let b = pseudo(k * n, 10);
        let mut out = vec![1.0f32; m * n];
        gemm_nn_acc(m, k, n, &a, &b, &mut out);
        let want = reference(m, k, n, &a, &b);
        for (got, w) in out.iter().zip(&want) {
            assert!((got - (w + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_k_zeroes_output_unless_accumulating() {
        let mut out = vec![3.0f32; 4];
        gemm_nn(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
        let mut out = vec![3.0f32; 4];
        gemm_nn_acc(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![3.0; 4]);
    }

    #[test]
    fn nan_propagates_through_gemm() {
        // The old zero-skip silently dropped `0 * NaN`; the kernel must
        // keep IEEE semantics so poisoned payloads reach quarantine.
        let a = [0.0f32, 0.0];
        let b = [f32::NAN, 1.0, 2.0, 3.0];
        let mut out = [0.0f32; 2];
        gemm_nn(1, 2, 2, &a, &b, &mut out);
        assert!(out[0].is_nan(), "0·NaN must stay NaN");
    }

    #[test]
    fn bias_relu_forward_matches_separate_passes() {
        let rows = 3;
        let cols = 5;
        let mut y = pseudo(rows * cols, 11);
        let bias = pseudo(cols, 12);
        let mut want = y.clone();
        for row in want.chunks_exact_mut(cols) {
            for (v, &b) in row.iter_mut().zip(&bias) {
                *v += b;
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        let mut mask = Vec::new();
        bias_relu_forward(&mut y, rows, cols, &bias, &mut mask);
        assert_eq!(y, want);
        for (v, &keep) in y.iter().zip(&mask) {
            assert_eq!(keep, *v > 0.0);
        }
    }

    #[test]
    fn relu_mask_backward_zeroes_dead_units() {
        let mut g = vec![1.0f32, 2.0, 3.0];
        relu_mask_backward(&mut g, &[true, false, true]);
        assert_eq!(g, vec![1.0, 0.0, 3.0]);
    }
}
