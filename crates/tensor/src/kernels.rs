//! Cache-blocked, register-tiled compute kernels for the training hot path.
//!
//! The FL experiments spend nearly all wall-clock inside the three GEMM
//! variants (`matmul`, `t_matmul`, `matmul_t`) and the convolution loops.
//! This module is the single place that work happens: a packed-panel GEMM
//! with register micro-kernels widened per call shape, a packed-panel
//! reuse cache for operands that recur across calls (weights packed for
//! forward and again for backward, conv weights re-packed per sample),
//! plus the fused elementwise passes (bias+ReLU forward, ReLU-mask
//! backward) the layers use.
//!
//! # Design
//!
//! - **Blocking.** The driver tiles `C[m×n] = Σ_p A'[m×k]·B'[k×n]` with
//!   the classic three-loop structure: `NC`-wide column panels of `B`,
//!   `KC`-deep depth panels, `MC`-tall row panels of `A`. Each panel is
//!   packed into a contiguous, tile-major scratch buffer so the micro-kernel
//!   streams with unit stride regardless of the logical layout — the same
//!   packing routine serves the `N·N`, `T·N`, and `N·T` variants by
//!   walking the source with configurable row/column strides.
//! - **Micro-kernels.** `MR×NR` accumulator blocks updated over the packed
//!   depth dimension, monomorphized over the tile shape (`4×8`, `8×8`,
//!   `4×16`) and selected once per GEMM call as a pure function of
//!   `(m, n)` — see [`select_tile`]. All loop bounds are compile-time
//!   constants over fixed-size arrays and `chunks_exact` slices, so LLVM
//!   fully unrolls and autovectorizes the inner loop; there is no
//!   per-element branching. Wider tiles amortize each packed-`B` load over
//!   more rows of `C`, which pays off once the target has registers for
//!   the accumulator block (the workspace builds with `target-cpu=native`,
//!   see `.cargo/config.toml`).
//! - **Determinism.** For every output element the reduction over the
//!   depth dimension runs in ascending index order: ascending `p` inside a
//!   depth panel, panels visited in ascending order, partial sums committed
//!   to `C` per panel. The order is a pure function of the operand *shape* —
//!   never of thread count, data values, tile width, or cache state — so
//!   results are bit-identical run-to-run, across the round engine's
//!   worker-pool sizes, and across every micro-kernel variant: widening
//!   `MR×NR` only changes *which* output elements a register block covers,
//!   not the order any single element's dot product accumulates in
//!   (zero-padded edge lanes feed accumulator slots that are never
//!   committed). For `k ≤ KC` (every shape on the MLP hot path) the
//!   reduction degenerates to a single ascending pass, which is
//!   bit-identical to the pre-kernel naive loops on finite inputs.
//! - **Packed-panel reuse.** Within one training step the same weight
//!   matrix is packed for the forward pass and again for the backward pass,
//!   and the conv layers re-pack their weight for every sample of a batch.
//!   [`PanelCache`] memoizes fully packed operands keyed by *(generation
//!   stamp, shape, strides, tile width)* — the stamp (see
//!   [`crate::Tensor`]) changes on every mutation, so a hit is guaranteed
//!   to replay byte-identical packed panels and results cannot depend on
//!   cache state.
//! - **Allocation.** Packing buffers are thread-local and grown once;
//!   steady-state calls perform zero heap allocation. The `*_into` entry
//!   points on [`crate::Tensor`] write into caller-owned scratch.
//!
//! Inputs containing NaN/Inf propagate through (IEEE semantics); nothing
//! here filters non-finite values, so poisoned updates stay poisoned until
//! the server-side quarantine sees them.

use std::cell::RefCell;

/// Rows of the *reference* micro-kernel (the narrowest tile, used for
/// small shapes; wider variants are selected by [`select_tile`]).
pub const MR: usize = 4;
/// Columns of the reference micro-kernel.
pub const NR: usize = 8;
/// Row-panel height of packed `A` blocks.
const MC: usize = 64;
/// Depth of packed panels; reductions with `k ≤ KC` are single-pass.
const KC: usize = 256;
/// Column-panel width of packed `B` blocks.
const NC: usize = 256;

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// The register tile shapes the dispatcher can pick from.
///
/// An `8×16` variant was measured and rejected: its accumulator block
/// exceeds what LLVM will keep in vector registers here, and the spills
/// collapse throughput to ~1/10th of the `8×8` tile. The three retained
/// shapes all fit comfortably (≤ 8 × 256-bit accumulators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tile {
    T4x8,
    T8x8,
    T4x16,
}

/// Choose the micro-kernel once per GEMM call. A pure function of the
/// *output* shape `(m, n)` only — never of `k`, data values, or cache
/// state — so the packing layout (and therefore the panel-cache key) is
/// reproducible from the call shape alone.
///
/// Tall-enough outputs take the `8×8` tile (each packed-`B` load is
/// reused across 8 rows of `C` — the fastest measured variant on every
/// benched hot-path shape); short-and-wide outputs take `4×16` (one
/// packed-`B` load feeds 16 lanes when there aren't enough rows to go
/// tall). Small leftovers fall back to the `4×8` reference tile.
fn select_tile(m: usize, n: usize) -> Tile {
    if m >= 8 && n >= 8 {
        Tile::T8x8
    } else if n >= 16 {
        Tile::T4x16
    } else {
        Tile::T4x8
    }
}

/// Dispatch a generic GEMM entry point over the tile selected for
/// `(m, n)`. The callee is monomorphized per tile shape.
macro_rules! with_tile {
    ($m:expr, $n:expr, $f:ident ( $($args:expr),* $(,)? )) => {
        match select_tile($m, $n) {
            Tile::T4x8 => $f::<4, 8>($($args),*),
            Tile::T8x8 => $f::<8, 8>($($args),*),
            Tile::T4x16 => $f::<4, 16>($($args),*),
        }
    };
}

/// `C[m×n] = A[m×k] · B[k×n]`, all row-major. Overwrites `out`.
///
/// # Panics
///
/// Panics (debug and release) if a slice is shorter than its shape implies.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, n, 1, out, false);
}

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major.
pub fn gemm_nn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, n, 1, out, true);
}

/// `C[m×n] = Aᵀ · B` where `A` is stored row-major `[k×m]` (so the logical
/// left operand is its transpose) and `B` is `[k×n]`. Overwrites `out`.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, 1, m, b, n, 1, out, false);
}

/// `C[m×n] = A · Bᵀ` where `A` is `[m×k]` and `B` is stored row-major
/// `[n×k]`. Overwrites `out`.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, 1, k, out, false);
}

/// `C[m×n] += A · Bᵀ` where `A` is `[m×k]` and `B` is stored row-major
/// `[n×k]` (used to accumulate conv weight gradients across a batch).
pub fn gemm_nt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_strided(m, k, n, a, k, 1, b, 1, k, out, true);
}

/// [`gemm_nn`] with the `B` operand's packed panels memoized in `cache`,
/// keyed by `b_stamp` (the owning tensor's generation stamp). Used by the
/// layer forward pass, where the same weight matrix serves every batch of
/// an evaluation sweep and both passes of a training step.
#[allow(clippy::too_many_arguments)] // GEMM shape + strides + stamp: splitting loses clarity
pub fn gemm_nn_b_cached(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    b_stamp: u64,
    out: &mut [f32],
    cache: &mut PanelCache,
) {
    with_tile!(
        m,
        n,
        gemm_cached(
            m,
            k,
            n,
            a,
            k,
            1,
            b,
            n,
            1,
            out,
            false,
            cache,
            Side::B,
            b_stamp
        )
    );
}

/// `C[m×n] = A · Bᵀ` (`B` stored `[n×k]`) with `B`'s packed panels
/// memoized — the backward input-gradient product, which reuses the same
/// weight matrix the forward pass just packed (under its transposed
/// strides, so it occupies a distinct cache entry).
#[allow(clippy::too_many_arguments)] // GEMM shape + strides + stamp: splitting loses clarity
pub fn gemm_nt_b_cached(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    b_stamp: u64,
    out: &mut [f32],
    cache: &mut PanelCache,
) {
    with_tile!(
        m,
        n,
        gemm_cached(
            m,
            k,
            n,
            a,
            k,
            1,
            b,
            1,
            k,
            out,
            false,
            cache,
            Side::B,
            b_stamp
        )
    );
}

/// [`gemm_nn`] with the `A` operand's packed panels memoized — the conv
/// forward product, where one weight matrix is the left operand for every
/// sample of the batch.
#[allow(clippy::too_many_arguments)] // GEMM shape + strides + stamp: splitting loses clarity
pub fn gemm_nn_a_cached(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_stamp: u64,
    b: &[f32],
    out: &mut [f32],
    cache: &mut PanelCache,
) {
    with_tile!(
        m,
        n,
        gemm_cached(
            m,
            k,
            n,
            a,
            k,
            1,
            b,
            n,
            1,
            out,
            false,
            cache,
            Side::A,
            a_stamp
        )
    );
}

/// [`gemm_tn`] (`A` stored `[k×m]`) with `A`'s packed panels memoized —
/// the conv backward column-gradient product, which replays the same
/// transposed weight for every sample of the batch.
#[allow(clippy::too_many_arguments)] // GEMM shape + strides + stamp: splitting loses clarity
pub fn gemm_tn_a_cached(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_stamp: u64,
    b: &[f32],
    out: &mut [f32],
    cache: &mut PanelCache,
) {
    with_tile!(
        m,
        n,
        gemm_cached(
            m,
            k,
            n,
            a,
            1,
            m,
            b,
            n,
            1,
            out,
            false,
            cache,
            Side::A,
            a_stamp
        )
    );
}

/// Strided GEMM driver: `C[i][j] (+)= Σ_p A'[i][p] · B'[p][j]` where
/// `A'[i][p] = a[i*a_rs + p*a_cs]` and `B'[p][j] = b[p*b_rs + j*b_cs]`.
/// `out` is row-major `[m×n]` and is zeroed first unless `accumulate`.
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    with_tile!(
        m,
        n,
        gemm_blocked(m, k, n, a, a_rs, a_cs, b, b_rs, b_cs, None, None, out, accumulate)
    );
}

/// Which operand of a cached GEMM the panel cache memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

/// Cached-GEMM driver body: resolve (or build) the memoized packed
/// operand, then run the blocked kernel against it. Monomorphized per
/// tile shape by [`with_tile!`].
#[allow(clippy::too_many_arguments)]
fn gemm_cached<const R: usize, const C: usize>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
    accumulate: bool,
    cache: &mut PanelCache,
    side: Side,
    stamp: u64,
) {
    if m == 0 || n == 0 || k == 0 {
        // Degenerate shapes never touch the cache; the blocked driver
        // handles the zero-fill contract.
        gemm_blocked::<R, C>(
            m, k, n, a, a_rs, a_cs, b, b_rs, b_cs, None, None, out, accumulate,
        );
        return;
    }
    let idx = match side {
        Side::A => cache.ensure(
            PanelKey {
                stamp,
                side: Side::A,
                rows: m,
                cols: k,
                rs: a_rs,
                cs: a_cs,
                tile: R,
            },
            |buf, offsets| pack_a_all::<R>(buf, offsets, a, a_rs, a_cs, m, k),
        ),
        Side::B => cache.ensure(
            PanelKey {
                stamp,
                side: Side::B,
                rows: k,
                cols: n,
                rs: b_rs,
                cs: b_cs,
                tile: C,
            },
            |buf, offsets| pack_b_all::<C>(buf, offsets, b, b_rs, b_cs, k, n),
        ),
    };
    let entry = &cache.entries[idx];
    let panels = PanelRef {
        buf: &entry.buf,
        offsets: &entry.offsets,
    };
    match side {
        Side::A => gemm_blocked::<R, C>(
            m,
            k,
            n,
            a,
            a_rs,
            a_cs,
            b,
            b_rs,
            b_cs,
            Some(panels),
            None,
            out,
            accumulate,
        ),
        Side::B => gemm_blocked::<R, C>(
            m,
            k,
            n,
            a,
            a_rs,
            a_cs,
            b,
            b_rs,
            b_cs,
            None,
            Some(panels),
            out,
            accumulate,
        ),
    }
}

/// A borrowed, fully packed operand: panel `i` (in driver iteration
/// order) lives at `buf[offsets[i]..]`.
#[derive(Clone, Copy)]
struct PanelRef<'a> {
    buf: &'a [f32],
    offsets: &'a [usize],
}

/// Blocked GEMM over one monomorphized `R×C` tile shape. When a cached
/// packed operand is supplied its panels are consumed in place of the
/// thread-local packing buffers; the packed bytes are identical either
/// way, so results cannot depend on cache state.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<const R: usize, const C: usize>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    cached_a: Option<PanelRef<'_>>,
    cached_b: Option<PanelRef<'_>>,
    out: &mut [f32],
    accumulate: bool,
) {
    assert!(out.len() >= m * n, "output buffer too small for {m}x{n}");
    if !accumulate {
        out[..m * n].fill(0.0);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let num_pc = k.div_ceil(KC);
    let num_ic = m.div_ceil(MC);
    PACK_A.with(|pa| {
        PACK_B.with(|pb| {
            let pa = &mut *pa.borrow_mut();
            let pb = &mut *pb.borrow_mut();
            for (ji, jc) in (0..n).step_by(NC).enumerate() {
                let nc = NC.min(n - jc);
                for (pi, pc) in (0..k).step_by(KC).enumerate() {
                    let kc = KC.min(k - pc);
                    let bp: &[f32] = match cached_b {
                        Some(p) => {
                            let off = p.offsets[ji * num_pc + pi];
                            &p.buf[off..off + nc.div_ceil(C) * kc * C]
                        }
                        None => {
                            pb.clear();
                            pack_b_panel::<C>(pb, b, b_rs, b_cs, pc, kc, jc, nc);
                            &pb[..]
                        }
                    };
                    for (ii, ic) in (0..m).step_by(MC).enumerate() {
                        let mc = MC.min(m - ic);
                        let ap: &[f32] = match cached_a {
                            Some(p) => {
                                let off = p.offsets[pi * num_ic + ii];
                                &p.buf[off..off + mc.div_ceil(R) * kc * R]
                            }
                            None => {
                                pa.clear();
                                pack_a_panel::<R>(pa, a, a_rs, a_cs, ic, mc, pc, kc);
                                &pa[..]
                            }
                        };
                        macro_kernel::<R, C>(ap, bp, mc, kc, nc, out, ic, jc, n);
                    }
                }
            }
        })
    });
}

/// Append an `mc×kc` panel of `A'` (rows `ic..`, depth `pc..`) to `dst`,
/// tile-major: tile `t` holds rows `[t*R, t*R+R)` as `kc` groups of `R`
/// adjacent values. Rows past `mc` pad with zeros so the micro-kernel
/// never branches on the edge.
#[allow(clippy::too_many_arguments)]
fn pack_a_panel<const R: usize>(
    dst: &mut Vec<f32>,
    a: &[f32],
    rs: usize,
    cs: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let tiles = mc.div_ceil(R);
    let base = dst.len();
    dst.resize(base + tiles * kc * R, 0.0);
    let dst = &mut dst[base..];
    for t in 0..tiles {
        let tile = &mut dst[t * kc * R..(t + 1) * kc * R];
        let rows = R.min(mc - t * R);
        for (p, group) in tile.chunks_exact_mut(R).enumerate() {
            for (r, slot) in group.iter_mut().take(rows).enumerate() {
                *slot = a[(ic + t * R + r) * rs + (pc + p) * cs];
            }
            // Slots past `rows` stay at the zero fill from `resize`.
        }
    }
}

/// Append a `kc×nc` panel of `B'` (depth `pc..`, columns `jc..`) to `dst`,
/// tile-major: tile `u` holds columns `[u*C, u*C+C)` as `kc` groups of `C`
/// adjacent values, zero-padded past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b_panel<const C: usize>(
    dst: &mut Vec<f32>,
    b: &[f32],
    rs: usize,
    cs: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let tiles = nc.div_ceil(C);
    let base = dst.len();
    dst.resize(base + tiles * kc * C, 0.0);
    let dst = &mut dst[base..];
    for u in 0..tiles {
        let tile = &mut dst[u * kc * C..(u + 1) * kc * C];
        let cols = C.min(nc - u * C);
        for (p, group) in tile.chunks_exact_mut(C).enumerate() {
            for (c, slot) in group.iter_mut().take(cols).enumerate() {
                *slot = b[(pc + p) * rs + (jc + u * C + c) * cs];
            }
        }
    }
}

/// Pack every `A'` panel of an `m×k` operand into `dst`, in the exact
/// order the blocked driver consumes them (`pc` outer, `ic` inner — the
/// driver indexes panel `(pi, ii)` at `offsets[pi*num_ic + ii]`).
fn pack_a_all<const R: usize>(
    dst: &mut Vec<f32>,
    offsets: &mut Vec<usize>,
    a: &[f32],
    rs: usize,
    cs: usize,
    m: usize,
    k: usize,
) {
    dst.clear();
    offsets.clear();
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for ic in (0..m).step_by(MC) {
            let mc = MC.min(m - ic);
            offsets.push(dst.len());
            pack_a_panel::<R>(dst, a, rs, cs, ic, mc, pc, kc);
        }
    }
}

/// Pack every `B'` panel of a `k×n` operand into `dst`, in the exact
/// order the blocked driver consumes them (`jc` outer, `pc` inner — the
/// driver indexes panel `(ji, pi)` at `offsets[ji*num_pc + pi]`).
fn pack_b_all<const C: usize>(
    dst: &mut Vec<f32>,
    offsets: &mut Vec<usize>,
    b: &[f32],
    rs: usize,
    cs: usize,
    k: usize,
    n: usize,
) {
    dst.clear();
    offsets.clear();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            offsets.push(dst.len());
            pack_b_panel::<C>(dst, b, rs, cs, pc, kc, jc, nc);
        }
    }
}

/// Multiply one packed `A` panel by one packed `B` panel, committing each
/// micro-tile's partial sum into `out` (`+=`, `out` pre-zeroed by the
/// driver on the first depth panel).
#[allow(clippy::too_many_arguments)]
fn macro_kernel<const R: usize, const C: usize>(
    pa: &[f32],
    pb: &[f32],
    mc: usize,
    kc: usize,
    nc: usize,
    out: &mut [f32],
    ic: usize,
    jc: usize,
    ldc: usize,
) {
    let row_tiles = mc.div_ceil(R);
    let col_tiles = nc.div_ceil(C);
    for t in 0..row_tiles {
        let ap = &pa[t * kc * R..(t + 1) * kc * R];
        let rows = R.min(mc - t * R);
        for u in 0..col_tiles {
            let bp = &pb[u * kc * C..(u + 1) * kc * C];
            let acc = micro_kernel::<R, C>(ap, bp);
            let cols = C.min(nc - u * C);
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                let row0 = (ic + t * R + r) * ldc + jc + u * C;
                let crow = &mut out[row0..row0 + cols];
                for (dst, v) in crow.iter_mut().zip(acc_row) {
                    *dst += v;
                }
            }
        }
    }
}

/// The `R×C` register block: `acc[r][c] += ap[p][r] * bp[p][c]` over the
/// packed depth dimension, in ascending `p`. Fixed-size arrays and
/// `chunks_exact` give LLVM exact trip counts, so the two inner loops
/// unroll into straight-line vector code with no bounds checks. Each
/// accumulator lane is an independent dot product, so the tile shape
/// never changes any output element's summation order.
#[inline]
fn micro_kernel<const R: usize, const C: usize>(ap: &[f32], bp: &[f32]) -> [[f32; C]; R] {
    let mut acc = [[0.0f32; C]; R];
    for (av, bv) in ap.chunks_exact(R).zip(bp.chunks_exact(C)) {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let a = av[r];
            for (c, slot) in acc_row.iter_mut().enumerate() {
                *slot += a * bv[c];
            }
        }
    }
    acc
}

/// Number of memoized packed operands a [`PanelCache`] retains. Sized for
/// one model's working set: per linear layer the forward (`N·N`) and
/// backward (`N·T`) packings of the weight, plus the conv layers' forward
/// and transposed weight packings, with slack for mixed workloads.
const PANEL_CACHE_CAP: usize = 12;

/// Identity of one memoized packed operand. Two lookups may share an
/// entry only if every field matches: the generation stamp pins the byte
/// content of the source tensor, the shape/stride fields pin which logical
/// operand view was packed, and the tile width pins the packed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PanelKey {
    stamp: u64,
    side: Side,
    /// Logical rows of the packed operand view (`m` for `A`, `k` for `B`).
    rows: usize,
    /// Logical columns of the packed view (`k` for `A`, `n` for `B`).
    cols: usize,
    rs: usize,
    cs: usize,
    /// Register-tile extent along the packed dimension (`R` for `A`
    /// panels, `C` for `B` panels) — wider tiles interleave differently.
    tile: usize,
}

/// One memoized packed operand (all panels concatenated in driver order).
#[derive(Debug, Clone, Default)]
struct PanelEntry {
    key: Option<PanelKey>,
    buf: Vec<f32>,
    offsets: Vec<usize>,
    last_used: u64,
}

/// A small memo of fully packed GEMM operands, keyed by the owning
/// tensor's generation stamp plus the packed view's shape, strides, and
/// tile width. Lives in model/conv scratch state so one training step (or
/// one evaluation sweep over many clients) packs each weight matrix once
/// per view instead of once per GEMM call.
///
/// Purely a performance structure: a hit replays byte-identical packed
/// panels (the stamp changes whenever the source tensor is mutated), so
/// results never depend on hits, misses, capacity, or eviction order.
#[derive(Debug, Clone, Default)]
pub struct PanelCache {
    entries: Vec<PanelEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl PanelCache {
    /// An empty cache.
    pub fn new() -> Self {
        PanelCache::default()
    }

    /// Lookups that replayed an existing packed operand.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to pack (first sight of a stamp/view, or after
    /// eviction).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop every memoized operand (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Find or build the entry for `key`; returns its index. Eviction is
    /// least-recently-used over a deterministic insertion order.
    fn ensure(
        &mut self,
        key: PanelKey,
        pack: impl FnOnce(&mut Vec<f32>, &mut Vec<usize>),
    ) -> usize {
        self.clock += 1;
        if let Some(i) = self.entries.iter().position(|e| e.key == Some(key)) {
            self.entries[i].last_used = self.clock;
            self.hits += 1;
            return i;
        }
        self.misses += 1;
        let i = if self.entries.len() < PANEL_CACHE_CAP {
            self.entries.push(PanelEntry::default());
            self.entries.len() - 1
        } else {
            self.entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache at capacity is non-empty")
        };
        let e = &mut self.entries[i];
        e.key = Some(key);
        e.last_used = self.clock;
        pack(&mut e.buf, &mut e.offsets);
        i
    }
}

/// Fused bias-add + ReLU forward over a row-major `[rows×cols]` activation
/// buffer: `y = max(y + bias, 0)` in one pass, recording the post-bias
/// positive mask for the backward pass. `mask` is cleared and refilled.
///
/// # Panics
///
/// Panics if `bias.len() != cols` or `y.len() != rows * cols`.
pub fn bias_relu_forward(
    y: &mut [f32],
    rows: usize,
    cols: usize,
    bias: &[f32],
    mask: &mut Vec<bool>,
) {
    assert_eq!(bias.len(), cols, "bias width mismatch");
    assert_eq!(y.len(), rows * cols, "activation buffer shape mismatch");
    mask.clear();
    mask.reserve(rows * cols);
    for row in y.chunks_exact_mut(cols) {
        for (v, &b) in row.iter_mut().zip(bias) {
            let z = *v + b;
            mask.push(z > 0.0);
            *v = if z > 0.0 { z } else { 0.0 };
        }
    }
}

/// Inference-only fused bias-add + ReLU (no mask recording).
///
/// # Panics
///
/// Panics if `bias.len() != cols` or `y.len() != rows * cols`.
pub fn bias_relu_inference(y: &mut [f32], rows: usize, cols: usize, bias: &[f32]) {
    assert_eq!(bias.len(), cols, "bias width mismatch");
    assert_eq!(y.len(), rows * cols, "activation buffer shape mismatch");
    for row in y.chunks_exact_mut(cols) {
        for (v, &b) in row.iter_mut().zip(bias) {
            let z = *v + b;
            *v = if z > 0.0 { z } else { 0.0 };
        }
    }
}

/// Fused ReLU-mask backward: zero `g[i]` wherever the forward activation
/// was non-positive, in place.
///
/// # Panics
///
/// Panics if `g.len() != mask.len()`.
pub fn relu_mask_backward(g: &mut [f32], mask: &[bool]) {
    assert_eq!(g.len(), mask.len(), "gradient/mask length mismatch");
    for (v, &keep) in g.iter_mut().zip(mask) {
        if !keep {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: plain triple loop, ascending-p accumulation.
    fn reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// The historical fixed-tile kernel: every wider variant must match it
    /// bit for bit, on every shape and stride pattern.
    #[allow(clippy::too_many_arguments)]
    fn gemm_4x8(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        a_rs: usize,
        a_cs: usize,
        b: &[f32],
        b_rs: usize,
        b_cs: usize,
        out: &mut [f32],
    ) {
        gemm_blocked::<4, 8>(
            m, k, n, a, a_rs, a_cs, b, b_rs, b_cs, None, None, out, false,
        );
    }

    fn pseudo(n: usize, salt: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt);
                ((h >> 40) as f32 / 8388608.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_nn_matches_reference_over_shapes() {
        // Shapes straddle every tile boundary: below, at, and above MR/NR,
        // and above KC to exercise multi-panel depth reduction.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (16, 24, 128),
            (16, 128, 10),
            (65, 300, 70),
        ] {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut out = vec![f32::NAN; m * n];
            gemm_nn(m, k, n, &a, &b, &mut out);
            let want = reference(m, k, n, &a, &b);
            for (i, (&got, &w)) in out.iter().zip(&want).enumerate() {
                assert!(
                    (got - w).abs() <= 1e-4 * w.abs().max(1.0),
                    "({m},{k},{n}) elem {i}: {got} vs {w}"
                );
            }
        }
    }

    #[test]
    fn gemm_nn_single_panel_is_bitwise_ascending_order() {
        // For k ≤ KC the kernel must reproduce the naive ascending-p sum
        // bit for bit — this is what keeps pinned experiment seeds valid.
        let (m, k, n) = (7, 129, 33);
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let mut out = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &mut out);
        assert_eq!(out, reference(m, k, n, &a, &b));
    }

    #[test]
    fn widened_tiles_match_4x8_bitwise_across_tile_boundaries() {
        // Every dispatchable shape class, with m and n straddling each
        // MR/NR boundary (below / at / above 4, 8, 16) and k crossing the
        // KC panel boundary: the dispatched kernel must equal the 4×8
        // reference bit for bit, because widening a register tile never
        // reorders any single element's reduction.
        for &m in &[1, 3, 4, 5, 7, 8, 9, 16, 17, 65] {
            for &n in &[1, 7, 8, 9, 15, 16, 17, 33] {
                for &k in &[1, 4, 129, 257] {
                    let a = pseudo(m * k, (m * 31 + n) as u64);
                    let b = pseudo(k * n, (n * 17 + k) as u64);
                    let mut got = vec![f32::NAN; m * n];
                    gemm_nn(m, k, n, &a, &b, &mut got);
                    let mut want = vec![f32::NAN; m * n];
                    gemm_4x8(m, k, n, &a, k, 1, &b, n, 1, &mut want);
                    let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                    let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(gb, wb, "({m},{k},{n}) diverged from the 4x8 tile");
                }
            }
        }
    }

    #[test]
    fn transposed_variants_match_4x8_bitwise() {
        // The strided views (T·N reads A column-major, N·T reads B
        // row-transposed) under every tile the dispatcher can pick.
        for &(m, k, n) in &[(9, 14, 11), (17, 40, 19), (8, 300, 16), (33, 12, 65)] {
            let a_tn = pseudo(k * m, 5);
            let b = pseudo(k * n, 6);
            let mut got = vec![0.0f32; m * n];
            gemm_tn(m, k, n, &a_tn, &b, &mut got);
            let mut want = vec![0.0f32; m * n];
            gemm_4x8(m, k, n, &a_tn, 1, m, &b, n, 1, &mut want);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tn ({m},{k},{n})"
            );
            let a = pseudo(m * k, 7);
            let b_nt = pseudo(n * k, 8);
            let mut got = vec![0.0f32; m * n];
            gemm_nt(m, k, n, &a, &b_nt, &mut got);
            let mut want = vec![0.0f32; m * n];
            gemm_4x8(m, k, n, &a, k, 1, &b_nt, 1, k, &mut want);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "nt ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn gemm_tn_matches_transposed_reference() {
        let (m, k, n) = (13, 6, 21); // A stored [k×m]
        let a = pseudo(k * m, 5);
        let b = pseudo(k * n, 6);
        let mut at = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let mut out = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a, &b, &mut out);
        assert_eq!(out, reference(m, k, n, &at, &b));
    }

    #[test]
    fn gemm_nt_matches_transposed_reference() {
        let (m, k, n) = (9, 14, 11); // B stored [n×k]
        let a = pseudo(m * k, 7);
        let b = pseudo(n * k, 8);
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let mut out = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &b, &mut out);
        assert_eq!(out, reference(m, k, n, &a, &bt));
    }

    #[test]
    fn accumulate_variants_add_to_existing() {
        let (m, k, n) = (5, 4, 6);
        let a = pseudo(m * k, 9);
        let b = pseudo(k * n, 10);
        let mut out = vec![1.0f32; m * n];
        gemm_nn_acc(m, k, n, &a, &b, &mut out);
        let want = reference(m, k, n, &a, &b);
        for (got, w) in out.iter().zip(&want) {
            assert!((got - (w + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_k_zeroes_output_unless_accumulating() {
        let mut out = vec![3.0f32; 4];
        gemm_nn(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
        let mut out = vec![3.0f32; 4];
        gemm_nn_acc(2, 0, 2, &[], &[], &mut out);
        assert_eq!(out, vec![3.0; 4]);
    }

    #[test]
    fn nan_propagates_through_gemm() {
        // The old zero-skip silently dropped `0 * NaN`; the kernel must
        // keep IEEE semantics so poisoned payloads reach quarantine.
        let a = [0.0f32, 0.0];
        let b = [f32::NAN, 1.0, 2.0, 3.0];
        let mut out = [0.0f32; 2];
        gemm_nn(1, 2, 2, &a, &b, &mut out);
        assert!(out[0].is_nan(), "0·NaN must stay NaN");
    }

    #[test]
    fn panel_cache_hits_replay_bitwise_identical_results() {
        let (m, k, n) = (16, 24, 128);
        let a = pseudo(m * k, 11);
        let b = pseudo(k * n, 12);
        let mut cache = PanelCache::new();
        let mut uncached = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &mut uncached);
        let mut first = vec![0.0f32; m * n];
        gemm_nn_b_cached(m, k, n, &a, &b, 77, &mut first, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let mut second = vec![f32::NAN; m * n];
        gemm_nn_b_cached(m, k, n, &a, &b, 77, &mut second, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        for ((u, f), s) in uncached.iter().zip(&first).zip(&second) {
            assert_eq!(u.to_bits(), f.to_bits());
            assert_eq!(u.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn panel_cache_misses_on_stamp_shape_and_view_changes() {
        let (m, k, n) = (8, 10, 16);
        let a = pseudo(m * k, 13);
        let b = pseudo(k * n, 14);
        let mut cache = PanelCache::new();
        let mut out = vec![0.0f32; m * n];
        gemm_nn_b_cached(m, k, n, &a, &b, 1, &mut out, &mut cache);
        // A new stamp (mutated tensor) must repack.
        gemm_nn_b_cached(m, k, n, &a, &b, 2, &mut out, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // The transposed view of the same stamp is a distinct entry...
        let bt = pseudo(n * k, 15);
        let mut out_t = vec![0.0f32; m * n];
        gemm_nt_b_cached(m, k, n, &a, &bt, 2, &mut out_t, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        // ...and each repeat lookup hits its own entry.
        gemm_nn_b_cached(m, k, n, &a, &b, 2, &mut out, &mut cache);
        gemm_nt_b_cached(m, k, n, &a, &bt, 2, &mut out_t, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (2, 3));
    }

    #[test]
    fn panel_cache_eviction_keeps_results_correct() {
        // Thrash far past capacity with distinct stamps; every call must
        // still match the uncached kernel bit for bit.
        let (m, k, n) = (5, 7, 9);
        let a = pseudo(m * k, 16);
        let mut cache = PanelCache::new();
        for stamp in 0..(PANEL_CACHE_CAP as u64 * 3) {
            let b = pseudo(k * n, 100 + stamp);
            let mut got = vec![0.0f32; m * n];
            gemm_nn_b_cached(m, k, n, &a, &b, stamp, &mut got, &mut cache);
            let mut want = vec![0.0f32; m * n];
            gemm_nn(m, k, n, &a, &b, &mut want);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "stamp {stamp}"
            );
        }
        assert_eq!(cache.misses(), PANEL_CACHE_CAP as u64 * 3);
    }

    #[test]
    fn a_side_cache_matches_uncached_for_conv_views() {
        // The conv forward (N·N, A cached) and backward (T·N, A cached)
        // views over one weight stamp.
        let (oc, fan_in, hw) = (8, 18, 64);
        let w = pseudo(oc * fan_in, 17);
        let cols = pseudo(fan_in * hw, 18);
        let mut cache = PanelCache::new();
        let mut got = vec![0.0f32; oc * hw];
        gemm_nn_a_cached(oc, fan_in, hw, &w, 9, &cols, &mut got, &mut cache);
        let mut want = vec![0.0f32; oc * hw];
        gemm_nn(oc, fan_in, hw, &w, &cols, &mut want);
        assert_eq!(got, want);
        // Backward: fan_in×hw = weightᵀ · g, weight stored [oc × fan_in].
        let g = pseudo(oc * hw, 19);
        let mut got_t = vec![0.0f32; fan_in * hw];
        gemm_tn_a_cached(fan_in, oc, hw, &w, 9, &g, &mut got_t, &mut cache);
        let mut want_t = vec![0.0f32; fan_in * hw];
        gemm_tn(fan_in, oc, hw, &w, &g, &mut want_t);
        assert_eq!(got_t, want_t);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // Replaying both views hits both entries.
        gemm_nn_a_cached(oc, fan_in, hw, &w, 9, &cols, &mut got, &mut cache);
        gemm_tn_a_cached(fan_in, oc, hw, &w, 9, &g, &mut got_t, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn bias_relu_forward_matches_separate_passes() {
        let rows = 3;
        let cols = 5;
        let mut y = pseudo(rows * cols, 11);
        let bias = pseudo(cols, 12);
        let mut want = y.clone();
        for row in want.chunks_exact_mut(cols) {
            for (v, &b) in row.iter_mut().zip(&bias) {
                *v += b;
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        let mut mask = Vec::new();
        bias_relu_forward(&mut y, rows, cols, &bias, &mut mask);
        assert_eq!(y, want);
        for (v, &keep) in y.iter().zip(&mask) {
            assert_eq!(keep, *v > 0.0);
        }
    }

    #[test]
    fn relu_mask_backward_zeroes_dead_units() {
        let mut g = vec![1.0f32, 2.0, 3.0];
        relu_mask_backward(&mut g, &[true, false, true]);
        assert_eq!(g, vec![1.0, 0.0, 3.0]);
    }
}
