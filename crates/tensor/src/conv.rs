//! 2-D convolution and max-pooling layers with manual backpropagation.
//!
//! The FL experiments drive an MLP proxy for speed, but the substrate a
//! downstream user adopts needs convolutional models — the paper's
//! workloads are CNNs. Convolution lowers each sample to a column matrix
//! (im2col) and runs the blocked GEMM kernels from [`crate::kernels`]:
//! forward is `weight · cols`, the weight gradient is `grad_out · colsᵀ`,
//! and the input gradient is `weightᵀ · grad_out` scattered back through
//! col2im. The column buffer lives on the layer and is reused across
//! samples and batches, so steady-state training does not allocate.
//!
//! Feature maps are packed row-major as `[batch, channel, y, x]` inside
//! the 2-D [`Tensor`] type: each batch row holds `channels * height *
//! width` values. The [`FeatureShape`] helper owns the indexing.

use rand::Rng;

use crate::kernels;
use crate::rng::seed_rng;
use crate::{Tensor, TensorError};

/// Shape of a packed feature map: `channels × height × width` per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureShape {
    /// Channel count.
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl FeatureShape {
    /// Construct a shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        FeatureShape {
            channels,
            height,
            width,
        }
    }

    /// Values per sample.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Whether the shape is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat offset of `(c, y, x)` within one sample.
    fn at(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.height + y) * self.width + x
    }
}

/// Lower one sample to its column matrix: `cols[(ic·k + ky)·k + kx][y·w + x]`
/// holds `x[ic][y + ky - half][x + kx - half]`, or `0.0` where the shifted
/// index falls in the zero padding. `cols` must be `fan_in × (h·w)`.
fn im2col(input: FeatureShape, kernel: usize, xin: &[f32], cols: &mut [f32]) {
    let (h, w) = (input.height, input.width);
    let hw = h * w;
    let half = (kernel / 2) as isize;
    let mut row = 0usize;
    for ic in 0..input.channels {
        let chan = &xin[ic * hw..(ic + 1) * hw];
        for ky in 0..kernel {
            let dy = ky as isize - half;
            for kx in 0..kernel {
                let dx = kx as isize - half;
                let dst = &mut cols[row * hw..(row + 1) * hw];
                for y in 0..h {
                    let yy = y as isize + dy;
                    let drow = &mut dst[y * w..(y + 1) * w];
                    if yy < 0 || yy >= h as isize {
                        drow.fill(0.0);
                        continue;
                    }
                    let srow = &chan[yy as usize * w..(yy as usize + 1) * w];
                    for (x, d) in drow.iter_mut().enumerate() {
                        let xx = x as isize + dx;
                        *d = if xx < 0 || xx >= w as isize {
                            0.0
                        } else {
                            srow[xx as usize]
                        };
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-add the column-matrix gradient back onto
/// the (flat) input-gradient sample. Padding positions are dropped.
fn col2im_acc(input: FeatureShape, kernel: usize, gcols: &[f32], gin: &mut [f32]) {
    let (h, w) = (input.height, input.width);
    let hw = h * w;
    let half = (kernel / 2) as isize;
    let mut row = 0usize;
    for ic in 0..input.channels {
        for ky in 0..kernel {
            let dy = ky as isize - half;
            for kx in 0..kernel {
                let dx = kx as isize - half;
                let src = &gcols[row * hw..(row + 1) * hw];
                for y in 0..h {
                    let yy = y as isize + dy;
                    if yy < 0 || yy >= h as isize {
                        continue;
                    }
                    let srow = &src[y * w..(y + 1) * w];
                    for (x, &g) in srow.iter().enumerate() {
                        let xx = x as isize + dx;
                        if xx >= 0 && xx < w as isize {
                            gin[input.at(ic, yy as usize, xx as usize)] += g;
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

/// A 2-D convolution with stride 1 and zero ("same") padding of
/// `kernel / 2`, so output spatial dims equal input spatial dims for odd
/// kernels.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Input feature shape.
    pub input: FeatureShape,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel side length (odd).
    pub kernel: usize,
    /// Weights, `[out_channels, in_channels * kernel * kernel]`.
    pub weight: Tensor,
    /// Bias, `[1, out_channels]`.
    pub bias: Tensor,
    /// Weight gradient, filled by [`Conv2d::backward`].
    pub grad_weight: Tensor,
    /// Bias gradient, filled by [`Conv2d::backward`].
    pub grad_bias: Tensor,
    cached_input: Option<Tensor>,
    /// Reusable im2col column buffer, `[fan_in, h·w]`.
    cols: Tensor,
    /// Reusable column-gradient buffer for the backward pass.
    grad_cols: Tensor,
    /// Packed-panel memo for the weight operand: the per-sample GEMM loops
    /// replay one packed weight across the whole batch (forward) and one
    /// packed transposed view (backward) instead of re-packing per sample.
    panels: kernels::PanelCache,
}

impl Conv2d {
    /// Create a layer with He-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even (the "same" padding scheme requires odd
    /// kernels) or any dimension is zero.
    pub fn new(input: FeatureShape, out_channels: usize, kernel: usize, seed: u64) -> Self {
        assert!(kernel % 2 == 1, "kernel must be odd for same-padding");
        assert!(
            !input.is_empty() && out_channels > 0,
            "degenerate convolution shape"
        );
        let fan_in = input.channels * kernel * kernel;
        let bound = (6.0f32 / fan_in as f32).sqrt();
        let mut rng = seed_rng(seed);
        let data = (0..out_channels * fan_in)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Conv2d {
            input,
            out_channels,
            kernel,
            weight: Tensor::from_vec(out_channels, fan_in, data)
                .expect("weight buffer sized by construction"),
            bias: Tensor::zeros(1, out_channels),
            grad_weight: Tensor::zeros(out_channels, fan_in),
            grad_bias: Tensor::zeros(1, out_channels),
            cached_input: None,
            cols: Tensor::default(),
            grad_cols: Tensor::default(),
            panels: kernels::PanelCache::new(),
        }
    }

    /// Output feature shape (same spatial dims, `out_channels` channels).
    pub fn output_shape(&self) -> FeatureShape {
        FeatureShape::new(self.out_channels, self.input.height, self.input.width)
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn check_input(&self, x: &Tensor) -> Result<(), TensorError> {
        if x.cols() != self.input.len() {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![self.input.channels, self.input.height, self.input.width],
            });
        }
        Ok(())
    }

    /// im2col + GEMM forward for every sample, writing into a fresh output
    /// tensor. `cols` is the reusable column buffer (resized as needed);
    /// `panels` memoizes the packed weight across the batch loop.
    fn forward_impl(
        &self,
        x: &Tensor,
        cols: &mut Tensor,
        panels: &mut kernels::PanelCache,
    ) -> Tensor {
        let n = x.rows();
        let out_shape = self.output_shape();
        let hw = self.input.height * self.input.width;
        let fan_in = self.weight.cols();
        cols.resize(fan_in, hw);
        let mut out = Tensor::zeros(n, out_shape.len());
        for b in 0..n {
            im2col(self.input, self.kernel, x.row(b), cols.data_mut());
            let orow = &mut out.data_mut()[b * out_shape.len()..(b + 1) * out_shape.len()];
            kernels::gemm_nn_a_cached(
                self.out_channels,
                fan_in,
                hw,
                self.weight.data(),
                self.weight.stamp(),
                cols.data(),
                orow,
                panels,
            );
            for (oc, seg) in orow.chunks_exact_mut(hw).enumerate() {
                let bv = self.bias.at(0, oc);
                for v in seg {
                    *v += bv;
                }
            }
        }
        out
    }

    /// Forward pass; caches the input for backward.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not pack `input` features.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.check_input(x)?;
        let mut cols = std::mem::take(&mut self.cols);
        let mut panels = std::mem::take(&mut self.panels);
        let out = self.forward_impl(x, &mut cols, &mut panels);
        self.cols = cols;
        self.panels = panels;
        self.cached_input = Some(x.clone());
        Ok(out)
    }

    /// Inference-only forward pass. Uses a local column buffer (reused
    /// across the samples of the batch) so `&self` suffices.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not pack `input` features.
    pub fn forward_inference(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.check_input(x)?;
        let mut cols = Tensor::default();
        // A call-local cache still amortizes the weight packing across the
        // samples of the batch (pack once, replay `n - 1` times).
        let mut panels = kernels::PanelCache::new();
        Ok(self.forward_impl(x, &mut cols, &mut panels))
    }

    /// Backward pass: fills `grad_weight` / `grad_bias` and returns the
    /// gradient w.r.t. the input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let x = self
            .cached_input
            .take()
            .ok_or_else(|| TensorError::InvalidData("backward before forward".into()))?;
        let n = x.rows();
        let out_shape = self.output_shape();
        if grad_out.rows() != n || grad_out.cols() != out_shape.len() {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_backward",
                lhs: vec![grad_out.rows(), grad_out.cols()],
                rhs: vec![n, out_shape.len()],
            });
        }
        let hw = self.input.height * self.input.width;
        let fan_in = self.weight.cols();
        self.grad_weight.data_mut().fill(0.0);
        self.grad_bias.data_mut().fill(0.0);
        let mut grad_in = Tensor::zeros(n, self.input.len());
        let mut cols = std::mem::take(&mut self.cols);
        let mut gcols = std::mem::take(&mut self.grad_cols);
        let mut panels = std::mem::take(&mut self.panels);
        cols.resize(fan_in, hw);
        gcols.resize(fan_in, hw);
        for b in 0..n {
            im2col(self.input, self.kernel, x.row(b), cols.data_mut());
            let g = grad_out.row(b);
            // grad_weight += grad_out · colsᵀ  (accumulated across the batch).
            kernels::gemm_nt_acc(
                self.out_channels,
                hw,
                fan_in,
                g,
                cols.data(),
                self.grad_weight.data_mut(),
            );
            for (oc, seg) in g.chunks_exact(hw).enumerate() {
                let s: f32 = seg.iter().sum();
                let cur = self.grad_bias.at(0, oc);
                self.grad_bias.set(0, oc, cur + s);
            }
            // grad_cols = weightᵀ · grad_out, scattered back through col2im.
            kernels::gemm_tn_a_cached(
                fan_in,
                self.out_channels,
                hw,
                self.weight.data(),
                self.weight.stamp(),
                g,
                gcols.data_mut(),
                &mut panels,
            );
            col2im_acc(
                self.input,
                self.kernel,
                gcols.data(),
                &mut grad_in.data_mut()[b * self.input.len()..(b + 1) * self.input.len()],
            );
        }
        self.cols = cols;
        self.grad_cols = gcols;
        self.panels = panels;
        Ok(grad_in)
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Debug, Clone)]
pub struct MaxPool2 {
    /// Input feature shape (height and width must be even).
    pub input: FeatureShape,
    /// Argmax indices cached by the forward pass, one per output value.
    argmax: Vec<usize>,
    batch: usize,
}

impl MaxPool2 {
    /// Create a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if height or width is odd.
    pub fn new(input: FeatureShape) -> Self {
        assert!(
            input.height.is_multiple_of(2) && input.width.is_multiple_of(2),
            "max-pool input dims must be even"
        );
        MaxPool2 {
            input,
            argmax: Vec::new(),
            batch: 0,
        }
    }

    /// Output feature shape (halved spatial dims).
    pub fn output_shape(&self) -> FeatureShape {
        FeatureShape::new(
            self.input.channels,
            self.input.height / 2,
            self.input.width / 2,
        )
    }

    /// Forward pass; caches argmax positions for backward.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not pack `input` features.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        if x.cols() != self.input.len() {
            return Err(TensorError::ShapeMismatch {
                op: "maxpool2",
                lhs: vec![x.rows(), x.cols()],
                rhs: vec![self.input.channels, self.input.height, self.input.width],
            });
        }
        let n = x.rows();
        let out_shape = self.output_shape();
        let mut out = Tensor::zeros(n, out_shape.len());
        self.argmax.clear();
        self.argmax.resize(n * out_shape.len(), 0);
        self.batch = n;
        for b in 0..n {
            let xin = x.row(b);
            for c in 0..self.input.channels {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let i = self.input.at(c, oy * 2 + dy, ox * 2 + dx);
                                if xin[i] > best {
                                    best = xin[i];
                                    best_i = i;
                                }
                            }
                        }
                        let o = out_shape.at(c, oy, ox);
                        out.data_mut()[b * out_shape.len() + o] = best;
                        self.argmax[b * out_shape.len() + o] = best_i;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Backward pass: routes each gradient to the argmax position.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] if called before `forward` or
    /// with a mismatched batch.
    pub fn backward(&self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let out_shape = self.output_shape();
        if grad_out.rows() != self.batch || grad_out.cols() != out_shape.len() {
            return Err(TensorError::InvalidData(
                "maxpool backward called with mismatched batch".into(),
            ));
        }
        let mut grad_in = Tensor::zeros(self.batch, self.input.len());
        for b in 0..self.batch {
            for o in 0..out_shape.len() {
                let src = self.argmax[b * out_shape.len() + o];
                grad_in.data_mut()[b * self.input.len() + src] += grad_out.row(b)[o];
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_shape() -> FeatureShape {
        FeatureShape::new(2, 4, 4)
    }

    fn sample_input(shape: FeatureShape, n: usize, seed: u64) -> Tensor {
        let mut rng = seed_rng(seed);
        let data = (0..n * shape.len())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(n, shape.len(), data).expect("sized by construction")
    }

    #[test]
    fn conv_preserves_spatial_dims() {
        let mut conv = Conv2d::new(tiny_shape(), 3, 3, 1);
        let x = sample_input(tiny_shape(), 2, 5);
        let y = conv.forward(&x).expect("valid input");
        assert_eq!(y.rows(), 2);
        assert_eq!(y.cols(), 3 * 4 * 4);
    }

    #[test]
    fn conv_rejects_wrong_width() {
        let mut conv = Conv2d::new(tiny_shape(), 3, 3, 1);
        assert!(conv.forward(&Tensor::zeros(1, 7)).is_err());
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        // A 1x1 conv with identity weights on one channel copies the input.
        let shape = FeatureShape::new(1, 4, 4);
        let mut conv = Conv2d::new(shape, 1, 1, 1);
        conv.weight.set(0, 0, 1.0);
        let x = sample_input(shape, 1, 2);
        let y = conv.forward_inference(&x).expect("valid");
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn conv_weight_gradient_matches_finite_difference() {
        let shape = FeatureShape::new(1, 4, 4);
        let mut conv = Conv2d::new(shape, 2, 3, 3);
        let x = sample_input(shape, 2, 7);
        // Loss = sum of outputs; dL/dout = ones.
        let loss =
            |c: &Conv2d| -> f32 { c.forward_inference(&x).expect("valid").data().iter().sum() };
        let eps = 1e-2;
        for &(r, cc) in &[(0usize, 0usize), (1, 4), (0, 8)] {
            let base = conv.weight.at(r, cc);
            conv.weight.set(r, cc, base + eps);
            let up = loss(&conv);
            conv.weight.set(r, cc, base - eps);
            let down = loss(&conv);
            conv.weight.set(r, cc, base);
            let numeric = (up - down) / (2.0 * eps);

            let y = conv.forward(&x).expect("valid");
            let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]).expect("sized");
            conv.backward(&ones).expect("after forward");
            let analytic = conv.grad_weight.at(r, cc);
            assert!(
                (numeric - analytic).abs() < 0.05 * numeric.abs().max(1.0),
                "w[{r},{cc}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let shape = FeatureShape::new(1, 4, 4);
        let mut conv = Conv2d::new(shape, 2, 3, 3);
        let mut x = sample_input(shape, 1, 9);
        let loss = |c: &Conv2d, x: &Tensor| -> f32 {
            c.forward_inference(x).expect("valid").data().iter().sum()
        };
        let y = conv.forward(&x).expect("valid");
        let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]).expect("sized");
        let grad_in = conv.backward(&ones).expect("after forward");
        let eps = 1e-2;
        for i in [0usize, 5, 10, 15] {
            let base = x.data()[i];
            x.data_mut()[i] = base + eps;
            let up = loss(&conv, &x);
            x.data_mut()[i] = base - eps;
            let down = loss(&conv, &x);
            x.data_mut()[i] = base;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grad_in.data()[i];
            assert!(
                (numeric - analytic).abs() < 0.05 * numeric.abs().max(1.0),
                "x[{i}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_backward_requires_forward() {
        let mut conv = Conv2d::new(tiny_shape(), 1, 3, 1);
        assert!(conv.backward(&Tensor::zeros(1, 16)).is_err());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_panics() {
        let _ = Conv2d::new(tiny_shape(), 1, 2, 1);
    }

    #[test]
    fn pool_halves_and_takes_max() {
        let shape = FeatureShape::new(1, 2, 2);
        let mut pool = MaxPool2::new(shape);
        let x = Tensor::from_vec(1, 4, vec![1.0, 5.0, -2.0, 3.0]).expect("sized");
        let y = pool.forward(&x).expect("valid");
        assert_eq!(y.cols(), 1);
        assert_eq!(y.data()[0], 5.0);
    }

    #[test]
    fn pool_backward_routes_to_argmax() {
        let shape = FeatureShape::new(1, 2, 2);
        let mut pool = MaxPool2::new(shape);
        let x = Tensor::from_vec(1, 4, vec![1.0, 5.0, -2.0, 3.0]).expect("sized");
        let _ = pool.forward(&x).expect("valid");
        let g = Tensor::from_vec(1, 1, vec![2.0]).expect("sized");
        let gx = pool.backward(&g).expect("after forward");
        assert_eq!(gx.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_gradient_conserves_mass() {
        let shape = FeatureShape::new(2, 4, 4);
        let mut pool = MaxPool2::new(shape);
        let x = sample_input(shape, 3, 11);
        let y = pool.forward(&x).expect("valid");
        let g = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]).expect("sized");
        let gx = pool.backward(&g).expect("after forward");
        let out_sum: f32 = g.data().iter().sum();
        let in_sum: f32 = gx.data().iter().sum();
        assert!((out_sum - in_sum).abs() < 1e-4);
    }

    #[test]
    fn small_cnn_learns_a_spatial_task() {
        // Classify whether the bright quadrant is top-left or bottom-right:
        // linear in pixels only through spatial structure.
        let shape = FeatureShape::new(1, 4, 4);
        let mut rng = seed_rng(13);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..128 {
            let cls = i % 2;
            let mut img = vec![0.0f32; 16];
            for y in 0..2 {
                for x in 0..2 {
                    let (yy, xx) = if cls == 0 { (y, x) } else { (y + 2, x + 2) };
                    img[yy * 4 + xx] = 1.0 + rng.gen_range(-0.2f32..0.2);
                }
            }
            for v in &mut img {
                *v += rng.gen_range(-0.1f32..0.1);
            }
            xs.push(img);
            ys.push(cls);
        }
        let n = xs.len();
        let flat: Vec<f32> = xs.concat();
        let x = Tensor::from_vec(n, 16, flat).expect("sized");

        let mut conv = Conv2d::new(shape, 4, 3, 3);
        let mut pool = MaxPool2::new(conv.output_shape());
        let mut head = crate::layers::Linear::new(pool.output_shape().len(), 2, 5);
        let mut opt_params = crate::optim::Sgd::new(0.1);

        let mut final_acc = 0.0;
        for _epoch in 0..60 {
            let h1 = conv.forward(&x).expect("valid");
            let h2 = pool.forward(&h1).expect("valid");
            let logits = head.forward(&h2).expect("valid");
            let (_, grad) =
                crate::loss::softmax_cross_entropy(&logits, &ys).expect("labels in range");
            let g2 = head.backward(&grad).expect("after forward");
            let g1 = pool.backward(&g2).expect("after forward");
            let _ = conv.backward(&g1).expect("after forward");
            // SGD over all three layers' flat params.
            let mut params: Vec<f32> = Vec::new();
            params.extend_from_slice(conv.weight.data());
            params.extend_from_slice(conv.bias.data());
            params.extend_from_slice(head.weight.data());
            params.extend_from_slice(head.bias.data());
            let mut grads: Vec<f32> = Vec::new();
            grads.extend_from_slice(conv.grad_weight.data());
            grads.extend_from_slice(conv.grad_bias.data());
            grads.extend_from_slice(head.grad_weight.data());
            grads.extend_from_slice(head.grad_bias.data());
            opt_params.step(&mut params, &grads);
            let (cw, rest) = params.split_at(conv.weight.len());
            let (cb, rest) = rest.split_at(conv.bias.len());
            let (hw, hb) = rest.split_at(head.weight.len());
            conv.weight.data_mut().copy_from_slice(cw);
            conv.bias.data_mut().copy_from_slice(cb);
            head.weight.data_mut().copy_from_slice(hw);
            head.bias.data_mut().copy_from_slice(hb);

            let logits = head
                .forward_inference(
                    &pool
                        .forward(&conv.forward_inference(&x).expect("valid"))
                        .expect("valid"),
                )
                .expect("valid");
            final_acc = crate::loss::accuracy(&logits, &ys);
        }
        assert!(final_acc > 0.9, "cnn accuracy {final_acc}");
    }
}
