//! Row-major dense `f32` tensors with the handful of kernels the MLP
//! substrate needs: matmul, transpose-matmul variants, elementwise ops,
//! and reductions.
//!
//! The matrix products delegate to the blocked, register-tiled kernels in
//! [`crate::kernels`]; the `*_into` variants write into caller-owned
//! scratch so steady-state training performs no heap allocation.

use crate::{kernels, TensorError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of generation stamps. Stamp 0 is reserved for default-constructed
/// (empty) tensors, which never reach a GEMM with nonzero dimensions.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// A row-major, 2-D dense `f32` tensor.
///
/// All model math in the reproduction is rank-2 (`[batch, features]` or
/// `[in, out]` weight matrices); bias vectors are represented as `[1, n]`.
///
/// Every tensor carries a *generation stamp* (see [`Tensor::stamp`]): a
/// process-unique `u64` reassigned on every mutation. Two tensors observed
/// with the same stamp are guaranteed to hold identical bytes, which is what
/// lets [`kernels::PanelCache`] memoize packed GEMM operands safely.
#[derive(Debug, Clone, Default)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    stamp: u64,
}

/// Equality is content equality: the generation stamp is a cache-identity
/// token, not part of a tensor's value.
impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl Tensor {
    /// Create a tensor of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            stamp: fresh_stamp(),
        }
    }

    /// Create a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidData`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidData(format!(
                "buffer of length {} cannot fill a {}x{} tensor",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Tensor {
            rows,
            cols,
            data,
            stamp: fresh_stamp(),
        })
    }

    /// Generation stamp: a process-unique id reassigned whenever the
    /// tensor's contents may have changed. Clones share their source's
    /// stamp (their bytes are identical); any mutable access takes a new
    /// one. Cache keys derived from a stamp are therefore never stale.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Mark the contents as (potentially) changed. Called from every
    /// mutating method; deliberately cheap enough to over-approximate
    /// (a `data_mut` that writes nothing still re-stamps).
    fn touch(&mut self) {
        self.stamp = fresh_stamp();
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.touch();
        &mut self.data
    }

    /// Element accessor (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds (debug and release).
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Set element (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.touch();
        self.data[row * self.cols + col] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshape in place to `rows × cols`, reusing the existing buffer.
    /// Contents after the call are unspecified; callers overwrite.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.touch();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Matrix multiplication `self (m×k) · rhs (k×n) → m×n`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = Tensor::default();
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::matmul`] writing into caller scratch (resized as needed,
    /// allocation-free once `out` has capacity).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        out.resize(m, n);
        kernels::gemm_nn(m, k, n, &self.data, &rhs.data, &mut out.data);
        Ok(())
    }

    /// [`Tensor::matmul_into`] with `rhs`'s packed panels memoized in
    /// `cache`, keyed by `rhs.stamp()`. Bitwise-identical to the uncached
    /// call; use when the same right operand (a weight matrix) recurs
    /// across calls.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul_into_cached(
        &self,
        rhs: &Tensor,
        out: &mut Tensor,
        cache: &mut kernels::PanelCache,
    ) -> Result<(), TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        out.resize(m, n);
        kernels::gemm_nn_b_cached(
            m,
            k,
            n,
            &self.data,
            &rhs.data,
            rhs.stamp,
            &mut out.data,
            cache,
        );
        Ok(())
    }

    /// `selfᵀ (k×m)ᵀ · rhs (m×n) → k×n` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when row counts disagree.
    pub fn t_matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = Tensor::default();
        self.t_matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::t_matmul`] writing into caller scratch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when row counts disagree.
    pub fn t_matmul_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "t_matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        out.resize(m, n);
        kernels::gemm_tn(m, k, n, &self.data, &rhs.data, &mut out.data);
        Ok(())
    }

    /// `self (m×k) · rhsᵀ (n×k)ᵀ → m×n` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when column counts disagree.
    pub fn matmul_t(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = Tensor::default();
        self.matmul_t_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::matmul_t`] writing into caller scratch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when column counts disagree.
    pub fn matmul_t_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_t",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.resize(m, n);
        kernels::gemm_nt(m, k, n, &self.data, &rhs.data, &mut out.data);
        Ok(())
    }

    /// [`Tensor::matmul_t_into`] with `rhs`'s packed (transposed-view)
    /// panels memoized in `cache`, keyed by `rhs.stamp()`. Bitwise-identical
    /// to the uncached call.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when column counts disagree.
    pub fn matmul_t_into_cached(
        &self,
        rhs: &Tensor,
        out: &mut Tensor,
        cache: &mut kernels::PanelCache,
    ) -> Result<(), TensorError> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_t",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        out.resize(m, n);
        kernels::gemm_nt_b_cached(
            m,
            k,
            n,
            &self.data,
            &rhs.data,
            rhs.stamp,
            &mut out.data,
            cache,
        );
        Ok(())
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// In-place elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes disagree.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<(), TensorError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        self.touch();
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// Add a `[1, cols]` bias row to every row of the tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias` is not `[1, cols]`.
    pub fn add_row_broadcast(&mut self, bias: &Tensor) -> Result<(), TensorError> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: vec![self.rows, self.cols],
                rhs: vec![bias.rows, bias.cols],
            });
        }
        self.touch();
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter_mut().zip(&bias.data) {
                *a += b;
            }
        }
        Ok(())
    }

    /// Sum over rows, producing a `[1, cols]` tensor (used for bias grads).
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::default();
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Tensor::sum_rows`] writing into caller scratch.
    pub fn sum_rows_into(&self, out: &mut Tensor) {
        out.resize(1, self.cols);
        out.data.fill(0.0);
        if self.cols == 0 {
            return;
        }
        for row in self.data.chunks_exact(self.cols) {
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f32) {
        self.touch();
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = t(2, 3, &[0.0; 6]);
        let b = t(2, 3, &[0.0; 6]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let fused = a.t_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(4, 3, &[1.0; 12]);
        let fused = a.matmul_t(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fused, explicit);
    }

    #[test]
    fn broadcast_bias() {
        let mut a = Tensor::zeros(2, 3);
        let bias = t(1, 3, &[1.0, 2.0, 3.0]);
        a.add_row_broadcast(&bias).unwrap();
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_collapses() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let s = a.sum_rows();
        assert_eq!(s.data(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_picks_peak() {
        let a = t(2, 3, &[0.1, 0.9, 0.0, 0.5, 0.2, 0.8]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matmul_propagates_nan_through_zero_rows() {
        // Regression: the old kernel skipped `a == 0.0` per element, so a
        // zero activation silently swallowed a NaN weight (`0 * NaN` must
        // stay NaN for the server-side quarantine to ever see it).
        let a = t(1, 2, &[0.0, 0.0]);
        let b = t(2, 2, &[f32::NAN, 1.0, 2.0, 3.0]);
        let c = a.matmul(&b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN swallowed in matmul");
        let c = a.t_matmul(&t(1, 2, &[f32::NAN, 1.0])).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN swallowed in t_matmul");
        let c = t(1, 2, &[0.0, 0.0])
            .matmul_t(&t(1, 2, &[f32::NAN, 1.0]))
            .unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN swallowed in matmul_t");
    }

    #[test]
    fn matmul_propagates_inf() {
        let a = t(1, 2, &[1.0, 0.0]);
        let b = t(2, 1, &[f32::INFINITY, 5.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data()[0], f32::INFINITY);
    }

    #[test]
    fn into_variants_reuse_scratch_and_match() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Tensor::zeros(9, 9); // wrong shape: must be resized
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        a.t_matmul_into(&a, &mut out).unwrap();
        assert_eq!(out, a.transpose().matmul(&a).unwrap());
        a.matmul_t_into(&a, &mut out).unwrap();
        assert_eq!(out, a.matmul(&a.transpose()).unwrap());
        let mut s = Tensor::default();
        a.sum_rows_into(&mut s);
        assert_eq!(s, a.sum_rows());
    }

    #[test]
    fn stamps_track_mutation_and_equality_ignores_them() {
        let mut a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let cloned = a.clone();
        // A clone's bytes are identical, so it legitimately shares identity.
        assert_eq!(cloned.stamp(), a.stamp());
        let before = a.stamp();
        a.set(0, 0, 9.0);
        assert_ne!(a.stamp(), before, "set must re-stamp");
        let before = a.stamp();
        a.data_mut()[0] = 1.0;
        assert_ne!(a.stamp(), before, "data_mut must re-stamp");
        let before = a.stamp();
        a.scale(2.0);
        assert_ne!(a.stamp(), before, "scale must re-stamp");
        let b = t(2, 2, &[2.0, 4.0, 6.0, 8.0]);
        // Content-equal tensors with different stamps still compare equal.
        assert_ne!(a.stamp(), b.stamp());
        assert_eq!(a, b);
    }

    #[test]
    fn cached_matmuls_match_uncached() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut cache = kernels::PanelCache::new();
        let mut out = Tensor::default();
        a.matmul_into_cached(&b, &mut out, &mut cache).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        a.matmul_into_cached(&b, &mut out, &mut cache).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        assert_eq!(cache.hits(), 1);
        let bt = b.transpose();
        a.matmul_t_into_cached(&bt, &mut out, &mut cache).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        assert!(a
            .matmul_into_cached(&Tensor::zeros(2, 2), &mut out, &mut cache)
            .is_err());
    }

    #[test]
    fn into_variants_reject_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let mut out = Tensor::default();
        assert!(a.matmul_into(&Tensor::zeros(2, 3), &mut out).is_err());
        assert!(a.t_matmul_into(&Tensor::zeros(3, 3), &mut out).is_err());
        assert!(a.matmul_t_into(&Tensor::zeros(3, 4), &mut out).is_err());
    }
}
