//! Optimizers for the MLP substrate.

/// Plain stochastic gradient descent with optional momentum and weight
/// decay, operating on flat parameter/gradient buffers.
///
/// FLOAT's local client update is SGD (`θ ← θ − η ∇L`, paper §2); momentum
/// and decay are provided for completeness and are off by default.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate `η`.
    pub lr: f32,
    /// Momentum coefficient; `0.0` disables momentum.
    pub momentum: f32,
    /// L2 weight-decay coefficient; `0.0` disables decay.
    pub weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Create a plain SGD optimizer with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Create an SGD optimizer with momentum and weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Apply one update step to `params` given `grads`.
    ///
    /// The internal momentum buffer is lazily sized to the parameter count;
    /// switching parameter sizes mid-run resets it.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        if self.momentum != 0.0 && self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            let mut g = grads[i];
            if self.weight_decay != 0.0 {
                g += self.weight_decay * params[i];
            }
            if self.momentum != 0.0 {
                self.velocity[i] = self.momentum * self.velocity[i] + g;
                g = self.velocity[i];
            }
            params[i] -= self.lr * g;
        }
    }

    /// Clear momentum state (used when a model is re-initialized).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.5);
        let mut p = [1.0f32, -1.0];
        opt.step(&mut p, &[2.0, -2.0]);
        assert_eq!(p, [0.0, 0.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::with_momentum(1.0, 0.5, 0.0);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]); // v=1, p=-1
        opt.step(&mut p, &[1.0]); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::with_momentum(0.1, 0.0, 1.0);
        let mut p = [1.0f32];
        opt.step(&mut p, &[0.0]);
        assert!((p[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_velocity() {
        let mut opt = Sgd::with_momentum(1.0, 0.9, 0.0);
        let mut p = [0.0f32];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        let mut q = [0.0f32];
        opt.step(&mut q, &[1.0]);
        assert_eq!(q[0], -1.0);
    }
}
