//! Resource costing for vertical FL rounds and FLOAT's per-party
//! acceleration pricing.
//!
//! VFL communication differs fundamentally from horizontal FL: parties
//! ship *per-sample embeddings* every batch (up the split) and receive
//! embedding gradients (down the split), rather than exchanging model
//! parameters once per round. The wire volume therefore scales with the
//! number of samples and the embedding width — which is why embedding
//! quantization is the dominant acceleration in VFL, while pruning mostly
//! saves party-side compute.

use serde::{Deserialize, Serialize};

use float_accel::AccelAction;
use float_models::Precision;

/// Round structure of a VFL training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VflRound {
    /// Samples processed this round.
    pub samples: usize,
    /// Embedding width per party.
    pub embed_dim: usize,
    /// Parameters in the party's bottom model.
    pub party_params: usize,
    /// Forward+backward FLOPs per sample for the party's bottom model.
    pub party_flops_per_sample: f64,
}

impl VflRound {
    /// Build the round structure from model dimensions: a `d → e` linear
    /// bottom model costs `2·d·e` FLOPs forward per sample and ~2× that
    /// backward.
    pub fn new(samples: usize, input_dim: usize, embed_dim: usize) -> Self {
        let fwd = 2.0 * input_dim as f64 * embed_dim as f64;
        VflRound {
            samples,
            embed_dim,
            party_params: input_dim * embed_dim + embed_dim,
            party_flops_per_sample: 3.0 * fwd,
        }
    }
}

/// One party's resource bill for a VFL round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartyCost {
    /// Compute, FLOPs.
    pub flops: f64,
    /// Embeddings shipped up, bytes.
    pub upload_bytes: f64,
    /// Embedding gradients received, bytes.
    pub download_bytes: f64,
}

impl PartyCost {
    /// Vanilla (fp32) cost of a round.
    pub fn vanilla(round: &VflRound) -> Self {
        let wire = round.samples as f64 * round.embed_dim as f64 * 4.0;
        PartyCost {
            flops: round.party_flops_per_sample * round.samples as f64,
            upload_bytes: wire,
            download_bytes: wire,
        }
    }
}

/// Price a FLOAT acceleration action for one party's VFL round.
///
/// - Quantization shrinks the embedding wire volume (both directions can
///   be grid-coded).
/// - Pruning removes bottom-model weights: compute shrinks
///   proportionally; the embedding wire volume is unchanged (embeddings
///   stay dense).
/// - Partial training freezes bottom parameters: backward compute
///   shrinks; wire volume unchanged.
/// - Compression / top-k act on the embedding stream.
pub fn accelerated_party_cost(round: &VflRound, action: AccelAction) -> PartyCost {
    let base = PartyCost::vanilla(round);
    match action {
        AccelAction::NoOp => base,
        AccelAction::Quantize16 | AccelAction::Quantize8 => {
            let p = if action == AccelAction::Quantize16 {
                Precision::Int16
            } else {
                Precision::Int8
            };
            let scale = p.bytes_per_param() / 4.0;
            PartyCost {
                flops: base.flops + 2.0 * round.samples as f64 * round.embed_dim as f64,
                upload_bytes: base.upload_bytes * scale,
                download_bytes: base.download_bytes * scale,
            }
        }
        AccelAction::Prune25 | AccelAction::Prune50 | AccelAction::Prune75 => {
            let keep = match action {
                AccelAction::Prune25 => 0.75,
                AccelAction::Prune50 => 0.50,
                _ => 0.25,
            };
            PartyCost {
                flops: base.flops * keep,
                ..base
            }
        }
        AccelAction::Partial25 | AccelAction::Partial50 | AccelAction::Partial75 => {
            let frozen = match action {
                AccelAction::Partial25 => 0.25,
                AccelAction::Partial50 => 0.50,
                _ => 0.75,
            };
            // Forward unchanged (1/3), backward scales with trainable
            // fraction (2/3).
            let mult = 1.0 / 3.0 + 2.0 / 3.0 * (1.0 - frozen);
            PartyCost {
                flops: base.flops * mult,
                ..base
            }
        }
        AccelAction::CompressLossless => PartyCost {
            // Embeddings are near-random floats; honest lossless codecs
            // only shave the shared exponent plane (~15 %).
            flops: base.flops + 30.0 * round.samples as f64 * round.embed_dim as f64,
            upload_bytes: base.upload_bytes * 0.85,
            download_bytes: base.download_bytes,
        },
        AccelAction::TopK10 => PartyCost {
            flops: base.flops,
            upload_bytes: base.upload_bytes * 0.2, // indices + values at 10 %
            download_bytes: base.download_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round() -> VflRound {
        VflRound::new(256, 16, 8)
    }

    #[test]
    fn vanilla_wire_scales_with_samples_and_width() {
        let small = PartyCost::vanilla(&VflRound::new(100, 16, 8));
        let big = PartyCost::vanilla(&VflRound::new(200, 16, 8));
        assert!((big.upload_bytes / small.upload_bytes - 2.0).abs() < 1e-9);
        let wide = PartyCost::vanilla(&VflRound::new(100, 16, 16));
        assert!((wide.upload_bytes / small.upload_bytes - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_cuts_wire_both_ways() {
        let r = round();
        let base = PartyCost::vanilla(&r);
        let q8 = accelerated_party_cost(&r, AccelAction::Quantize8);
        assert!((q8.upload_bytes - base.upload_bytes / 4.0).abs() < 1e-9);
        assert!((q8.download_bytes - base.download_bytes / 4.0).abs() < 1e-9);
        assert!(q8.flops > base.flops);
    }

    #[test]
    fn pruning_cuts_compute_not_wire() {
        let r = round();
        let base = PartyCost::vanilla(&r);
        let p75 = accelerated_party_cost(&r, AccelAction::Prune75);
        assert!((p75.flops - base.flops * 0.25).abs() < 1e-6);
        assert_eq!(p75.upload_bytes, base.upload_bytes);
    }

    #[test]
    fn partial_training_cuts_backward_only() {
        let r = round();
        let base = PartyCost::vanilla(&r);
        let p75 = accelerated_party_cost(&r, AccelAction::Partial75);
        assert!(p75.flops < base.flops);
        assert!(p75.flops > base.flops / 3.0 - 1e-6);
        assert_eq!(p75.upload_bytes, base.upload_bytes);
    }

    #[test]
    fn quantization_dominates_for_network_bound_vfl() {
        // The VFL-specific lesson: when the embedding stream is the
        // bottleneck, only quantization/top-k reduce it.
        let r = round();
        let q8 = accelerated_party_cost(&r, AccelAction::Quantize8);
        let p75 = accelerated_party_cost(&r, AccelAction::Prune75);
        assert!(q8.upload_bytes < p75.upload_bytes);
    }
}
