//! Split-model vertical FL training: per-party bottom models plus a
//! server-side top model, trained end-to-end through embedding gradients.

use rand::Rng;
use serde::{Deserialize, Serialize};

use float_tensor::layers::Linear;
use float_tensor::loss::{accuracy, softmax_cross_entropy};
use float_tensor::model::TrainOptions;
use float_tensor::rng::{seed_rng, split_seed};
use float_tensor::{Dataset, Sgd, Tensor};

/// Configuration of a vertical FL deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VflConfig {
    /// Feature width held by each party (ordered).
    pub party_dims: Vec<usize>,
    /// Embedding width each party produces.
    pub embed_dim: usize,
    /// Number of label classes (held by the aggregator).
    pub num_classes: usize,
}

impl VflConfig {
    /// Total feature dimensionality across parties.
    pub fn total_dim(&self) -> usize {
        self.party_dims.iter().sum()
    }

    /// Number of parties.
    pub fn num_parties(&self) -> usize {
        self.party_dims.len()
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.party_dims.is_empty() {
            return Err("need at least one party".into());
        }
        if self.party_dims.contains(&0) {
            return Err("every party must hold at least one feature".into());
        }
        if self.embed_dim == 0 || self.num_classes < 2 {
            return Err("embed_dim must be positive and num_classes >= 2".into());
        }
        Ok(())
    }
}

/// A vertically partitioned dataset: one feature block per party plus the
/// aggregator-held labels.
#[derive(Debug, Clone)]
pub struct VflDataset {
    /// Per-party feature matrices, all with the same row count.
    pub party_features: Vec<Tensor>,
    /// Labels, aligned with the rows.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl VflDataset {
    /// Vertically split a centralized [`Dataset`] according to
    /// `config.party_dims`.
    ///
    /// # Errors
    ///
    /// Returns a message if the dataset's width does not equal the sum of
    /// party widths.
    pub fn split(data: &Dataset, config: &VflConfig) -> Result<Self, String> {
        config.validate()?;
        if data.dim() != config.total_dim() {
            return Err(format!(
                "dataset width {} != sum of party widths {}",
                data.dim(),
                config.total_dim()
            ));
        }
        let n = data.len();
        let mut party_features = Vec::with_capacity(config.num_parties());
        let mut offset = 0;
        for &w in &config.party_dims {
            let mut flat = Vec::with_capacity(n * w);
            for r in 0..n {
                let row = data.features().row(r);
                flat.extend_from_slice(&row[offset..offset + w]);
            }
            party_features
                .push(Tensor::from_vec(n, w, flat).map_err(|e| format!("split failed: {e}"))?);
            offset += w;
        }
        Ok(VflDataset {
            party_features,
            labels: data.labels().to_vec(),
            num_classes: data.num_classes(),
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Extract the rows at `indices` for one party.
    fn party_batch(&self, party: usize, indices: &[usize]) -> Tensor {
        let src = &self.party_features[party];
        let w = src.cols();
        let mut flat = Vec::with_capacity(indices.len() * w);
        for &i in indices {
            flat.extend_from_slice(src.row(i));
        }
        Tensor::from_vec(indices.len(), w, flat).expect("batch buffer sized by construction")
    }
}

/// The split model: per-party bottom encoders and the aggregator's top
/// classifier.
#[derive(Debug, Clone)]
pub struct SplitModel {
    config: VflConfig,
    bottoms: Vec<Linear>,
    top: Linear,
}

impl SplitModel {
    /// Initialize from a configuration and seed.
    pub fn new(config: &VflConfig, seed: u64) -> Self {
        let bottoms = config
            .party_dims
            .iter()
            .enumerate()
            .map(|(i, &d)| Linear::new(d, config.embed_dim, split_seed(seed, i as u64)))
            .collect();
        let top = Linear::new(
            config.embed_dim * config.num_parties(),
            config.num_classes,
            split_seed(seed, 0x70),
        );
        SplitModel {
            config: config.clone(),
            bottoms,
            top,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &VflConfig {
        &self.config
    }

    /// Bottom-model parameter count of one party.
    pub fn party_params(&self, party: usize) -> usize {
        self.bottoms[party].weight.len() + self.bottoms[party].bias.len()
    }

    /// Forward pass for inference over a full [`VflDataset`].
    fn forward_full(&self, data: &VflDataset) -> Tensor {
        let n = data.len();
        let e = self.config.embed_dim;
        let p = self.config.num_parties();
        let mut concat = Tensor::zeros(n, e * p);
        for (pi, bottom) in self.bottoms.iter().enumerate() {
            let emb = bottom
                .forward_inference(&data.party_features[pi])
                .expect("party width matches bottom model");
            // ReLU then copy into the concatenated block.
            for r in 0..n {
                for c in 0..e {
                    let v = emb.at(r, c).max(0.0);
                    concat.set(r, pi * e + c, v);
                }
            }
        }
        self.top
            .forward_inference(&concat)
            .expect("concat width matches top model")
    }

    /// Evaluate accuracy over a [`VflDataset`].
    pub fn evaluate(&self, data: &VflDataset) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let logits = self.forward_full(data);
        accuracy(&logits, &data.labels)
    }

    /// One epoch of split training: minibatches flow bottom-up through all
    /// parties, the top model computes the loss, and embedding gradients
    /// flow back down. `party_opts[i]` carries FLOAT's acceleration hooks
    /// for party `i` (frozen masks for partial training, prune masks).
    ///
    /// Returns the mean training loss.
    ///
    /// # Panics
    ///
    /// Panics if `party_opts.len() != num_parties`.
    pub fn train_epoch(
        &mut self,
        data: &VflDataset,
        batch_size: usize,
        lr: f32,
        seed: u64,
        party_opts: &[TrainOptions],
    ) -> f32 {
        assert_eq!(
            party_opts.len(),
            self.config.num_parties(),
            "one TrainOptions per party"
        );
        if data.is_empty() || batch_size == 0 {
            return 0.0;
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut seed_rng(seed));
        let e = self.config.embed_dim;
        let p = self.config.num_parties();
        let mut opt = Sgd::new(lr);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let labels: Vec<usize> = chunk.iter().map(|&i| data.labels[i]).collect();
            // Bottom forward per party (cached for backward).
            let mut embeddings = Vec::with_capacity(p);
            for pi in 0..p {
                let x = data.party_batch(pi, chunk);
                let raw = self.bottoms[pi].forward(&x).expect("width matches");
                embeddings.push(raw);
            }
            // Concatenate ReLU(embeddings).
            let n = chunk.len();
            let mut concat = Tensor::zeros(n, e * p);
            for (pi, emb) in embeddings.iter().enumerate() {
                for r in 0..n {
                    for c in 0..e {
                        concat.set(r, pi * e + c, emb.at(r, c).max(0.0));
                    }
                }
            }
            // Top forward + loss.
            let logits = self.top.forward(&concat).expect("width matches");
            let Ok((loss, grad_logits)) = softmax_cross_entropy(&logits, &labels) else {
                continue;
            };
            total += loss;
            batches += 1;
            // Top backward; grad w.r.t. concatenated embeddings.
            let grad_concat = self
                .top
                .backward(&grad_logits)
                .expect("backward follows forward");
            // Update top model.
            {
                let mut params: Vec<f32> = Vec::new();
                params.extend_from_slice(self.top.weight.data());
                params.extend_from_slice(self.top.bias.data());
                let mut grads: Vec<f32> = Vec::new();
                grads.extend_from_slice(self.top.grad_weight.data());
                grads.extend_from_slice(self.top.grad_bias.data());
                opt.step(&mut params, &grads);
                let (w, b) = params.split_at(self.top.weight.len());
                self.top.weight.data_mut().copy_from_slice(w);
                self.top.bias.data_mut().copy_from_slice(b);
            }
            // Per-party backward through the ReLU and bottom model.
            for pi in 0..p {
                let emb = &embeddings[pi];
                let mut grad_emb = Tensor::zeros(n, e);
                for r in 0..n {
                    for c in 0..e {
                        // ReLU gate on the cached pre-activation.
                        let g = if emb.at(r, c) > 0.0 {
                            grad_concat.at(r, pi * e + c)
                        } else {
                            0.0
                        };
                        grad_emb.set(r, c, g);
                    }
                }
                let _ = self.bottoms[pi]
                    .backward(&grad_emb)
                    .expect("backward follows forward");
                let mut params: Vec<f32> = Vec::new();
                params.extend_from_slice(self.bottoms[pi].weight.data());
                params.extend_from_slice(self.bottoms[pi].bias.data());
                let mut grads: Vec<f32> = Vec::new();
                grads.extend_from_slice(self.bottoms[pi].grad_weight.data());
                grads.extend_from_slice(self.bottoms[pi].grad_bias.data());
                // FLOAT hooks: freeze / prune this party's parameters.
                if let Some(frozen) = &party_opts[pi].frozen {
                    if frozen.len() == grads.len() {
                        for (g, &f) in grads.iter_mut().zip(frozen) {
                            if f {
                                *g = 0.0;
                            }
                        }
                    }
                }
                opt.step(&mut params, &grads);
                if let Some(mask) = &party_opts[pi].prune_mask {
                    if mask.len() == params.len() {
                        for (v, &keep) in params.iter_mut().zip(mask) {
                            if !keep {
                                *v = 0.0;
                            }
                        }
                    }
                }
                let (w, b) = params.split_at(self.bottoms[pi].weight.len());
                self.bottoms[pi].weight.data_mut().copy_from_slice(w);
                self.bottoms[pi].bias.data_mut().copy_from_slice(b);
            }
        }
        if batches == 0 {
            0.0
        } else {
            total / batches as f32
        }
    }
}

/// Generate a synthetic VFL problem: `n` samples whose label depends on
/// features spread across *all* parties (so no party can solve it alone).
pub fn synthetic_vfl(config: &VflConfig, n: usize, seed: u64) -> VflDataset {
    let mut rng = seed_rng(split_seed(seed, 0x5EED));
    let total = config.total_dim();
    // Class centroids over the full feature space.
    // Weak per-feature signal: no single party's feature block separates
    // the classes, but the union does — the defining property of a
    // vertical task.
    let centroids: Vec<Vec<f32>> = (0..config.num_classes)
        .map(|_| (0..total).map(|_| rng.gen_range(-0.45..0.45)).collect())
        .collect();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let y = rng.gen_range(0..config.num_classes);
        let row: Vec<f32> = centroids[y]
            .iter()
            .map(|&m| m + rng.gen_range(-0.55f32..0.55))
            .collect();
        rows.push(row);
        labels.push(y);
    }
    let data =
        Dataset::from_rows(&rows, &labels, config.num_classes).expect("synthetic rows rectangular");
    VflDataset::split(&data, config).expect("widths match by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VflConfig {
        VflConfig {
            party_dims: vec![6, 4, 6],
            embed_dim: 8,
            num_classes: 4,
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        let mut c = cfg();
        c.party_dims = vec![];
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.party_dims[1] = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.num_classes = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn split_partitions_features() {
        let c = cfg();
        let data = synthetic_vfl(&c, 32, 1);
        assert_eq!(data.party_features.len(), 3);
        assert_eq!(data.party_features[0].cols(), 6);
        assert_eq!(data.party_features[1].cols(), 4);
        assert_eq!(data.party_features[2].cols(), 6);
        for pf in &data.party_features {
            assert_eq!(pf.rows(), 32);
        }
    }

    #[test]
    fn split_rejects_width_mismatch() {
        let c = cfg();
        let small = Dataset::from_rows(&[vec![0.0; 5]], &[0], 4).unwrap();
        assert!(VflDataset::split(&small, &c).is_err());
    }

    #[test]
    fn vfl_training_learns() {
        let c = cfg();
        let data = synthetic_vfl(&c, 256, 3);
        let mut model = SplitModel::new(&c, 7);
        let before = model.evaluate(&data);
        let opts = vec![TrainOptions::default(); c.num_parties()];
        for e in 0..30 {
            model.train_epoch(&data, 32, 0.1, e, &opts);
        }
        let after = model.evaluate(&data);
        assert!(
            after > before + 0.3 && after > 0.8,
            "vfl did not learn: before {before}, after {after}"
        );
    }

    #[test]
    fn frozen_party_does_not_move() {
        let c = cfg();
        let data = synthetic_vfl(&c, 64, 3);
        let mut model = SplitModel::new(&c, 7);
        let frozen_params = model.party_params(1);
        let before: Vec<f32> = {
            let mut v = model.bottoms[1].weight.data().to_vec();
            v.extend_from_slice(model.bottoms[1].bias.data());
            v
        };
        let mut opts = vec![TrainOptions::default(); c.num_parties()];
        opts[1].frozen = Some(vec![true; frozen_params]);
        model.train_epoch(&data, 16, 0.1, 0, &opts);
        let after: Vec<f32> = {
            let mut v = model.bottoms[1].weight.data().to_vec();
            v.extend_from_slice(model.bottoms[1].bias.data());
            v
        };
        assert_eq!(before, after, "frozen party parameters moved");
    }

    #[test]
    fn pruned_party_stays_sparse() {
        let c = cfg();
        let data = synthetic_vfl(&c, 64, 3);
        let mut model = SplitModel::new(&c, 7);
        let n = model.party_params(0);
        let mask: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut opts = vec![TrainOptions::default(); c.num_parties()];
        opts[0].prune_mask = Some(mask.clone());
        model.train_epoch(&data, 16, 0.1, 0, &opts);
        let params: Vec<f32> = {
            let mut v = model.bottoms[0].weight.data().to_vec();
            v.extend_from_slice(model.bottoms[0].bias.data());
            v
        };
        for (i, (&p, &keep)) in params.iter().zip(&mask).enumerate() {
            if !keep {
                assert_eq!(p, 0.0, "pruned param {i} drifted");
            }
        }
    }

    #[test]
    fn no_single_party_suffices() {
        // Train with only party 0 unfrozen bottoms — accuracy should lag a
        // full-feature model, demonstrating genuine feature verticality.
        let c = cfg();
        let data = synthetic_vfl(&c, 256, 5);
        let full = {
            let mut m = SplitModel::new(&c, 7);
            let opts = vec![TrainOptions::default(); c.num_parties()];
            for e in 0..25 {
                m.train_epoch(&data, 32, 0.1, e, &opts);
            }
            m.evaluate(&data)
        };
        // Zero out parties 1 and 2's features entirely.
        let mut crippled = data.clone();
        for pi in 1..3 {
            let t = &mut crippled.party_features[pi];
            for v in t.data_mut() {
                *v = 0.0;
            }
        }
        let partial = {
            let mut m = SplitModel::new(&c, 7);
            let opts = vec![TrainOptions::default(); c.num_parties()];
            for e in 0..25 {
                m.train_epoch(&crippled, 32, 0.1, e, &opts);
            }
            m.evaluate(&crippled)
        };
        assert!(
            full > partial + 0.1,
            "full {full} not clearly above single-party {partial}"
        );
    }
}
