//! `float-vfl` — a vertical federated learning (VFL) substrate
//! demonstrating the paper's §7 claim that FLOAT integrates with
//! non-horizontal FL "without needing structural adjustments".
//!
//! In VFL, parties hold *disjoint feature subsets* of the *same* samples
//! (e.g. a bank and a retailer know different attributes of shared
//! customers). Training uses a split model: each party runs a local
//! *bottom model* producing an embedding of its features; an aggregator
//! concatenates the embeddings, runs a *top model* to the label, and
//! backpropagates embedding gradients to each party.
//!
//! Every forward/backward step is a synchronous barrier over all parties,
//! so a single straggling party stalls the entire round — which makes
//! FLOAT's per-party acceleration (quantizing embeddings on the wire,
//! pruning bottom models, partial training) directly applicable: the
//! [`VflRound`] costing hooks mirror the horizontal runtime's, and
//! [`accelerated_party_cost`] prices each FLOAT action for a party.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod split;

pub use cost::{accelerated_party_cost, PartyCost, VflRound};
pub use split::{SplitModel, VflConfig, VflDataset};
