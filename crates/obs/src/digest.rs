//! Human-readable per-round digests of an event stream.
//!
//! A digest compresses one round's events into a single line a person can
//! scan: cohort size, outcome mix, faults, the agent's action histogram,
//! and (when wall timers were on) phase timings. Deterministic by
//! construction — counts come from the event stream and maps iterate in
//! key order.

use crate::event::{Event, Phase};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Summarize one round of an event stream as a single line. Events whose
/// round differs are ignored, so callers can pass the whole stream.
/// Returns a placeholder line if the stream holds no events for `round`.
pub fn round_digest(round: u64, events: &[Event]) -> String {
    let mut start_sim = None;
    let mut end_sim = None;
    let mut eligible = 0u64;
    let mut selected = 0u64;
    let mut completed = 0u64;
    let mut dropped = 0u64;
    let mut quarantined = 0u64;
    let mut agg_updates = 0u64;
    let mut agg_suppressed = 0u64;
    let mut retries = 0u64;
    let mut explore = 0u64;
    let mut actions: BTreeMap<&str, u64> = BTreeMap::new();
    let mut faults: BTreeMap<&str, u64> = BTreeMap::new();
    let mut phase_us: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut saw_any = false;

    // Profiler cohort coverage, reconstructed purely from the stream: a
    // client counts as covered in round N if any earlier round committed
    // an outcome for it — exactly the "has a prior observation" predicate
    // the online profiler applies at selection time.
    let prior_clients: BTreeSet<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::ClientOutcome {
                round: r, client, ..
            } if *r < round => Some(*client),
            _ => None,
        })
        .collect();
    let mut round_clients: BTreeSet<u64> = BTreeSet::new();

    for e in events.iter().filter(|e| e.round() == round) {
        saw_any = true;
        match e {
            Event::RoundStart {
                sim_s,
                eligible: el,
                selected: sel,
                ..
            } => {
                start_sim = Some(*sim_s);
                eligible = *el;
                selected = *sel;
            }
            Event::PhaseSpan { phase, wall_us, .. } => {
                *phase_us.entry(phase.name()).or_insert(0) += wall_us;
            }
            Event::AccelDecision {
                action,
                explore: ex,
                ..
            } => {
                *actions.entry(action.as_str()).or_insert(0) += 1;
                if *ex {
                    explore += 1;
                }
            }
            Event::FaultInjected { kind, .. } => {
                *faults.entry(kind.as_str()).or_insert(0) += 1;
            }
            Event::ClientOutcome {
                attempt, client, ..
            } => {
                round_clients.insert(*client);
                if *attempt > 0 {
                    retries += 1;
                }
            }
            Event::AggregationApplied {
                updates,
                suppressed,
                ..
            } => {
                agg_updates += updates;
                agg_suppressed += suppressed;
            }
            Event::RoundEnd {
                sim_s,
                completed: c,
                dropped: d,
                quarantined: q,
                ..
            } => {
                end_sim = Some(*sim_s);
                completed = *c;
                dropped = *d;
                quarantined = *q;
            }
        }
    }

    if !saw_any {
        return format!("round {round:>4} | no events");
    }

    let mut line = format!("round {round:>4}");
    if let (Some(s), Some(e)) = (start_sim, end_sim) {
        let _ = write!(line, " | sim {:.0}s → {:.0}s", s, e);
    } else if let Some(s) = start_sim {
        let _ = write!(line, " | sim {:.0}s →", s);
    }
    let _ = write!(
        line,
        " | cohort {selected}/{eligible} | done {completed} drop {dropped}"
    );
    if quarantined > 0 {
        let _ = write!(line, " (quar {quarantined})");
    }
    if retries > 0 {
        let _ = write!(line, " retry {retries}");
    }
    if !round_clients.is_empty() {
        let covered = round_clients
            .iter()
            .filter(|c| prior_clients.contains(c))
            .count();
        let _ = write!(
            line,
            " | cov {:.2}",
            covered as f64 / round_clients.len() as f64
        );
    }
    let _ = write!(line, " | agg {agg_updates}");
    if agg_suppressed > 0 {
        let _ = write!(line, " (dup {agg_suppressed})");
    }
    if !actions.is_empty() {
        line.push_str(" | actions");
        for (name, n) in &actions {
            let _ = write!(line, " {name}:{n}");
        }
        if explore > 0 {
            let _ = write!(line, " (explore {explore})");
        }
    }
    if !faults.is_empty() {
        line.push_str(" | faults");
        for (name, n) in &faults {
            let _ = write!(line, " {name}:{n}");
        }
    }
    // Only print timings when some span actually measured wall time;
    // a deterministic (timer-less) stream keeps its digest wall-free.
    if phase_us.values().any(|&us| us > 0) {
        line.push_str(" | wall");
        for phase in [Phase::Plan, Phase::Execute, Phase::Commit] {
            if let Some(us) = phase_us.get(phase.name()) {
                let _ = write!(line, " {} {}µs", phase.name(), us);
            }
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OutcomeKind;

    fn stream() -> Vec<Event> {
        vec![
            Event::RoundStart {
                round: 2,
                sim_s: 3600.0,
                eligible: 40,
                selected: 10,
            },
            Event::AccelDecision {
                round: 2,
                client: 1,
                state: "s3h0".into(),
                action: "quant8".into(),
                q: 0.25,
                explore: true,
            },
            Event::AccelDecision {
                round: 2,
                client: 2,
                state: "s3h1".into(),
                action: "noop".into(),
                q: 0.0,
                explore: false,
            },
            Event::FaultInjected {
                round: 2,
                client: 1,
                attempt: 0,
                kind: "network-stall".into(),
            },
            Event::ClientOutcome {
                round: 2,
                client: 1,
                attempt: 1,
                outcome: OutcomeKind::Completed,
                sim_duration_s: 900.0,
            },
            Event::AggregationApplied {
                round: 2,
                sim_s: 5400.0,
                updates: 9,
                suppressed: 1,
            },
            Event::RoundEnd {
                round: 2,
                sim_s: 5400.0,
                completed: 9,
                dropped: 1,
                quarantined: 1,
            },
            // Noise from another round: must be ignored.
            Event::RoundEnd {
                round: 3,
                sim_s: 7200.0,
                completed: 2,
                dropped: 8,
                quarantined: 0,
            },
        ]
    }

    #[test]
    fn digest_summarizes_one_round() {
        let line = round_digest(2, &stream());
        assert!(line.contains("round    2"), "line was: {line}");
        assert!(line.contains("cohort 10/40"), "line was: {line}");
        assert!(line.contains("done 9 drop 1"), "line was: {line}");
        assert!(line.contains("quar 1"), "line was: {line}");
        assert!(line.contains("retry 1"), "line was: {line}");
        assert!(line.contains("agg 9 (dup 1)"), "line was: {line}");
        assert!(line.contains("noop:1"), "line was: {line}");
        assert!(line.contains("quant8:1"), "line was: {line}");
        assert!(line.contains("explore 1"), "line was: {line}");
        assert!(line.contains("network-stall:1"), "line was: {line}");
        assert!(line.contains("cov 0.00"), "no prior rounds: {line}");
        assert!(!line.contains("wall"), "timer-less stream: {line}");
        assert!(!line.contains("drop 8"), "round 3 leaked in: {line}");
    }

    #[test]
    fn coverage_counts_clients_seen_in_earlier_rounds() {
        let outcome = |round: u64, client: u64| Event::ClientOutcome {
            round,
            client,
            attempt: 0,
            outcome: OutcomeKind::Completed,
            sim_duration_s: 10.0,
        };
        // Round 1 re-selects client 1 (seen in round 0) and client 2
        // (never seen) → coverage 1/2. Later rounds must not leak in.
        let events = vec![outcome(0, 1), outcome(1, 1), outcome(1, 2), outcome(2, 3)];
        let line = round_digest(1, &events);
        assert!(line.contains("cov 0.50"), "line was: {line}");
        let line0 = round_digest(0, &events);
        assert!(line0.contains("cov 0.00"), "line was: {line0}");
    }

    #[test]
    fn digest_handles_missing_round() {
        assert_eq!(round_digest(99, &stream()), "round   99 | no events");
    }

    #[test]
    fn digest_prints_wall_timings_when_measured() {
        let events = vec![
            Event::RoundStart {
                round: 0,
                sim_s: 0.0,
                eligible: 4,
                selected: 2,
            },
            Event::PhaseSpan {
                round: 0,
                phase: Phase::Execute,
                wall_us: 1234,
                overlapped_us: None,
            },
            Event::RoundEnd {
                round: 0,
                sim_s: 60.0,
                completed: 2,
                dropped: 0,
                quarantined: 0,
            },
        ];
        let line = round_digest(0, &events);
        assert!(line.contains("wall execute 1234µs"), "line was: {line}");
    }
}
