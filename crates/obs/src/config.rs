//! Telemetry configuration.

use serde::{Deserialize, Serialize};

/// Telemetry switchboard, carried inside the experiment configuration.
///
/// The default is fully off: the runtime pays one predictable branch per
/// potential event and nothing else. [`ObsConfig::on`] enables the
/// deterministic event stream and metrics registry;
/// [`ObsConfig::profiled`] additionally stamps wall-clock phase timings
/// onto [`crate::Event::PhaseSpan`] events, which is useful for humans
/// but — being wall-clock — is the one mode whose event *payloads* are
/// not reproducible across machines or thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch. Off ⇒ no events, no metrics, near-zero overhead.
    #[serde(default)]
    pub enabled: bool,
    /// Emit per-phase wall-clock spans (plan / execute / commit). Requires
    /// `enabled`; excluded from the determinism contract (see DESIGN.md
    /// §12) because wall time is inherently irreproducible.
    #[serde(default)]
    pub wall_timers: bool,
    /// Hard cap on buffered events; `0` means the default cap
    /// ([`ObsConfig::DEFAULT_MAX_EVENTS`]). Recording past the cap drops
    /// the event (counted in `TelemetrySummary::events_dropped`) instead
    /// of growing without bound — a 300-round paper run emits ~50k
    /// events, so the default cap of one million is generous.
    #[serde(default)]
    pub max_events: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

impl ObsConfig {
    /// Default event-buffer cap.
    pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

    /// Telemetry fully disabled (the default).
    pub fn off() -> Self {
        ObsConfig {
            enabled: false,
            wall_timers: false,
            max_events: Self::DEFAULT_MAX_EVENTS,
        }
    }

    /// Deterministic telemetry: events + metrics, no wall-clock timers.
    /// This is the mode the parallel-determinism tests pin down.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::off()
        }
    }

    /// Telemetry with wall-clock phase profiling on top. Event *counts*
    /// stay deterministic; `PhaseSpan::wall_us` payloads do not.
    pub fn profiled() -> Self {
        ObsConfig {
            enabled: true,
            wall_timers: true,
            ..ObsConfig::off()
        }
    }

    /// The event-buffer cap with the `0 ⇒ default` convention resolved.
    pub fn effective_max_events(&self) -> usize {
        if self.max_events == 0 {
            Self::DEFAULT_MAX_EVENTS
        } else {
            self.max_events
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, including
    /// the offending field values: `wall_timers` requires `enabled`.
    pub fn validate(&self) -> Result<(), String> {
        if self.wall_timers && !self.enabled {
            return Err(format!(
                "obs wall_timers {} requires enabled true (got enabled {})",
                self.wall_timers, self.enabled
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        assert!(!c.wall_timers);
        c.validate().expect("default validates");
        assert_eq!(c, ObsConfig::off());
    }

    #[test]
    fn presets_validate() {
        ObsConfig::on().validate().expect("on validates");
        ObsConfig::profiled()
            .validate()
            .expect("profiled validates");
    }

    #[test]
    fn rejects_wall_timers_without_enabled() {
        let c = ObsConfig {
            wall_timers: true,
            ..ObsConfig::off()
        };
        let err = c.validate().expect_err("must reject");
        assert!(err.contains("wall_timers true"), "message was: {err}");
        assert!(err.contains("enabled false"), "message was: {err}");
    }

    #[test]
    fn zero_event_cap_means_default() {
        let c = ObsConfig {
            max_events: 0,
            ..ObsConfig::on()
        };
        c.validate().expect("zero cap means default, validates");
        assert_eq!(c.effective_max_events(), ObsConfig::DEFAULT_MAX_EVENTS);
        let c = ObsConfig {
            max_events: 64,
            ..ObsConfig::on()
        };
        assert_eq!(c.effective_max_events(), 64);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ObsConfig::profiled();
        let s = serde_json::to_string(&c).expect("serializes");
        let back: ObsConfig = serde_json::from_str(&s).expect("deserializes");
        assert_eq!(c, back);
        // Missing fields default to off.
        let empty: ObsConfig = serde_json::from_str("{}").expect("defaults");
        assert!(!empty.enabled);
    }
}
