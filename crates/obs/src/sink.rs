//! Event-stream sinks: JSONL encoding, decoding, and file output.
//!
//! JSONL (one JSON document per line) keeps the format greppable and
//! streamable: `obsdump` and the CI reconciliation step parse it back
//! with [`from_jsonl`] without loading any schema machinery.

use crate::event::Event;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Encode events as JSONL: one event per line, in stream order.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("events always serialize"));
        out.push('\n');
    }
    out
}

/// Decode a JSONL event stream. Blank lines are skipped.
///
/// # Errors
///
/// Returns a message naming the 1-based line number and the parse error
/// for the first malformed line.
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(line)
            .map_err(|e| format!("line {}: malformed event ({e}): {line}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Write events as JSONL to `path`, creating parent directories as
/// needed.
///
/// # Errors
///
/// Propagates any I/O failure from directory creation or the write.
pub fn write_jsonl<P: AsRef<Path>>(path: P, events: &[Event]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut file = fs::File::create(path)?;
    file.write_all(to_jsonl(events).as_bytes())?;
    file.flush()
}

/// Slugify a free-form trial label for use in a filename: lowercase
/// alphanumerics, runs of anything else collapsed to single dashes, outer
/// dashes trimmed. Deterministic, so trial filenames are stable across
/// runs and worker counts.
fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Trial-scoped sink: write one trial's event stream under `dir` as
/// `trial_<idx>_<label-slug>.jsonl` and return the path written. The
/// sweep orchestrator gives each concurrent trial its own file, so
/// streams never interleave and a trial's JSONL is replayable in
/// isolation (`obsdump`-compatible).
///
/// # Errors
///
/// Propagates any I/O failure from directory creation or the write.
pub fn write_trial_jsonl<P: AsRef<Path>>(
    dir: P,
    trial_idx: usize,
    label: &str,
    events: &[Event],
) -> io::Result<PathBuf> {
    let slugged = slug(label);
    let name = if slugged.is_empty() {
        format!("trial_{trial_idx:03}.jsonl")
    } else {
        format!("trial_{trial_idx:03}_{slugged}.jsonl")
    };
    let path = dir.as_ref().join(name);
    write_jsonl(&path, events)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OutcomeKind, Phase};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RoundStart {
                round: 0,
                sim_s: 0.0,
                eligible: 20,
                selected: 8,
            },
            Event::PhaseSpan {
                round: 0,
                phase: Phase::Execute,
                wall_us: 0,
                overlapped_us: None,
            },
            Event::ClientOutcome {
                round: 0,
                client: 5,
                attempt: 1,
                outcome: OutcomeKind::Completed,
                sim_duration_s: 431.25,
            },
            Event::RoundEnd {
                round: 0,
                sim_s: 1800.0,
                completed: 7,
                dropped: 1,
                quarantined: 0,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_preserves_stream_order() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).expect("parses");
        assert_eq!(back, events);
    }

    #[test]
    fn blank_lines_are_skipped_and_bad_lines_located() {
        let events = sample_events();
        let mut text = to_jsonl(&events[..2]);
        text.push_str("\n\n");
        text.push_str(&to_jsonl(&events[2..]));
        let back = from_jsonl(&text).expect("parses despite blanks");
        assert_eq!(back, events);

        let err = from_jsonl("{\"NotAnEvent\":{}}").expect_err("must fail");
        assert!(err.contains("line 1"), "error was: {err}");
    }

    #[test]
    fn trial_sink_slugs_labels_and_replays() {
        let dir = std::env::temp_dir().join("float_obs_trial_sink_test");
        let _ = fs::remove_dir_all(&dir);
        let events = sample_events();
        let path = write_trial_jsonl(&dir, 7, "cohort10-ep2-lr0.05/Oort @fedyogi", &events)
            .expect("writes");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("trial_007_cohort10-ep2-lr0-05-oort-fedyogi.jsonl")
        );
        let text = fs::read_to_string(&path).expect("readable");
        assert_eq!(from_jsonl(&text).expect("replays"), events);
        // Empty/degenerate labels still produce a valid, indexed name.
        let path = write_trial_jsonl(&dir, 3, "///", &events).expect("writes");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("trial_003.jsonl")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_jsonl_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("float_obs_sink_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("events.jsonl");
        let events = sample_events();
        write_jsonl(&path, &events).expect("writes");
        let text = fs::read_to_string(&path).expect("readable");
        assert_eq!(from_jsonl(&text).expect("parses"), events);
        let _ = fs::remove_dir_all(&dir);
    }
}
