//! `float-obs` — deterministic telemetry for the FLOAT runtime.
//!
//! FLOAT's argument is about *where* resources go — which clients
//! straggle, drop, or get quarantined, and which acceleration action the
//! agent picked for them — yet an end-of-run report cannot show any of
//! that. This crate makes mid-run behaviour observable without giving up
//! the runtime's two hard guarantees:
//!
//! 1. **Determinism.** Every recorded [`Event`] is stamped with the
//!    *simulated* clock and emitted from the runtime's sequential plan /
//!    commit phases (or merged from per-worker [`Recorder`] buffers in
//!    cohort order), so the event stream is bit-identical no matter how
//!    many worker threads execute the round. Wall-clock phase timers are
//!    opt-in ([`ObsConfig::wall_timers`]) precisely because they are the
//!    one thing that cannot be deterministic.
//! 2. **Near-zero cost when off.** With telemetry disabled every record
//!    call is a single branch on [`Collector::enabled`]; no strings are
//!    formatted, nothing allocates (verified by the `round_throughput`
//!    bench's telemetry-overhead section).
//!
//! The pieces:
//!
//! | module | contents |
//! |---|---|
//! | [`config`] | [`ObsConfig`]: the on/off switch and its knobs |
//! | [`event`] | [`Event`]: the structured round/client event stream |
//! | [`metrics`] | [`MetricsRegistry`]: counters, gauges, fixed-bucket histograms |
//! | [`recorder`] | [`Recorder`]: per-worker sample buffers, merged in cohort order |
//! | [`collect`] | [`Collector`]: the runtime-facing front-end; [`TelemetrySummary`] |
//! | [`sink`] | JSONL event writer/reader |
//! | [`digest`] | human-readable per-round digests |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod config;
pub mod digest;
pub mod event;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use collect::{Collector, Telemetry, TelemetrySummary};
pub use config::ObsConfig;
pub use event::{Event, OutcomeKind, Phase};
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry};
pub use recorder::Recorder;
