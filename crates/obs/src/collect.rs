//! The [`Collector`]: the runtime-facing telemetry front-end.
//!
//! The runtime owns exactly one collector per experiment. Every emission
//! site calls [`Collector::record`] (or a helper that does); when
//! telemetry is disabled that call is a single branch and returns
//! immediately, which is what keeps the off-mode overhead near zero. When
//! enabled, the collector buffers events up to the configured cap, tallies
//! per-kind counts, and owns the central [`MetricsRegistry`] that the
//! commit phase merges per-worker [`Recorder`] buffers into.

use crate::config::ObsConfig;
use crate::event::{Event, Phase};
use crate::metrics::{HistogramSummary, MetricsRegistry};
use crate::recorder::{merge_in_cohort_order, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Buffers events and metrics for one experiment run.
#[derive(Debug, Clone)]
pub struct Collector {
    cfg: ObsConfig,
    events: Vec<Event>,
    recorded: u64,
    dropped: u64,
    kind_counts: BTreeMap<&'static str, u64>,
    registry: MetricsRegistry,
}

impl Collector {
    /// A collector honouring `cfg`. A disabled config costs one `Vec`
    /// header and ignores every record call.
    pub fn new(cfg: ObsConfig) -> Self {
        Collector {
            cfg,
            events: Vec::new(),
            recorded: 0,
            dropped: 0,
            kind_counts: BTreeMap::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Whether telemetry is on. Emission sites that need to build event
    /// payloads (format a state string, clone an action name) should check
    /// this first so the off path allocates nothing.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Whether wall-clock phase timers are on.
    #[inline]
    pub fn wall_timers(&self) -> bool {
        self.cfg.enabled && self.cfg.wall_timers
    }

    /// Record one event. Past the configured cap the event is counted in
    /// the per-kind tallies (and `events_dropped`) but not buffered, so a
    /// runaway run degrades to approximate summaries instead of unbounded
    /// memory.
    #[inline]
    pub fn record(&mut self, event: Event) {
        if !self.cfg.enabled {
            return;
        }
        *self.kind_counts.entry(event.kind()).or_insert(0) += 1;
        if self.events.len() < self.cfg.effective_max_events() {
            self.events.push(event);
            self.recorded += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Start a wall-clock phase timer. Returns `None` unless wall timers
    /// are enabled, so the hot path never calls `Instant::now`.
    #[inline]
    pub fn phase_start(&self) -> Option<Instant> {
        if self.wall_timers() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a phase: emits a [`Event::PhaseSpan`] with the measured
    /// wall-clock microseconds when `start` came from an armed timer, and
    /// `wall_us: 0` otherwise (the span still marks phase ordering in the
    /// stream).
    pub fn phase_end(&mut self, round: u64, phase: Phase, start: Option<Instant>) {
        self.phase_end_overlapped(round, phase, start, None);
    }

    /// Close a phase that (partially) ran concurrently with another phase
    /// under pipelined rounds. `overlapped_us` is the portion of the
    /// span's wall time that overlapped; it is clamped to the measured
    /// wall time so `overlapped_us <= wall_us` always holds, and it is
    /// dropped entirely when wall timers are off (a zero-length span has
    /// nothing to overlap).
    pub fn phase_end_overlapped(
        &mut self,
        round: u64,
        phase: Phase,
        start: Option<Instant>,
        overlapped_us: Option<u64>,
    ) {
        let wall_us = start.map_or(0, |s| s.elapsed().as_micros() as u64);
        let overlapped_us = if start.is_some() { overlapped_us } else { None };
        self.phase_span(round, phase, wall_us, overlapped_us);
    }

    /// Record a phase span from externally measured timings. Pipelined
    /// rounds accumulate non-contiguous commit work, so the runtime sums
    /// the pieces itself and reports the total here. `overlapped_us` is
    /// clamped to `wall_us` so the invariant obsdump checks always holds.
    pub fn phase_span(
        &mut self,
        round: u64,
        phase: Phase,
        wall_us: u64,
        overlapped_us: Option<u64>,
    ) {
        if !self.cfg.enabled {
            return;
        }
        self.record(Event::PhaseSpan {
            round,
            phase,
            wall_us,
            overlapped_us: overlapped_us.map(|o| o.min(wall_us)),
        });
    }

    /// The central metrics registry, for sequential-phase emission sites.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Read access to the registry (tests, summaries).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Merge per-worker recorder buffers into the central registry in
    /// cohort order (see [`merge_in_cohort_order`]). With telemetry off
    /// the buffers are discarded unapplied — workers should not have
    /// recorded anything, but a stale buffer must not leak into a later
    /// enabled run.
    pub fn absorb_recorders<'a, I>(&mut self, recorders: I)
    where
        I: IntoIterator<Item = &'a mut Recorder>,
    {
        if self.cfg.enabled {
            merge_in_cohort_order(recorders, &mut self.registry);
        } else {
            for r in recorders {
                r.clear();
            }
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered events, leaving the collector's summary tallies
    /// intact (calling [`Collector::summary`] afterwards still reports
    /// the full run).
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Snapshot the run's telemetry totals. Everything in the summary is
    /// derived from simulated state, so two runs that satisfy the
    /// determinism contract produce byte-identical summaries even when
    /// wall timers are on.
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary {
            events_recorded: self.recorded,
            events_dropped: self.dropped,
            event_counts: self
                .kind_counts
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            counters: self
                .registry
                .counters()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .registry
                .gauges()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .registry
                .histogram_summaries()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Consume the collector into the full run telemetry.
    pub fn finish(mut self) -> Telemetry {
        let summary = self.summary();
        Telemetry {
            events: self.take_events(),
            summary,
        }
    }
}

/// End-of-run telemetry totals, embedded in the experiment report when
/// telemetry is enabled. All fields are deterministic (no wall-clock
/// data); vectors are sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Events accepted into the buffer.
    pub events_recorded: u64,
    /// Events discarded once the buffer cap was reached.
    pub events_dropped: u64,
    /// Per-kind event tallies (include dropped events), name-sorted.
    pub event_counts: Vec<(String, u64)>,
    /// Final counter values, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl TelemetrySummary {
    /// Tally for one event kind (0 if the kind never fired).
    pub fn event_count(&self, kind: &str) -> u64 {
        self.event_counts
            .iter()
            .find(|(k, _)| k == kind)
            .map_or(0, |&(_, v)| v)
    }

    /// Final value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

/// Everything a traced run produces: the ordered event stream plus the
/// end-of-run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// The ordered event stream.
    pub events: Vec<Event>,
    /// End-of-run totals (identical to the copy embedded in the report).
    pub summary: TelemetrySummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OutcomeKind;
    use crate::metrics::LATENCY_BUCKETS_S;

    fn outcome(round: u64, client: u64) -> Event {
        Event::ClientOutcome {
            round,
            client,
            attempt: 0,
            outcome: OutcomeKind::Completed,
            sim_duration_s: 100.0,
        }
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = Collector::new(ObsConfig::off());
        assert!(!c.enabled());
        c.record(outcome(0, 1));
        c.phase_end(0, Phase::Plan, c.phase_start());
        let mut r = Recorder::new();
        r.inc(0, 0, "x", 1);
        c.absorb_recorders([&mut r]);
        assert!(r.is_empty(), "stale buffer must be drained");
        assert!(c.is_empty());
        let s = c.summary();
        assert_eq!(s, TelemetrySummary::default());
        assert_eq!(s.counter("x"), 0);
    }

    #[test]
    fn enabled_collector_buffers_and_tallies() {
        let mut c = Collector::new(ObsConfig::on());
        c.record(outcome(0, 1));
        c.record(outcome(0, 2));
        c.phase_end(0, Phase::Commit, c.phase_start());
        let s = c.summary();
        assert_eq!(s.events_recorded, 3);
        assert_eq!(s.events_dropped, 0);
        assert_eq!(s.event_count("client_outcome"), 2);
        assert_eq!(s.event_count("phase_span"), 1);
        assert_eq!(s.event_count("round_end"), 0);
        // on() keeps wall timers off: the span records zero wall time.
        let events = c.take_events();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[2],
            Event::PhaseSpan {
                wall_us: 0,
                phase: Phase::Commit,
                overlapped_us: None,
                ..
            }
        ));
        // Taking events does not reset the summary tallies.
        assert_eq!(c.summary().events_recorded, 3);
    }

    #[test]
    fn overlapped_spans_clamp_and_require_timers() {
        let mut c = Collector::new(ObsConfig::on());
        // Explicit span: the overlap claim is clamped to the wall time.
        c.phase_span(0, Phase::Execute, 100, Some(250));
        // No armed timer: the overlap is dropped with the wall time.
        c.phase_end_overlapped(0, Phase::Commit, None, Some(42));
        let events = c.take_events();
        assert!(matches!(
            events[0],
            Event::PhaseSpan {
                wall_us: 100,
                overlapped_us: Some(100),
                ..
            }
        ));
        assert!(matches!(
            events[1],
            Event::PhaseSpan {
                wall_us: 0,
                overlapped_us: None,
                ..
            }
        ));
    }

    #[test]
    fn cap_drops_but_still_counts() {
        let cfg = ObsConfig {
            max_events: 2,
            ..ObsConfig::on()
        };
        let mut c = Collector::new(cfg);
        for i in 0..5 {
            c.record(outcome(0, i));
        }
        assert_eq!(c.len(), 2);
        let s = c.summary();
        assert_eq!(s.events_recorded, 2);
        assert_eq!(s.events_dropped, 3);
        assert_eq!(
            s.event_count("client_outcome"),
            5,
            "tallies see past the cap"
        );
    }

    #[test]
    fn recorders_merge_into_summary() {
        let mut c = Collector::new(ObsConfig::on());
        let mut r0 = Recorder::new();
        let mut r1 = Recorder::new();
        r0.inc(0, 0, "attempts_executed", 1);
        r1.inc(1, 0, "attempts_executed", 1);
        r1.observe(1, 0, "latency", LATENCY_BUCKETS_S, 90.0);
        c.absorb_recorders([&mut r0, &mut r1]);
        c.registry_mut().set_gauge("sim_hours", 1.5);
        let s = c.summary();
        assert_eq!(s.counter("attempts_executed"), 2);
        assert_eq!(s.histogram("latency").expect("exists").count, 1);
        assert_eq!(s.gauges, vec![("sim_hours".to_string(), 1.5)]);
    }

    #[test]
    fn finish_bundles_events_and_summary() {
        let mut c = Collector::new(ObsConfig::on());
        c.record(outcome(3, 9));
        let t = c.finish();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.summary.events_recorded, 1);
        assert_eq!(t.summary.event_count("client_outcome"), 1);
    }

    #[test]
    fn summary_serde_roundtrip() {
        let mut c = Collector::new(ObsConfig::on());
        c.record(outcome(0, 1));
        c.registry_mut().inc("completions", 4);
        let s = c.summary();
        let json = serde_json::to_string(&s).expect("serializes");
        let back: TelemetrySummary = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, s);
    }
}
