//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Registries are plain single-threaded value types — the "lock-free"
//! property comes from the architecture, not from atomics: parallel
//! workers record into their own [`crate::Recorder`] buffers and the
//! sequential commit phase merges those buffers in cohort order, so no
//! two threads ever touch a registry concurrently and enabling metrics
//! cannot perturb the runtime's determinism contract.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Upper bucket bounds for client round latency histograms, seconds.
/// Spans the deadline regimes of the paper configs (240 s tests up to the
/// 1800 s paper deadline and its stall overruns).
pub const LATENCY_BUCKETS_S: &[f64] = &[60.0, 120.0, 240.0, 480.0, 900.0, 1800.0, 2400.0, 3600.0];

/// Upper bucket bounds for update payload sizes, bytes (the wire delta
/// after the acceleration transform).
pub const PAYLOAD_BUCKETS_BYTES: &[f64] = &[
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
];

/// Upper bucket bounds for per-round cohort utilization (completed /
/// selected, in `[0, 1]`).
pub const UTILIZATION_BUCKETS: &[f64] = &[0.1, 0.25, 0.5, 0.75, 0.9, 1.0];

/// Upper bucket bounds for the profiler's relative estimate error,
/// `|predicted − actual| / actual` on completed attempts. Geometric
/// spacing: the first bucket is "within 5%", the overflow bucket is
/// "off by more than 160%" (cold or badly drifted estimates).
pub const ESTIMATE_ERROR_BUCKETS: &[f64] = &[0.05, 0.1, 0.2, 0.4, 0.8, 1.6];

/// A fixed-bucket histogram. Buckets are cumulative-style upper bounds
/// with an implicit `+inf` overflow bucket; `min`/`max`/`sum` track the
/// raw observations for summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over `bounds` upper bucket edges (ascending) plus an
    /// implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &'static [f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. Non-finite values land in the overflow
    /// bucket and are excluded from `sum`/`min`/`max`, so a hostile value
    /// cannot poison the summary statistics.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() {
            *self.counts.last_mut().expect("counts never empty") += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations (including non-finite ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Immutable snapshot for reports and serialization.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.min.is_finite() { self.min } else { 0.0 },
            max: if self.max.is_finite() { self.max } else { 0.0 },
            buckets: self
                .bounds
                .iter()
                .copied()
                .chain(std::iter::once(f64::INFINITY))
                .zip(self.counts.iter().copied())
                .collect(),
        }
    }
}

/// Serializable snapshot of a [`Histogram`]: `(upper_bound, count)` pairs
/// with the final `+inf` overflow bucket, plus summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Minimum finite observation (0 when empty).
    pub min: f64,
    /// Maximum finite observation (0 when empty).
    pub max: f64,
    /// `(upper_bound, count)` per bucket; the last bound serializes as
    /// `null` (the shim writes non-finite floats as null) and reads back
    /// as the `+inf` overflow bucket.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSummary {
    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let finite: u64 = self.count;
        if finite == 0 {
            0.0
        } else {
            self.sum / finite as f64
        }
    }
}

/// A named collection of counters, gauges, and histograms. Keys are
/// `&'static str` metric names; iteration order is the `BTreeMap`'s
/// lexicographic order, so snapshots are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `delta` to the named counter (created at 0 on first touch).
    pub fn inc(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the named gauge.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Record an observation into the named histogram, creating it with
    /// `bounds` on first touch.
    pub fn observe(&mut self, name: &'static str, bounds: &'static [f64], value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation has been recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Histogram summaries in name order.
    pub fn histogram_summaries(
        &self,
    ) -> impl Iterator<Item = (&'static str, HistogramSummary)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v.summary()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(
            s.buckets.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            vec![1, 1, 1, 1]
        );
        assert!((s.sum - 555.5).abs() < 1e-9);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 500.0);
        assert!((s.mean() - 555.5 / 4.0).abs() < 1e-9);
        // Boundary values land in the bucket whose bound they equal.
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(1.0);
        assert_eq!(h.summary().buckets[0].1, 1);
    }

    #[test]
    fn histogram_quarantines_non_finite() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.5);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.last().expect("overflow").1, 2);
        assert_eq!(s.sum, 0.5);
        assert_eq!(s.max, 0.5);
    }

    #[test]
    fn histogram_merge_adds_componentwise() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        let mut b = Histogram::new(&[1.0, 10.0]);
        a.observe(0.5);
        b.observe(5.0);
        b.observe(50.0);
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 50.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.inc("attempts", 2);
        r.inc("attempts", 3);
        r.set_gauge("battery", 0.8);
        r.observe("latency_s", LATENCY_BUCKETS_S, 100.0);
        assert_eq!(r.counter("attempts"), 5);
        assert_eq!(r.counter("never"), 0);
        assert_eq!(r.gauge("battery"), Some(0.8));
        assert_eq!(r.histogram("latency_s").expect("exists").count(), 1);
        // Deterministic name-ordered iteration.
        r.inc("aaa", 1);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aaa", "attempts"]);
    }

    #[test]
    fn summary_serde_roundtrip() {
        let mut h = Histogram::new(UTILIZATION_BUCKETS);
        h.observe(0.6);
        h.observe(1.0);
        let s = h.summary();
        let json = serde_json::to_string(&s).expect("serializes");
        let back: HistogramSummary = serde_json::from_str(&json).expect("deserializes");
        // The +inf bound serializes as null and reads back as NaN; compare
        // everything else exactly.
        assert_eq!(back.count, s.count);
        assert_eq!(back.sum, s.sum);
        assert_eq!(back.min, s.min);
        assert_eq!(back.max, s.max);
        assert_eq!(back.buckets.len(), s.buckets.len());
        for ((bb, bc), (sb, sc)) in back.buckets.iter().zip(&s.buckets) {
            assert_eq!(bc, sc);
            assert!(bb == sb || (!bb.is_finite() && !sb.is_finite()));
        }
    }
}
