//! The structured event stream.
//!
//! Every event carries the round it belongs to and, where meaningful, the
//! *simulated* clock (`sim_s`). Events are recorded exclusively from the
//! runtime's sequential phases (plan / commit / bookkeeping), in cohort
//! order, so a stream captured at one worker-thread count is bit-identical
//! to one captured at any other — the only exception is the wall-clock
//! payload of [`Event::PhaseSpan`], which is opt-in and zero unless
//! [`crate::ObsConfig::wall_timers`] is set.

use serde::{Deserialize, Serialize};

/// One phase of the two-phase round engine (DESIGN.md §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Sequential decision phase: selection, RNG draws, action choice.
    Plan,
    /// Parallel execution phase: resource sim + local training.
    Execute,
    /// Sequential commit phase: ledger, feedback, aggregation input.
    Commit,
}

impl Phase {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Execute => "execute",
            Phase::Commit => "commit",
        }
    }
}

/// How one committed client attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// The update completed and was handed to aggregation once.
    Completed,
    /// The update completed but the transport delivered it twice; the
    /// server's dedup pass suppresses the extra copy.
    Duplicate,
    /// The update arrived but payload validation quarantined it
    /// (non-finite delta).
    Quarantined,
    /// The upload stalled past the server timeout; the sync engine may
    /// commit a follow-up attempt with a bumped `attempt` number.
    Stalled,
    /// Any other dropout (deadline, memory, availability, crash).
    Dropped,
}

impl OutcomeKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::Completed => "completed",
            OutcomeKind::Duplicate => "duplicate",
            OutcomeKind::Quarantined => "quarantined",
            OutcomeKind::Stalled => "stalled",
            OutcomeKind::Dropped => "dropped",
        }
    }

    /// Whether the attempt counts as a completion in the resource ledger.
    pub fn is_completion(self) -> bool {
        matches!(self, OutcomeKind::Completed | OutcomeKind::Duplicate)
    }
}

/// One telemetry event. See the module docs for the ordering contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A round (or async aggregation window) began.
    RoundStart {
        /// Round index.
        round: u64,
        /// Simulated clock at round start, seconds.
        sim_s: f64,
        /// Clients that checked in as available.
        eligible: u64,
        /// Clients tasked in the opening cohort.
        selected: u64,
    },
    /// One engine phase of a cohort batch finished. `wall_us` is the
    /// measured wall-clock duration in microseconds when wall timers are
    /// enabled, and `0` otherwise (the event still marks phase ordering).
    /// Under pipelined rounds a span may run concurrently with another
    /// phase; `overlapped_us` records that overlapped portion so obsdump
    /// can reconcile per-round wall totals without double counting.
    PhaseSpan {
        /// Round index.
        round: u64,
        /// Which phase.
        phase: Phase,
        /// Wall-clock duration in µs (0 unless wall timers are on).
        wall_us: u64,
        /// Of `wall_us`, the microseconds spent overlapped with another
        /// phase (pipelined rounds only; absent for sequential spans).
        /// Always `<= wall_us` when present.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        overlapped_us: Option<u64>,
    },
    /// The acceleration decision for one planned client attempt.
    AccelDecision {
        /// Round index.
        round: u64,
        /// Client id.
        client: u64,
        /// Compact discretized agent state, e.g. `"s62h1"` (local-state
        /// index + human-feedback level index); `"-"` for non-agent modes.
        state: String,
        /// Chosen action name (e.g. `"quant8"`, `"noop"`).
        action: String,
        /// Scalarized Q-value of the chosen action at decision time
        /// (0 for non-agent modes and never-visited states).
        q: f64,
        /// Whether the choice came from the exploration branch.
        explore: bool,
    },
    /// The fault schedule injected a fault into an attempt.
    FaultInjected {
        /// Round index.
        round: u64,
        /// Client id.
        client: u64,
        /// Delivery attempt number (retries bump it).
        attempt: u64,
        /// Fault kind name (e.g. `"network-stall"`).
        kind: String,
    },
    /// One client attempt was committed.
    ClientOutcome {
        /// Round index.
        round: u64,
        /// Client id.
        client: u64,
        /// Delivery attempt number (0 first try; >0 are stall retries).
        attempt: u64,
        /// How the attempt ended.
        outcome: OutcomeKind,
        /// Simulated duration of the attempt, seconds.
        sim_duration_s: f64,
    },
    /// The server folded buffered updates into the global model.
    AggregationApplied {
        /// Round index.
        round: u64,
        /// Simulated clock at aggregation, seconds.
        sim_s: f64,
        /// Updates aggregated (after dedup).
        updates: u64,
        /// Duplicate copies suppressed by the dedup pass.
        suppressed: u64,
    },
    /// A round (or async aggregation window) ended.
    RoundEnd {
        /// Round index.
        round: u64,
        /// Simulated clock at round end, seconds.
        sim_s: f64,
        /// Final attempts that completed.
        completed: u64,
        /// Final attempts that dropped (includes quarantined).
        dropped: u64,
        /// Of the dropped, how many were quarantined.
        quarantined: u64,
    },
}

impl Event {
    /// The round this event belongs to.
    pub fn round(&self) -> u64 {
        match *self {
            Event::RoundStart { round, .. }
            | Event::PhaseSpan { round, .. }
            | Event::AccelDecision { round, .. }
            | Event::FaultInjected { round, .. }
            | Event::ClientOutcome { round, .. }
            | Event::AggregationApplied { round, .. }
            | Event::RoundEnd { round, .. } => round,
        }
    }

    /// Stable kind label, used for summary counters and digests.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round_start",
            Event::PhaseSpan { .. } => "phase_span",
            Event::AccelDecision { .. } => "accel_decision",
            Event::FaultInjected { .. } => "fault_injected",
            Event::ClientOutcome { .. } => "client_outcome",
            Event::AggregationApplied { .. } => "aggregation_applied",
            Event::RoundEnd { .. } => "round_end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_accessor_covers_every_variant() {
        let events = [
            Event::RoundStart {
                round: 3,
                sim_s: 1.0,
                eligible: 10,
                selected: 4,
            },
            Event::PhaseSpan {
                round: 3,
                phase: Phase::Plan,
                wall_us: 0,
                overlapped_us: None,
            },
            Event::AccelDecision {
                round: 3,
                client: 7,
                state: "s1h0".into(),
                action: "quant8".into(),
                q: 0.5,
                explore: false,
            },
            Event::FaultInjected {
                round: 3,
                client: 7,
                attempt: 0,
                kind: "network-stall".into(),
            },
            Event::ClientOutcome {
                round: 3,
                client: 7,
                attempt: 0,
                outcome: OutcomeKind::Stalled,
                sim_duration_s: 2250.0,
            },
            Event::AggregationApplied {
                round: 3,
                sim_s: 2.0,
                updates: 8,
                suppressed: 1,
            },
            Event::RoundEnd {
                round: 3,
                sim_s: 2.0,
                completed: 8,
                dropped: 2,
                quarantined: 1,
            },
        ];
        for e in &events {
            assert_eq!(e.round(), 3, "variant {}", e.kind());
        }
        let kinds: std::collections::HashSet<&str> = events.iter().map(Event::kind).collect();
        assert_eq!(kinds.len(), events.len(), "kind labels must be unique");
    }

    #[test]
    fn serde_roundtrip_preserves_events() {
        let e = Event::ClientOutcome {
            round: 12,
            client: 33,
            attempt: 2,
            outcome: OutcomeKind::Duplicate,
            sim_duration_s: 812.5,
        };
        let s = serde_json::to_string(&e).expect("serializes");
        let back: Event = serde_json::from_str(&s).expect("deserializes");
        assert_eq!(e, back);
    }

    #[test]
    fn outcome_kinds_classify_completions() {
        assert!(OutcomeKind::Completed.is_completion());
        assert!(OutcomeKind::Duplicate.is_completion());
        assert!(!OutcomeKind::Quarantined.is_completion());
        assert!(!OutcomeKind::Stalled.is_completion());
        assert!(!OutcomeKind::Dropped.is_completion());
    }
}
