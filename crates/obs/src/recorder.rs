//! Per-worker sample buffers for the parallel execute phase.
//!
//! Workers in the parallel phase cannot touch the central
//! [`MetricsRegistry`] — sharing it would need locks and, worse, make
//! merge order depend on thread scheduling. Instead each worker owns a
//! [`Recorder`]: an append-only buffer of `(cohort key, sample)` pairs.
//! After the fan-out joins, the sequential commit path drains every
//! worker's buffer and applies the samples **sorted by cohort key**, so
//! the registry sees exactly the same sequence no matter which worker
//! executed which attempt. Counters and histogram buckets are commutative
//! anyway; the ordered merge is what lets gauges and any future
//! order-sensitive metric join the registry without breaking the
//! determinism contract.

use crate::metrics::MetricsRegistry;

/// One buffered metric sample.
#[derive(Debug, Clone, PartialEq)]
enum Sample {
    /// Add to a counter.
    Inc { name: &'static str, delta: u64 },
    /// Observe into a fixed-bucket histogram.
    Observe {
        name: &'static str,
        bounds: &'static [f64],
        value: f64,
    },
}

/// Ordering key of a buffered sample: `(cohort index, attempt)`. Retries
/// of the same cohort slot sort after the original attempt.
type Key = (u64, u32);

/// An append-only per-worker metric buffer.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    entries: Vec<(Key, Sample)>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Buffer a counter increment for cohort slot `index`, delivery
    /// `attempt`.
    pub fn inc(&mut self, index: u64, attempt: u32, name: &'static str, delta: u64) {
        self.entries
            .push(((index, attempt), Sample::Inc { name, delta }));
    }

    /// Buffer a histogram observation for cohort slot `index`, delivery
    /// `attempt`.
    pub fn observe(
        &mut self,
        index: u64,
        attempt: u32,
        name: &'static str,
        bounds: &'static [f64],
        value: f64,
    ) {
        self.entries.push((
            (index, attempt),
            Sample::Observe {
                name,
                bounds,
                value,
            },
        ));
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discard all buffered samples without applying them.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Drain every recorder and apply the union of their samples to
/// `registry`, ordered by `(cohort index, attempt)`. Sort order — not
/// buffer order — defines the merge, so the result is independent of how
/// the scheduler distributed attempts over workers.
pub fn merge_in_cohort_order<'a, I>(recorders: I, registry: &mut MetricsRegistry)
where
    I: IntoIterator<Item = &'a mut Recorder>,
{
    let mut all: Vec<(Key, Sample)> = Vec::new();
    for r in recorders {
        all.append(&mut r.entries);
    }
    all.sort_by_key(|&(key, _)| key);
    for (_, sample) in all {
        match sample {
            Sample::Inc { name, delta } => registry.inc(name, delta),
            Sample::Observe {
                name,
                bounds,
                value,
            } => registry.observe(name, bounds, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LATENCY_BUCKETS_S;

    #[test]
    fn merge_is_schedule_independent() {
        // The same six samples split across workers two different ways
        // must produce identical registries.
        let build = |splits: &[&[u64]]| {
            let mut recorders: Vec<Recorder> = splits.iter().map(|_| Recorder::new()).collect();
            for (w, idxs) in splits.iter().enumerate() {
                for &i in idxs.iter() {
                    recorders[w].inc(i, 0, "attempts", 1);
                    recorders[w].observe(i, 0, "lat", LATENCY_BUCKETS_S, 100.0 * (i + 1) as f64);
                }
            }
            let mut reg = MetricsRegistry::new();
            merge_in_cohort_order(recorders.iter_mut(), &mut reg);
            assert!(recorders.iter().all(Recorder::is_empty), "drained");
            reg
        };
        let a = build(&[&[0, 2, 4], &[1, 3, 5]]);
        let b = build(&[&[5, 1], &[4, 0, 3, 2]]);
        assert_eq!(a, b);
        assert_eq!(a.counter("attempts"), 6);
        assert_eq!(a.histogram("lat").expect("exists").count(), 6);
    }

    #[test]
    fn retries_sort_after_the_original_attempt() {
        let mut r0 = Recorder::new();
        let mut r1 = Recorder::new();
        // Worker 1 executed the original attempt of slot 3; worker 0 ran
        // its retry. Concatenation order would put the retry first; the
        // keyed sort must not.
        r0.inc(3, 1, "x", 10);
        r1.inc(3, 0, "x", 1);
        let mut reg = MetricsRegistry::new();
        merge_in_cohort_order([&mut r0, &mut r1], &mut reg);
        assert_eq!(reg.counter("x"), 11);
    }

    #[test]
    fn empty_recorders_merge_to_empty_registry() {
        let mut reg = MetricsRegistry::new();
        merge_in_cohort_order(std::iter::empty(), &mut reg);
        assert_eq!(reg, MetricsRegistry::new());
        let mut r = Recorder::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        merge_in_cohort_order([&mut r], &mut reg);
        assert_eq!(reg, MetricsRegistry::new());
    }
}
