//! # float-profile — online client profiling from observed outcomes
//!
//! FLOAT's selectors and acceleration agent need per-client estimates of
//! compute latency, upload bandwidth, and reliability. The trace files
//! hold oracle values, but a real deployment only ever sees what the
//! server observes: round outcomes. This crate turns the commit-phase
//! observation stream into those estimates.
//!
//! The profiler is strictly deterministic: it is updated only from the
//! sequential commit phase (slot order), uses no RNG and no wall clock,
//! and its state is a pure fold over the observation sequence — so any
//! run that feeds it the same outcomes in the same order reproduces it
//! bit for bit, regardless of worker-thread count.
//!
//! The store is bounded and sparse: `O(min(observed clients, capacity))`
//! memory with ShardCache-style LRU eviction, so it holds at the 1M/10M
//! population presets.
//!
//! Layering: this is a leaf crate (serde only) so that `float-select`,
//! `float-core`, and `float-bench` can all depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod estimator;
pub mod profiler;

pub use config::{ColdStartPolicy, ProfilingConfig};
pub use estimator::{Ewma, P2Quantile};
pub use profiler::{
    ClientEstimate, ClientProfiler, Observation, ObservedOutcome, ProfileView, ProfilerStats,
};
