//! Profiling configuration: the `ExperimentConfig::profiling` knob.
//!
//! Everything here is `Copy` because `ExperimentConfig` is `Copy` (it is
//! snapshotted into the per-attempt execute context).

use serde::{Deserialize, Serialize};

/// What the runtime should assume about a client it has never observed.
///
/// This only governs the *accel-agent / pacing* features (local resource
/// fractions and the overrun estimate). Selectors keep their own
/// cold-start behaviour: a `None` estimate routes the client through the
/// selector's existing exploration / prior path (Oort's untried pool,
/// REFL's 0.5 availability prior, TiFL's unprofiled tier watermark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ColdStartPolicy {
    /// Use population-level running estimates (the mean of everything
    /// observed so far); before any observation exists at all, behave
    /// like [`ColdStartPolicy::Optimistic`]. This is the default: new
    /// clients are assumed to look like the fleet.
    #[default]
    GlobalPrior,
    /// Assume a healthy client: full resource fractions, no overrun.
    /// First contact runs the heaviest plan the policy allows.
    Optimistic,
    /// Assume a constrained client: quarter resource fractions and a
    /// 1.5x-deadline latency guess. First contact runs conservatively.
    Pessimistic,
}

/// Configuration for the online client profiler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilingConfig {
    /// Master switch. Off means the runtime keeps today's oracle path,
    /// byte-identical to the pinned goldens.
    pub enabled: bool,
    /// Bounded-store capacity in clients. `0` means auto: the population
    /// size clamped to [`ProfilingConfig::AUTO_CAPACITY_CAP`], so the
    /// store stays O(MB) even at the 1M/10M presets.
    pub capacity: usize,
    /// EWMA smoothing factor for latency estimates, in (0, 1].
    pub latency_alpha: f64,
    /// EWMA smoothing factor for bandwidth/compute estimates, in (0, 1].
    pub bandwidth_alpha: f64,
    /// Policy for never-observed clients (see [`ColdStartPolicy`]).
    pub cold_start: ColdStartPolicy,
    /// Evaluation knob: record nothing and answer every query with the
    /// cold-start prior. This is the "cold start forever" lower bound in
    /// the `profile_gap` bench; it requires `enabled`.
    pub cold_only: bool,
}

impl ProfilingConfig {
    /// Cap applied to the auto-sized store (`capacity == 0`).
    pub const AUTO_CAPACITY_CAP: usize = 8192;

    /// Profiling disabled — the oracle path. This is the default.
    pub fn off() -> Self {
        Self {
            enabled: false,
            capacity: 0,
            latency_alpha: 0.3,
            bandwidth_alpha: 0.3,
            cold_start: ColdStartPolicy::GlobalPrior,
            cold_only: false,
        }
    }

    /// Profiling enabled with default estimator constants.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::off()
        }
    }

    /// The cold-start-forever evaluation mode (see `cold_only`).
    pub fn cold_only() -> Self {
        Self {
            cold_only: true,
            ..Self::on()
        }
    }

    /// The store capacity to use for a population of `num_clients`.
    pub fn resolved_capacity(&self, num_clients: usize) -> usize {
        if self.capacity > 0 {
            self.capacity
        } else {
            num_clients.clamp(1, Self::AUTO_CAPACITY_CAP)
        }
    }

    /// Validate ranges; errors carry the offending value.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.latency_alpha > 0.0 && self.latency_alpha <= 1.0) {
            return Err(format!(
                "profiling.latency_alpha must be in (0, 1], got {}",
                self.latency_alpha
            ));
        }
        if !(self.bandwidth_alpha > 0.0 && self.bandwidth_alpha <= 1.0) {
            return Err(format!(
                "profiling.bandwidth_alpha must be in (0, 1], got {}",
                self.bandwidth_alpha
            ));
        }
        if self.cold_only && !self.enabled {
            return Err("profiling.cold_only = true requires profiling.enabled = true".to_string());
        }
        Ok(())
    }
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ProfilingConfig::off().validate().unwrap();
        ProfilingConfig::on().validate().unwrap();
        ProfilingConfig::cold_only().validate().unwrap();
    }

    #[test]
    fn bad_values_are_rejected_with_the_value_in_the_message() {
        let mut cfg = ProfilingConfig::on();
        cfg.latency_alpha = 0.0;
        assert!(cfg.validate().unwrap_err().contains("got 0"));
        let mut cfg = ProfilingConfig::on();
        cfg.bandwidth_alpha = 1.5;
        assert!(cfg.validate().unwrap_err().contains("got 1.5"));
        let mut cfg = ProfilingConfig::off();
        cfg.cold_only = true;
        assert!(cfg.validate().unwrap_err().contains("cold_only"));
    }

    #[test]
    fn auto_capacity_tracks_population_up_to_the_cap() {
        let cfg = ProfilingConfig::on();
        assert_eq!(cfg.resolved_capacity(100), 100);
        assert_eq!(
            cfg.resolved_capacity(10_000_000),
            ProfilingConfig::AUTO_CAPACITY_CAP
        );
        assert_eq!(cfg.resolved_capacity(0), 1);
        let mut pinned = cfg;
        pinned.capacity = 64;
        assert_eq!(pinned.resolved_capacity(10_000_000), 64);
    }

    #[test]
    fn default_round_trips_through_serde_as_off() {
        let cfg = ProfilingConfig::default();
        assert!(!cfg.enabled);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ProfilingConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
