//! The online client profiler: a bounded, deterministic fold over the
//! commit-phase observation stream.
//!
//! Update rules (the ISSUE 9 contract):
//! - every observation bumps the client's reliability counters;
//! - only **completed** attempts update latency / bandwidth / compute
//!   estimates — a quarantined or dropped attempt must never teach the
//!   profiler how fast a client is, only how reliable it is;
//! - stalls and OOM kills are counted separately so straggle and memory
//!   pressure can be estimated as Beta-style probabilities.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::config::{ColdStartPolicy, ProfilingConfig};
use crate::estimator::{Ewma, P2Quantile};

/// How an observed attempt ended, as seen from the commit phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ObservedOutcome {
    /// The update arrived and was applied (duplicates count here too:
    /// the client did the work and the wire carried the bytes).
    Completed,
    /// The attempt hit the stall path (network outage past deadline).
    Stalled,
    /// The update arrived but was quarantined (non-finite payload).
    /// Updates reliability only — never latency or bandwidth.
    Quarantined,
    /// Dropped by the memory killer.
    DroppedOom,
    /// Dropped for any other reason (deadline, crash, battery, ...).
    Dropped,
}

/// One commit-phase observation of a client attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Aggregation round the attempt was committed in.
    pub round: u64,
    /// How the attempt ended.
    pub kind: ObservedOutcome,
    /// Simulated wall time of the attempt, seconds.
    pub duration_s: f64,
    /// Witnessed upload throughput in Mbit/s, when the attempt
    /// completed and the uplink phase took measurable time.
    pub upload_mbps: Option<f64>,
    /// Witnessed training throughput in GFLOP/s, when the attempt
    /// completed and the training phase took measurable time.
    pub compute_gflops: Option<f64>,
}

impl Observation {
    /// An observation reconstructed from a telemetry event stream,
    /// which carries outcome kind and duration but not phase rates.
    pub fn replay(round: u64, kind: ObservedOutcome, duration_s: f64) -> Self {
        Self {
            round,
            kind,
            duration_s,
            upload_mbps: None,
            compute_gflops: None,
        }
    }
}

/// Per-client estimator state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClientProfile {
    latency: Ewma,
    latency_p50: P2Quantile,
    latency_p90: P2Quantile,
    bandwidth: Ewma,
    /// Highest upload throughput ever witnessed (Mbit/s; 0 = none). The
    /// reference scale for turning a bandwidth estimate into a relative
    /// network-availability fraction without consulting the trace oracle.
    bandwidth_peak: f64,
    compute: Ewma,
    observed: u64,
    completed: u64,
    quarantined: u64,
    stalled: u64,
    oom: u64,
    last_round: u64,
}

impl ClientProfile {
    fn new(cfg: &ProfilingConfig) -> Self {
        Self {
            latency: Ewma::new(cfg.latency_alpha),
            latency_p50: P2Quantile::new(0.5),
            latency_p90: P2Quantile::new(0.9),
            bandwidth: Ewma::new(cfg.bandwidth_alpha),
            bandwidth_peak: 0.0,
            compute: Ewma::new(cfg.bandwidth_alpha),
            observed: 0,
            completed: 0,
            quarantined: 0,
            stalled: 0,
            oom: 0,
            last_round: 0,
        }
    }

    fn observe(&mut self, obs: &Observation) {
        self.observed += 1;
        self.last_round = obs.round;
        match obs.kind {
            ObservedOutcome::Completed => {
                self.completed += 1;
                if obs.duration_s.is_finite() && obs.duration_s > 0.0 {
                    self.latency.observe(obs.duration_s);
                    self.latency_p50.observe(obs.duration_s);
                    self.latency_p90.observe(obs.duration_s);
                }
                if let Some(mbps) = obs.upload_mbps {
                    if mbps.is_finite() && mbps > 0.0 {
                        self.bandwidth.observe(mbps);
                        if mbps > self.bandwidth_peak {
                            self.bandwidth_peak = mbps;
                        }
                    }
                }
                if let Some(gflops) = obs.compute_gflops {
                    if gflops.is_finite() && gflops > 0.0 {
                        self.compute.observe(gflops);
                    }
                }
            }
            ObservedOutcome::Quarantined => self.quarantined += 1,
            ObservedOutcome::Stalled => self.stalled += 1,
            ObservedOutcome::DroppedOom => self.oom += 1,
            ObservedOutcome::Dropped => {}
        }
    }

    fn estimate(&self) -> ClientEstimate {
        ClientEstimate {
            latency_s: self.latency.value(),
            latency_p50_s: self.latency_p50.value(),
            latency_p90_s: self.latency_p90.value(),
            bandwidth_mbps: self.bandwidth.value(),
            bandwidth_peak_mbps: (self.bandwidth_peak > 0.0).then_some(self.bandwidth_peak),
            compute_gflops: self.compute.value(),
            reliability: beta_mean(self.completed, self.observed),
            straggle_p: beta_mean(self.stalled, self.observed),
            oom_p: beta_mean(self.oom, self.observed),
            observations: self.observed,
            completions: self.completed,
            quarantines: self.quarantined,
            last_round: self.last_round,
        }
    }
}

/// Beta(1, 1)-prior posterior mean for `hits` out of `trials`.
fn beta_mean(hits: u64, trials: u64) -> f64 {
    (hits as f64 + 1.0) / (trials as f64 + 2.0)
}

/// A point-in-time snapshot of everything the profiler believes about
/// one client. All fields derive purely from observed outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientEstimate {
    /// EWMA of completed-attempt durations, seconds.
    pub latency_s: Option<f64>,
    /// Streaming median of completed-attempt durations, seconds.
    pub latency_p50_s: Option<f64>,
    /// Streaming p90 of completed-attempt durations, seconds.
    pub latency_p90_s: Option<f64>,
    /// EWMA of witnessed upload throughput, Mbit/s.
    pub bandwidth_mbps: Option<f64>,
    /// Highest upload throughput ever witnessed, Mbit/s — the client's
    /// empirical link ceiling, used to express `bandwidth_mbps` as a
    /// relative availability fraction.
    pub bandwidth_peak_mbps: Option<f64>,
    /// EWMA of witnessed training throughput, GFLOP/s.
    pub compute_gflops: Option<f64>,
    /// Beta-mean completion probability: (completed+1)/(observed+2).
    pub reliability: f64,
    /// Beta-mean stall probability: (stalled+1)/(observed+2).
    pub straggle_p: f64,
    /// Beta-mean OOM probability: (oom+1)/(observed+2).
    pub oom_p: f64,
    /// Total attempts observed for this client.
    pub observations: u64,
    /// Completed attempts observed for this client.
    pub completions: u64,
    /// Quarantined attempts observed for this client.
    pub quarantines: u64,
    /// Round of the most recent observation.
    pub last_round: u64,
}

/// Store accounting, ShardCache-style. The identities
/// `inserted == evictions + resident`, `resident <= capacity`, and
/// `observations == suppressed + sum(per-kind counters)` always hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProfilerStats {
    /// Observations offered to the profiler (including suppressed).
    pub observations: u64,
    /// Observations discarded because `cold_only` is set.
    pub suppressed: u64,
    /// Completed attempts recorded.
    pub completed: u64,
    /// Stalled attempts recorded.
    pub stalled: u64,
    /// Quarantined attempts recorded.
    pub quarantined: u64,
    /// OOM-dropped attempts recorded.
    pub oom: u64,
    /// Other dropped attempts recorded.
    pub dropped: u64,
    /// Distinct clients ever inserted into the store.
    pub inserted: u64,
    /// Clients evicted to stay within capacity.
    pub evictions: u64,
    /// Clients currently resident.
    pub resident: usize,
    /// High-water mark of resident clients.
    pub peak_resident: usize,
    /// Configured capacity.
    pub capacity: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    profile: ClientProfile,
    last_used: u64,
}

/// The bounded, deterministic per-client profile store.
///
/// Reads (`view`, `estimate`) take `&self` and never touch the LRU
/// clock; only [`ClientProfiler::observe`] mutates state. Eviction
/// picks the unique minimum `last_used` stamp (stamps are issued from a
/// strictly increasing clock, so the minimum is unique), which makes
/// the resident set a pure function of the observation sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientProfiler {
    cfg: ProfilingConfig,
    capacity: usize,
    clock: u64,
    clients: HashMap<usize, Entry>,
    global_latency: Ewma,
    global_bandwidth: Ewma,
    global_bandwidth_peak: f64,
    global_compute: Ewma,
    global_observed: u64,
    global_completed: u64,
    global_stalled: u64,
    global_oom: u64,
    stats: ProfilerStats,
}

impl ClientProfiler {
    /// Build a profiler with an explicit store capacity (clients).
    ///
    /// # Panics
    /// If `capacity == 0` — a zero-capacity profiler cannot hold any
    /// estimate and would silently degrade to cold-start everywhere.
    pub fn new(cfg: ProfilingConfig, capacity: usize) -> Self {
        assert!(capacity > 0, "profiler capacity must be positive");
        Self {
            cfg,
            capacity,
            clock: 0,
            clients: HashMap::new(),
            global_latency: Ewma::new(cfg.latency_alpha),
            global_bandwidth: Ewma::new(cfg.bandwidth_alpha),
            global_bandwidth_peak: 0.0,
            global_compute: Ewma::new(cfg.bandwidth_alpha),
            global_observed: 0,
            global_completed: 0,
            global_stalled: 0,
            global_oom: 0,
            stats: ProfilerStats {
                capacity,
                ..ProfilerStats::default()
            },
        }
    }

    /// Build a profiler for a population, using the config's capacity
    /// resolution rule.
    pub fn for_population(cfg: ProfilingConfig, num_clients: usize) -> Self {
        let capacity = cfg.resolved_capacity(num_clients);
        Self::new(cfg, capacity)
    }

    /// The config this profiler was built with.
    pub fn config(&self) -> &ProfilingConfig {
        &self.cfg
    }

    /// Fold one commit-phase observation into the store.
    pub fn observe(&mut self, client: usize, obs: &Observation) {
        self.stats.observations += 1;
        if self.cfg.cold_only {
            self.stats.suppressed += 1;
            return;
        }
        match obs.kind {
            ObservedOutcome::Completed => self.stats.completed += 1,
            ObservedOutcome::Stalled => self.stats.stalled += 1,
            ObservedOutcome::Quarantined => self.stats.quarantined += 1,
            ObservedOutcome::DroppedOom => self.stats.oom += 1,
            ObservedOutcome::Dropped => self.stats.dropped += 1,
        }

        // Population-level running estimates (the GlobalPrior source).
        self.global_observed += 1;
        if obs.kind == ObservedOutcome::Completed {
            self.global_completed += 1;
            if obs.duration_s.is_finite() && obs.duration_s > 0.0 {
                self.global_latency.observe(obs.duration_s);
            }
            if let Some(mbps) = obs.upload_mbps {
                if mbps.is_finite() && mbps > 0.0 {
                    self.global_bandwidth.observe(mbps);
                    if mbps > self.global_bandwidth_peak {
                        self.global_bandwidth_peak = mbps;
                    }
                }
            }
            if let Some(gflops) = obs.compute_gflops {
                if gflops.is_finite() && gflops > 0.0 {
                    self.global_compute.observe(gflops);
                }
            }
        }
        if obs.kind == ObservedOutcome::Stalled {
            self.global_stalled += 1;
        }
        if obs.kind == ObservedOutcome::DroppedOom {
            self.global_oom += 1;
        }

        self.clock += 1;
        let stamp = self.clock;
        if let Some(entry) = self.clients.get_mut(&client) {
            entry.profile.observe(obs);
            entry.last_used = stamp;
            return;
        }
        if self.clients.len() >= self.capacity {
            // Evict the least-recently-observed client. Stamps are
            // unique (strictly increasing clock), so the victim is
            // deterministic regardless of HashMap iteration order.
            if let Some(&victim) = self
                .clients
                .iter()
                .min_by(|a, b| a.1.last_used.cmp(&b.1.last_used))
                .map(|(k, _)| k)
            {
                self.clients.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        let mut profile = ClientProfile::new(&self.cfg);
        profile.observe(obs);
        self.clients.insert(
            client,
            Entry {
                profile,
                last_used: stamp,
            },
        );
        self.stats.inserted += 1;
        self.stats.resident = self.clients.len();
        if self.clients.len() > self.stats.peak_resident {
            self.stats.peak_resident = self.clients.len();
        }
    }

    /// Has this client ever been observed (and is still resident)?
    pub fn observed(&self, client: usize) -> bool {
        !self.cfg.cold_only && self.clients.contains_key(&client)
    }

    /// The current estimate for a client, `None` if never observed (or
    /// evicted, or `cold_only` — the cold-start path in all cases).
    pub fn estimate(&self, client: usize) -> Option<ClientEstimate> {
        if self.cfg.cold_only {
            return None;
        }
        self.clients.get(&client).map(|e| e.profile.estimate())
    }

    /// Population-level estimate (the `GlobalPrior` cold-start source);
    /// `None` before anything has been observed.
    pub fn global_estimate(&self) -> Option<ClientEstimate> {
        if self.cfg.cold_only || self.global_observed == 0 {
            return None;
        }
        Some(ClientEstimate {
            latency_s: self.global_latency.value(),
            latency_p50_s: self.global_latency.value(),
            latency_p90_s: self.global_latency.value(),
            bandwidth_mbps: self.global_bandwidth.value(),
            bandwidth_peak_mbps: (self.global_bandwidth_peak > 0.0)
                .then_some(self.global_bandwidth_peak),
            compute_gflops: self.global_compute.value(),
            reliability: beta_mean(self.global_completed, self.global_observed),
            straggle_p: beta_mean(self.global_stalled, self.global_observed),
            oom_p: beta_mean(self.global_oom, self.global_observed),
            observations: self.global_observed,
            completions: self.global_completed,
            quarantines: 0,
            last_round: 0,
        })
    }

    /// Store accounting snapshot.
    pub fn stats(&self) -> ProfilerStats {
        let mut s = self.stats;
        s.resident = self.clients.len();
        s
    }

    /// Number of clients currently resident in the store.
    pub fn resident(&self) -> usize {
        self.clients.len()
    }

    /// Deterministically ordered (client, estimate) table — resident
    /// clients sorted by id. For dump/report tooling.
    pub fn table(&self) -> Vec<(usize, ClientEstimate)> {
        let mut rows: Vec<(usize, ClientEstimate)> = self
            .clients
            .iter()
            .map(|(&c, e)| (c, e.profile.estimate()))
            .collect();
        rows.sort_by_key(|(c, _)| *c);
        rows
    }

    /// Borrowed read-only view, the type the runtime hands to selectors.
    pub fn view(&self) -> ProfileView<'_> {
        ProfileView { profiler: self }
    }
}

/// A read-only window onto a [`ClientProfiler`], passed to selectors
/// and the accel feature path during the (parallel-safe) plan phase.
#[derive(Debug, Clone, Copy)]
pub struct ProfileView<'a> {
    profiler: &'a ClientProfiler,
}

impl ProfileView<'_> {
    /// Has this client at least one resident observation?
    pub fn observed(&self, client: usize) -> bool {
        self.profiler.observed(client)
    }

    /// Estimate for a client, `None` means cold start.
    pub fn estimate(&self, client: usize) -> Option<ClientEstimate> {
        self.profiler.estimate(client)
    }

    /// Population-level estimate, `None` before any observation.
    pub fn global_estimate(&self) -> Option<ClientEstimate> {
        self.profiler.global_estimate()
    }

    /// The configured cold-start policy.
    pub fn cold_start(&self) -> ColdStartPolicy {
        self.profiler.cfg.cold_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(round: u64, duration_s: f64) -> Observation {
        Observation {
            round,
            kind: ObservedOutcome::Completed,
            duration_s,
            upload_mbps: Some(8.0),
            compute_gflops: Some(2.0),
        }
    }

    fn profiler(capacity: usize) -> ClientProfiler {
        ClientProfiler::new(ProfilingConfig::on(), capacity)
    }

    #[test]
    fn completed_attempts_move_every_estimate() {
        let mut p = profiler(8);
        p.observe(3, &completed(0, 10.0));
        let est = p.estimate(3).unwrap();
        assert_eq!(est.latency_s, Some(10.0));
        assert_eq!(est.bandwidth_mbps, Some(8.0));
        assert_eq!(est.bandwidth_peak_mbps, Some(8.0));
        assert_eq!(est.compute_gflops, Some(2.0));
        assert_eq!(est.completions, 1);
        assert!((est.reliability - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quarantine_updates_reliability_never_latency() {
        let mut p = profiler(8);
        p.observe(3, &completed(0, 10.0));
        let before = p.estimate(3).unwrap();
        p.observe(
            3,
            &Observation::replay(1, ObservedOutcome::Quarantined, 99.0),
        );
        let after = p.estimate(3).unwrap();
        assert_eq!(after.latency_s, before.latency_s);
        assert_eq!(after.latency_p90_s, before.latency_p90_s);
        assert_eq!(after.bandwidth_mbps, before.bandwidth_mbps);
        assert!(after.reliability < before.reliability);
        assert_eq!(after.quarantines, 1);
    }

    #[test]
    fn drops_and_stalls_never_touch_latency_either() {
        let mut p = profiler(8);
        p.observe(3, &completed(0, 10.0));
        p.observe(3, &Observation::replay(1, ObservedOutcome::Dropped, 500.0));
        p.observe(3, &Observation::replay(2, ObservedOutcome::Stalled, 500.0));
        p.observe(
            3,
            &Observation::replay(3, ObservedOutcome::DroppedOom, 500.0),
        );
        let est = p.estimate(3).unwrap();
        assert_eq!(est.latency_s, Some(10.0));
        assert_eq!(est.observations, 4);
        assert_eq!(est.completions, 1);
        assert!((est.straggle_p - 2.0 / 6.0).abs() < 1e-12);
        assert!((est.oom_p - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_is_bounded_and_accounted() {
        let mut p = profiler(3);
        for pass in 0..4u64 {
            for c in 0..12usize {
                p.observe(c, &completed(pass, 1.0 + c as f64));
            }
        }
        let s = p.stats();
        assert_eq!(s.resident, 3);
        assert_eq!(s.peak_resident, 3);
        assert_eq!(s.capacity, 3);
        assert_eq!(s.inserted, s.evictions + s.resident as u64);
        assert_eq!(s.observations, 48);
        assert_eq!(
            s.observations,
            s.suppressed + s.completed + s.stalled + s.quarantined + s.oom + s.dropped
        );
        // The last three observed clients are resident.
        assert!(p.observed(11) && p.observed(10) && p.observed(9));
        assert!(!p.observed(0));
    }

    #[test]
    fn reads_do_not_perturb_lru_order() {
        let mut p = profiler(2);
        p.observe(0, &completed(0, 1.0));
        p.observe(1, &completed(0, 2.0));
        // Reading client 0 must not refresh it...
        assert!(p.estimate(0).is_some());
        // ...so inserting client 2 evicts 0 (the least recently observed).
        p.observe(2, &completed(1, 3.0));
        assert!(!p.observed(0));
        assert!(p.observed(1) && p.observed(2));
    }

    #[test]
    fn cold_only_suppresses_everything() {
        let mut p = ClientProfiler::new(ProfilingConfig::cold_only(), 8);
        p.observe(3, &completed(0, 10.0));
        assert!(!p.observed(3));
        assert!(p.estimate(3).is_none());
        assert!(p.global_estimate().is_none());
        let s = p.stats();
        assert_eq!(s.observations, 1);
        assert_eq!(s.suppressed, 1);
        assert_eq!(s.resident, 0);
    }

    #[test]
    fn bandwidth_peak_is_a_running_max() {
        let mut p = profiler(8);
        for mbps in [4.0, 12.0, 6.0] {
            let mut o = completed(0, 1.0);
            o.upload_mbps = Some(mbps);
            p.observe(0, &o);
        }
        let est = p.estimate(0).unwrap();
        assert_eq!(est.bandwidth_peak_mbps, Some(12.0));
        assert!(est.bandwidth_mbps.unwrap() < 12.0);
        assert_eq!(p.global_estimate().unwrap().bandwidth_peak_mbps, Some(12.0));
    }

    #[test]
    fn global_prior_tracks_the_population() {
        let mut p = profiler(8);
        assert!(p.global_estimate().is_none());
        p.observe(0, &completed(0, 10.0));
        p.observe(1, &completed(0, 20.0));
        let g = p.global_estimate().unwrap();
        assert_eq!(g.latency_s, Some(0.3 * 20.0 + 0.7 * 10.0));
        assert_eq!(g.observations, 2);
    }

    #[test]
    fn profiler_is_a_pure_fold_of_its_observation_sequence() {
        let obs: Vec<(usize, Observation)> = (0..200)
            .map(|i| {
                let client = (i * 7) % 23;
                let kind = match i % 5 {
                    0 => ObservedOutcome::Dropped,
                    1 => ObservedOutcome::Stalled,
                    2 => ObservedOutcome::Quarantined,
                    _ => ObservedOutcome::Completed,
                };
                (
                    client,
                    Observation::replay(i as u64 / 10, kind, 1.0 + (i % 13) as f64),
                )
            })
            .collect();
        let mut a = profiler(16);
        let mut b = profiler(16);
        for (c, o) in &obs {
            a.observe(*c, o);
            b.observe(*c, o);
        }
        assert_eq!(a, b);
        assert_eq!(a.table(), b.table());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ClientProfiler::new(ProfilingConfig::on(), 0);
    }
}
