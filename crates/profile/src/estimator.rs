//! Streaming estimators: EWMA and the P² online quantile.
//!
//! Both are pure folds over their input sequence — no RNG, no clock, no
//! allocation beyond a fixed-size marker array — so feeding the same
//! values in the same order reproduces the same bits on any machine and
//! any worker-thread count. That is the determinism contract the
//! profiler is built on (DESIGN.md §17).

use serde::{Deserialize, Serialize};

/// Exponentially weighted moving average with a fixed smoothing factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh estimator; `alpha` in (0, 1] weights the newest sample.
    pub fn new(alpha: f64) -> Self {
        Self { alpha, value: None }
    }

    /// Fold one sample in. The first sample seeds the estimate exactly.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current estimate, `None` before any sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).
///
/// Tracks a single quantile `p` with five markers and O(1) update cost.
/// The first five samples are held exactly (and `value()` returns the
/// exact quantile of the sorted prefix); from the sixth sample on the
/// markers move by the parabolic/linear P² rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the q(0), q(p/2), q(p), q((1+p)/2), q(1)).
    q: [f64; 5],
    /// Actual marker positions (1-indexed sample counts).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per sample.
    dn: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// A fresh estimator for quantile `p` in (0, 1).
    pub fn new(p: f64) -> Self {
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Number of samples folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one sample in.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Initialization: keep the first five samples sorted in q.
            let mut i = self.count as usize;
            self.q[i] = x;
            while i > 0 && self.q[i - 1] > self.q[i] {
                self.q.swap(i - 1, i);
                i -= 1;
            }
            self.count += 1;
            return;
        }
        self.count += 1;

        // Find the cell k such that q[k] <= x < q[k+1], extending the
        // extreme markers when x falls outside the current range.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three interior markers toward their desired
        // positions, parabolic first, linear when that would break
        // monotonicity.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    self.q[i] = qp;
                } else {
                    self.q[i] = self.linear(i, d);
                }
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, qi, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, ni, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        qi + d / (np - nm)
            * ((ni - nm + d) * (qp - qi) / (np - ni) + (np - ni - d) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate, `None` before any sample. Exact for
    /// the first five samples, P²-approximate after.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                // Exact quantile of the sorted prefix (nearest-rank).
                let len = c as usize;
                let rank = (self.p * (len - 1) as f64).round() as usize;
                Some(self.q[rank.min(len - 1)])
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(20.0);
        assert_eq!(e.value(), Some(15.0));
    }

    #[test]
    fn p2_tracks_the_median_of_a_deterministic_stream() {
        // LCG stream, uniform-ish in [0, 1).
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut xs = Vec::new();
        let mut p50 = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            xs.push(x);
            p50.observe(x);
            p90.observe(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact50 = exact_quantile(&xs, 0.5);
        let exact90 = exact_quantile(&xs, 0.9);
        assert!(
            (p50.value().unwrap() - exact50).abs() < 0.02,
            "p50 {} vs exact {}",
            p50.value().unwrap(),
            exact50
        );
        assert!(
            (p90.value().unwrap() - exact90).abs() < 0.02,
            "p90 {} vs exact {}",
            p90.value().unwrap(),
            exact90
        );
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.value(), None);
        for (i, x) in [5.0, 1.0, 3.0].iter().enumerate() {
            q.observe(*x);
            assert_eq!(q.count(), i as u64 + 1);
        }
        // Sorted prefix is [1, 3, 5]; median is 3.
        assert_eq!(q.value(), Some(3.0));
    }

    #[test]
    fn p2_is_a_pure_fold() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        for x in &xs {
            a.observe(*x);
            b.observe(*x);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn p2_handles_constant_streams() {
        let mut q = P2Quantile::new(0.5);
        for _ in 0..100 {
            q.observe(7.0);
        }
        assert_eq!(q.value(), Some(7.0));
    }
}
