//! The multi-objective Q-table.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::state::{DeadlineLevel, GlobalState, LocalState};

/// Key of one Q-table row: the full discretized state. The human-feedback
/// component is `None` when the agent runs in RL-only ablation mode
/// (FLOAT-RL vs FLOAT-RLHF, Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QKey {
    /// Global training parameters.
    pub global: GlobalState,
    /// Client runtime resource levels.
    pub local: LocalState,
    /// Human feedback (deadline difference), if enabled.
    pub hf: Option<DeadlineLevel>,
}

/// Per-action learned statistics: one moving-average Q value per objective
/// plus a visit counter for balanced exploration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QEntry {
    /// Moving-average participation-success objective, `[0, 1]`-ish.
    pub q_participation: f64,
    /// Moving-average accuracy-improvement objective.
    pub q_accuracy: f64,
    /// How many times this state-action pair has been updated.
    pub visits: u64,
}

impl QEntry {
    /// Scalarize the two objectives (paper Eq. 2): `w_p·P + w_a·Acc`.
    pub fn scalar(&self, w_participation: f64, w_accuracy: f64) -> f64 {
        w_participation * self.q_participation + w_accuracy * self.q_accuracy
    }
}

/// A tabular multi-objective Q function over `QKey × action-index`.
#[derive(Debug, Clone, Default)]
pub struct QTable {
    num_actions: usize,
    rows: HashMap<QKey, Vec<QEntry>>,
}

// JSON objects require string keys, so the table serializes as
// `(num_actions, Vec<(QKey, Vec<QEntry>)>)` pairs instead of a map.
impl Serialize for QTable {
    fn to_value(&self) -> serde::Value {
        let mut pairs: Vec<(&QKey, &Vec<QEntry>)> = self.rows.iter().collect();
        // Stable output: sort by the dense local-state index then debug key.
        pairs.sort_by_key(|(k, _)| (k.local.index(), k.hf.map(|h| h.index())));
        (self.num_actions, pairs).to_value()
    }
}

impl Deserialize for QTable {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let (num_actions, pairs): (usize, Vec<(QKey, Vec<QEntry>)>) = Deserialize::from_value(v)?;
        if num_actions == 0 {
            return Err(serde::Error::custom("num_actions must be positive"));
        }
        let mut rows = HashMap::new();
        for (k, v) in pairs {
            if v.len() != num_actions {
                return Err(serde::Error::custom("row length mismatch"));
            }
            rows.insert(k, v);
        }
        Ok(QTable { num_actions, rows })
    }
}

impl QTable {
    /// Create an empty table for `num_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if `num_actions == 0`.
    pub fn new(num_actions: usize) -> Self {
        assert!(num_actions > 0, "need at least one action");
        QTable {
            num_actions,
            rows: HashMap::new(),
        }
    }

    /// Number of actions per row.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of materialized state rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Entries for a state, creating a zeroed row on first touch.
    pub fn row_mut(&mut self, key: QKey) -> &mut [QEntry] {
        let n = self.num_actions;
        self.rows
            .entry(key)
            .or_insert_with(|| vec![QEntry::default(); n])
    }

    /// Entries for a state if it has been visited.
    pub fn row(&self, key: &QKey) -> Option<&[QEntry]> {
        self.rows.get(key).map(Vec::as_slice)
    }

    /// Update one state-action pair toward an observed reward pair with
    /// learning rate `lr` and discount `discount` on the best next-state
    /// scalarized value `next_best` (the paper drives `discount → 0`
    /// because the next state is resource-random).
    ///
    /// Both objectives use the same moving-average scheme (RQ6).
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        key: QKey,
        action: usize,
        participation: f64,
        accuracy: f64,
        lr: f64,
        discount: f64,
        next_best: (f64, f64),
    ) {
        assert!(action < self.num_actions, "action {action} out of range");
        let entry = &mut self.row_mut(key)[action];
        entry.q_participation +=
            lr * (participation + discount * next_best.0 - entry.q_participation);
        entry.q_accuracy += lr * (accuracy + discount * next_best.1 - entry.q_accuracy);
        entry.visits += 1;
    }

    /// The *naive accumulation* update the paper tried first and rejected
    /// (RQ6): rewards are summed Bellman-style rather than averaged, so
    /// frequently explored actions accumulate inflated Q values simply by
    /// being visited more often. Kept for the ablation study.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn update_accumulate(
        &mut self,
        key: QKey,
        action: usize,
        participation: f64,
        accuracy: f64,
        lr: f64,
        discount: f64,
        next_best: (f64, f64),
    ) {
        assert!(action < self.num_actions, "action {action} out of range");
        let entry = &mut self.row_mut(key)[action];
        entry.q_participation += lr * (participation + discount * next_best.0);
        entry.q_accuracy += lr * (accuracy + discount * next_best.1);
        entry.visits += 1;
    }

    /// The best (highest scalarized) action for a state, or `None` if the
    /// state has never been visited.
    ///
    /// A NaN Q value (e.g. a reward distilled from a quarantined round)
    /// is demoted below every finite value rather than silently winning
    /// or losing by comparator accident: `f64::total_cmp`'s total order
    /// ranks `+NaN` above `+∞`, and the old `partial_cmp(..).unwrap_or(
    /// Equal)` biased the pick toward whichever action happened to sit
    /// after the NaN. Ties break toward the highest index, matching the
    /// historical `max_by` behaviour on all-finite rows bit for bit.
    pub fn best_action(&self, key: &QKey, w_p: f64, w_a: f64) -> Option<usize> {
        let demoted = |e: &QEntry| {
            let s = e.scalar(w_p, w_a);
            if s.is_nan() {
                f64::NEG_INFINITY
            } else {
                s
            }
        };
        self.row(key).map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| demoted(a.1).total_cmp(&demoted(b.1)).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
    }

    /// Best scalarized objectives at a state (0s for unvisited states).
    pub fn best_values(&self, key: &QKey, w_p: f64, w_a: f64) -> (f64, f64) {
        match self.best_action(key, w_p, w_a) {
            Some(a) => {
                let e = self.row(key).expect("row exists when best_action did")[a];
                (e.q_participation, e.q_accuracy)
            }
            None => (0.0, 0.0),
        }
    }

    /// Total visits across all rows (used by overhead benchmarks).
    pub fn total_visits(&self) -> u64 {
        self.rows
            .values()
            .flat_map(|r| r.iter())
            .map(|e| e.visits)
            .sum()
    }

    /// Estimated resident size in bytes: key + entries per row. Used for
    /// the Fig. 8 memory-overhead experiment.
    pub fn memory_bytes(&self) -> usize {
        let key_bytes = std::mem::size_of::<QKey>();
        let entry_bytes = std::mem::size_of::<QEntry>();
        self.rows.len() * (key_bytes + entry_bytes * self.num_actions)
    }

    /// Reset all visit counters (used when fine-tuning a pre-trained agent
    /// on a new workload so exploration re-balances without discarding
    /// learned values).
    pub fn reset_visits(&mut self) {
        for row in self.rows.values_mut() {
            for e in row {
                e.visits = 0;
            }
        }
    }

    /// Iterate over `(key, entries)` rows (read-only), for Q-table analysis
    /// (Fig. 10).
    pub fn iter_rows(&self) -> impl Iterator<Item = (&QKey, &[QEntry])> {
        self.rows.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Serialize to JSON (Q-table persistence, artifact `load_Q.py`
    /// equivalent).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("QTable serialization cannot fail")
    }

    /// Deserialize from [`QTable::to_json`] output.
    ///
    /// Returns `None` on malformed input.
    pub fn from_json(s: &str) -> Option<Self> {
        serde_json::from_str(s).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{GlobalState, LocalState};

    fn key() -> QKey {
        QKey {
            global: GlobalState::from_raw(20, 5, 30),
            local: LocalState::from_fractions(0.5, 0.5, 0.5),
            hf: Some(DeadlineLevel::Low),
        }
    }

    #[test]
    fn update_moves_toward_reward() {
        let mut t = QTable::new(4);
        t.update(key(), 2, 1.0, 0.5, 0.5, 0.0, (0.0, 0.0));
        let e = t.row(&key()).unwrap()[2];
        assert!((e.q_participation - 0.5).abs() < 1e-12);
        assert!((e.q_accuracy - 0.25).abs() < 1e-12);
        t.update(key(), 2, 1.0, 0.5, 0.5, 0.0, (0.0, 0.0));
        let e = t.row(&key()).unwrap()[2];
        assert!((e.q_participation - 0.75).abs() < 1e-12);
        assert_eq!(e.visits, 2);
    }

    #[test]
    fn moving_average_is_bounded_by_rewards() {
        // Unlike naive accumulation, repeated updates with reward 1.0 can
        // never push Q beyond 1.0 (the RQ6 fix).
        let mut t = QTable::new(2);
        for _ in 0..1000 {
            t.update(key(), 0, 1.0, 1.0, 0.9, 0.0, (0.0, 0.0));
        }
        let e = t.row(&key()).unwrap()[0];
        assert!(e.q_participation <= 1.0 + 1e-9);
    }

    #[test]
    fn best_action_uses_weights() {
        let mut t = QTable::new(2);
        // Action 0: great participation, no accuracy. Action 1: reverse.
        for _ in 0..20 {
            t.update(key(), 0, 1.0, 0.0, 0.5, 0.0, (0.0, 0.0));
            t.update(key(), 1, 0.0, 1.0, 0.5, 0.0, (0.0, 0.0));
        }
        assert_eq!(t.best_action(&key(), 1.0, 0.0), Some(0));
        assert_eq!(t.best_action(&key(), 0.0, 1.0), Some(1));
    }

    #[test]
    fn nan_q_value_never_wins_the_argmax() {
        let mut t = QTable::new(3);
        // Action 0 earns a solid finite value; action 2 is poisoned with a
        // NaN reward (as a quarantined round's feedback could produce).
        for _ in 0..10 {
            t.update(key(), 0, 0.8, 0.8, 0.5, 0.0, (0.0, 0.0));
        }
        t.update(key(), 2, f64::NAN, f64::NAN, 0.5, 0.0, (0.0, 0.0));
        assert_eq!(
            t.best_action(&key(), 0.5, 0.5),
            Some(0),
            "a NaN Q value must rank below every finite value"
        );
        // All-NaN rows degrade deterministically instead of depending on
        // comparator accidents: ties break toward the highest index.
        let mut t = QTable::new(2);
        t.update(key(), 0, f64::NAN, f64::NAN, 0.5, 0.0, (0.0, 0.0));
        t.update(key(), 1, f64::NAN, f64::NAN, 0.5, 0.0, (0.0, 0.0));
        assert_eq!(t.best_action(&key(), 0.5, 0.5), Some(1));
    }

    #[test]
    fn fresh_row_tiebreak_matches_historical_last_index() {
        // An all-zero (never-updated) row used to pick the last index via
        // `max_by` returning the final maximum; the explicit index
        // tiebreak must preserve that so pinned reports stay stable.
        let mut t = QTable::new(5);
        t.row_mut(key());
        assert_eq!(t.best_action(&key(), 0.5, 0.5), Some(4));
    }

    #[test]
    fn unvisited_state_has_no_best() {
        let t = QTable::new(3);
        assert_eq!(t.best_action(&key(), 0.5, 0.5), None);
        assert_eq!(t.best_values(&key(), 0.5, 0.5), (0.0, 0.0));
    }

    #[test]
    fn memory_stays_small_at_paper_scale() {
        // 125 local states × 3^3 globals × 5 HF levels is the worst case;
        // even fully materialized it must stay below the paper's 0.2 MB.
        let mut t = QTable::new(8);
        for cpu in crate::state::Level5::ALL {
            for mem in crate::state::Level5::ALL {
                for net in crate::state::Level5::ALL {
                    for hf in DeadlineLevel::ALL {
                        let k = QKey {
                            global: GlobalState::from_raw(20, 5, 30),
                            local: LocalState { cpu, mem, net },
                            hf: Some(hf),
                        };
                        t.update(k, 0, 1.0, 0.0, 0.1, 0.0, (0.0, 0.0));
                    }
                }
            }
        }
        assert_eq!(t.num_rows(), 625);
        assert!(
            t.memory_bytes() < 200_000,
            "Q-table uses {} bytes",
            t.memory_bytes()
        );
    }

    #[test]
    fn json_roundtrip() {
        let mut t = QTable::new(3);
        t.update(key(), 1, 0.7, 0.3, 0.5, 0.0, (0.0, 0.0));
        let s = t.to_json();
        let back = QTable::from_json(&s).expect("roundtrip");
        assert_eq!(back.num_actions(), 3);
        assert_eq!(back.row(&key()).unwrap()[1], t.row(&key()).unwrap()[1]);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(QTable::from_json("not json").is_none());
        assert!(QTable::from_json("[0,[]]").is_none());
    }

    #[test]
    fn discount_incorporates_next_state() {
        let mut t = QTable::new(1);
        t.update(key(), 0, 0.0, 0.0, 1.0, 0.5, (1.0, 1.0));
        let e = t.row(&key()).unwrap()[0];
        assert!((e.q_participation - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_visits_keeps_values() {
        let mut t = QTable::new(2);
        t.update(key(), 0, 1.0, 1.0, 0.5, 0.0, (0.0, 0.0));
        t.reset_visits();
        let e = t.row(&key()).unwrap()[0];
        assert_eq!(e.visits, 0);
        assert!(e.q_participation > 0.0);
    }
}
